"""Persistent worker pool for batch compilation fan-out.

:func:`~repro.compiler.batch.compile_many` used to spin up a fresh
``ProcessPoolExecutor`` for every batch, so each call paid worker
startup — interpreter boot (under spawn), ``repro`` + scipy imports,
allocator warm-up — before compiling anything.  Under traffic the batch
driver is invoked repeatedly with small batches, which made cold-spawn
overhead a first-order cost.

This module keeps **one warm pool per process**:

* :func:`get_pool` returns the live executor, creating it on first use
  (or when the requested worker count / cache directory changes).  The
  pool's initializer pre-imports the compiler stack so the first task a
  worker receives does not pay import latency, and opens a read-mostly
  :class:`~repro.compiler.cache.PlanCache` handle over the parent's
  cache *directory* when there is one — workers then serve their own
  vnorm-memo and plan-prefix hits from disk.  (Disk writes are atomic
  and canonical, so concurrent writers are safe by construction.)
* :func:`pool_map` maps a function over payloads on the warm pool and
  degrades gracefully: a ``BrokenProcessPool`` (a worker was OOM-killed
  or crashed) tears the pool down and falls back to inline execution,
  so a batch never fails outright because of pool state.
* :func:`shutdown_pool` disposes the pool; it is registered with
  :mod:`atexit` so interpreter shutdown reaps the workers.

The worker-side cache handle is exposed via :func:`worker_cache`; in
the parent process (inline compiles, ``max_workers == 1``) it is simply
``None``.

The service daemon (``repro serve``) multiplexes its cold compiles onto
the same warm pool through :func:`submit`, a per-job front door that
returns a cancellable :class:`concurrent.futures.Future` and keeps
exact in-flight counters (queued / running / completed) for the
``/metrics`` endpoint.  :func:`shutdown_pool` detects a running asyncio
event loop and degrades to a non-blocking shutdown there, so service
teardown never deadlocks the loop thread that is awaiting pool results.
"""

from __future__ import annotations

import asyncio
import atexit
import os
import threading
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any

__all__ = [
    "default_workers",
    "get_pool",
    "pool_map",
    "pool_stats",
    "shutdown_pool",
    "submit",
    "worker_cache",
]

_POOL: ProcessPoolExecutor | None = None
_POOL_KEY: tuple[int, str | None] | None = None
_STATS = {
    "created": 0,
    "reused": 0,
    "broken": 0,
    "submitted": 0,
    "completed": 0,
    "cancelled": 0,
    "inflight": 0,
}
_STATS_LOCK = threading.Lock()

#: set inside worker processes by the initializer; None in the parent.
_WORKER_CACHE = None


def _warm_worker(cache_dir: str | None) -> None:
    """Pool initializer: preload the compiler stack, open the cache.

    Runs once per worker process.  The imports cover everything
    :func:`repro.compiler.batch._compile_payload` touches (parser,
    pass pipeline, scipy's linprog), so the first real task starts hot.
    """
    import repro.compiler.batch  # noqa: F401  (pulls pipeline + passes)
    import repro.core.lp  # noqa: F401  (pulls scipy.optimize)

    global _WORKER_CACHE
    if cache_dir is not None:
        from .cache import PlanCache

        _WORKER_CACHE = PlanCache(directory=cache_dir)


def worker_cache():
    """The worker-local :class:`PlanCache`, or None outside a worker."""
    return _WORKER_CACHE


def get_pool(
    max_workers: int, cache_dir: str | None = None
) -> ProcessPoolExecutor:
    """The process-wide warm pool, (re)created only when the shape changes.

    A pool is identified by ``(max_workers, cache_dir)``; asking for a
    different shape shuts the old pool down first, so there is never
    more than one alive.
    """
    global _POOL, _POOL_KEY
    key = (max_workers, cache_dir)
    if _POOL is not None and _POOL_KEY == key:
        _STATS["reused"] += 1
        return _POOL
    shutdown_pool()
    _POOL = ProcessPoolExecutor(
        max_workers=max_workers,
        initializer=_warm_worker,
        initargs=(cache_dir,),
    )
    _POOL_KEY = key
    _STATS["created"] += 1
    return _POOL


def pool_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any] | Iterable[Any],
    *,
    max_workers: int,
    cache_dir: str | None = None,
) -> list[Any]:
    """Map ``fn`` over ``items`` on the warm pool, inline on breakage."""
    items = list(items)
    pool = get_pool(max_workers, cache_dir)
    try:
        return list(pool.map(fn, items))
    except BrokenProcessPool:
        _STATS["broken"] += 1
        shutdown_pool()
        return [fn(item) for item in items]


def submit(
    fn: Callable[[Any], Any],
    payload: Any,
    *,
    max_workers: int,
    cache_dir: str | None = None,
) -> "Future[Any]":
    """Queue one job on the warm pool; returns a cancellable future.

    Unlike :func:`pool_map` this never blocks: the caller owns the
    future (``repro serve`` awaits it via ``asyncio.wrap_future``).
    Queued-but-unstarted jobs can be cancelled through the future; the
    in-flight counter is maintained by a done callback either way.
    """
    pool = get_pool(max_workers, cache_dir)
    with _STATS_LOCK:
        _STATS["submitted"] += 1
        _STATS["inflight"] += 1
    future = pool.submit(fn, payload)
    future.add_done_callback(_job_done)
    return future


def _job_done(future: "Future[Any]") -> None:
    with _STATS_LOCK:
        _STATS["inflight"] -= 1
        if future.cancelled():
            _STATS["cancelled"] += 1
        else:
            _STATS["completed"] += 1


def default_workers() -> int:
    """A sensible worker count for ``--jobs 0`` (auto).

    Respects the CPU *affinity mask* (cgroup/container quota), not the
    raw host core count; falls back to ``os.cpu_count()`` on platforms
    without ``sched_getaffinity`` or when the mask is unreadable.  Pure
    (no blocking syscalls), so it is safe to call from a running event
    loop.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def pool_stats() -> dict[str, int]:
    """Lifetime pool counters (created / reused / broken), for reporting."""
    with _STATS_LOCK:
        return dict(_STATS)


def shutdown_pool(wait: bool | None = None) -> None:
    """Dispose the warm pool (workers exit); safe to call when absent.

    ``wait=None`` (the default) blocks until the workers exit —
    *except* when called from a thread running an asyncio event loop,
    where blocking would deadlock any coroutine awaiting a pool future;
    there it degrades to a non-blocking shutdown (workers reap in the
    background).  Pass ``wait=True``/``False`` to force either.
    """
    global _POOL, _POOL_KEY
    if wait is None:
        try:
            asyncio.get_running_loop()
        except RuntimeError:
            wait = True
        else:
            wait = False
    if _POOL is not None:
        pool, _POOL, _POOL_KEY = _POOL, None, None
        pool.shutdown(wait=wait, cancel_futures=True)


atexit.register(shutdown_pool)
