"""Persistent worker pool for batch compilation fan-out.

:func:`~repro.compiler.batch.compile_many` used to spin up a fresh
``ProcessPoolExecutor`` for every batch, so each call paid worker
startup — interpreter boot (under spawn), ``repro`` + scipy imports,
allocator warm-up — before compiling anything.  Under traffic the batch
driver is invoked repeatedly with small batches, which made cold-spawn
overhead a first-order cost.

This module keeps **one warm pool per process**:

* :func:`get_pool` returns the live executor, creating it on first use
  (or when the requested worker count / cache directory changes).  The
  pool's initializer pre-imports the compiler stack so the first task a
  worker receives does not pay import latency, and opens a read-mostly
  :class:`~repro.compiler.cache.PlanCache` handle over the parent's
  cache *directory* when there is one — workers then serve their own
  vnorm-memo and plan-prefix hits from disk.  (Disk writes are atomic
  and canonical, so concurrent writers are safe by construction.)
* :func:`pool_map` maps a function over payloads on the warm pool and
  degrades gracefully: a ``BrokenProcessPool`` (a worker was OOM-killed
  or crashed) tears the pool down and falls back to inline execution,
  so a batch never fails outright because of pool state.
* :func:`shutdown_pool` disposes the pool; it is registered with
  :mod:`atexit` so interpreter shutdown reaps the workers.

The worker-side cache handle is exposed via :func:`worker_cache`; in
the parent process (inline compiles, ``max_workers == 1``) it is simply
``None``.
"""

from __future__ import annotations

import atexit
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any

__all__ = [
    "get_pool",
    "pool_map",
    "pool_stats",
    "shutdown_pool",
    "worker_cache",
]

_POOL: ProcessPoolExecutor | None = None
_POOL_KEY: tuple[int, str | None] | None = None
_STATS = {"created": 0, "reused": 0, "broken": 0}

#: set inside worker processes by the initializer; None in the parent.
_WORKER_CACHE = None


def _warm_worker(cache_dir: str | None) -> None:
    """Pool initializer: preload the compiler stack, open the cache.

    Runs once per worker process.  The imports cover everything
    :func:`repro.compiler.batch._compile_payload` touches (parser,
    pass pipeline, scipy's linprog), so the first real task starts hot.
    """
    import repro.compiler.batch  # noqa: F401  (pulls pipeline + passes)
    import repro.core.lp  # noqa: F401  (pulls scipy.optimize)

    global _WORKER_CACHE
    if cache_dir is not None:
        from .cache import PlanCache

        _WORKER_CACHE = PlanCache(directory=cache_dir)


def worker_cache():
    """The worker-local :class:`PlanCache`, or None outside a worker."""
    return _WORKER_CACHE


def get_pool(
    max_workers: int, cache_dir: str | None = None
) -> ProcessPoolExecutor:
    """The process-wide warm pool, (re)created only when the shape changes.

    A pool is identified by ``(max_workers, cache_dir)``; asking for a
    different shape shuts the old pool down first, so there is never
    more than one alive.
    """
    global _POOL, _POOL_KEY
    key = (max_workers, cache_dir)
    if _POOL is not None and _POOL_KEY == key:
        _STATS["reused"] += 1
        return _POOL
    shutdown_pool()
    _POOL = ProcessPoolExecutor(
        max_workers=max_workers,
        initializer=_warm_worker,
        initargs=(cache_dir,),
    )
    _POOL_KEY = key
    _STATS["created"] += 1
    return _POOL


def pool_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any] | Iterable[Any],
    *,
    max_workers: int,
    cache_dir: str | None = None,
) -> list[Any]:
    """Map ``fn`` over ``items`` on the warm pool, inline on breakage."""
    items = list(items)
    pool = get_pool(max_workers, cache_dir)
    try:
        return list(pool.map(fn, items))
    except BrokenProcessPool:
        _STATS["broken"] += 1
        shutdown_pool()
        return [fn(item) for item in items]


def pool_stats() -> dict[str, int]:
    """Lifetime pool counters (created / reused / broken), for reporting."""
    return dict(_STATS)


def shutdown_pool() -> None:
    """Dispose the warm pool (workers exit); safe to call when absent."""
    global _POOL, _POOL_KEY
    if _POOL is not None:
        pool, _POOL, _POOL_KEY = _POOL, None, None
        pool.shutdown(wait=True, cancel_futures=True)


atexit.register(shutdown_pool)
