"""Biostream-style fixed-ratio mixing, for comparison with AIS.

Paper Section 3.4.1: "While Biostream [10] also relies on allowing excess
production for their mix instructions, their approach is fundamentally
different from ours in that they allow mixing only in a 1:1 ratio, and
discard half of the output of the mix ... Because of their fixed-ratio
mixing, achieving arbitrary mix ratios always requires cascading (except
for 1:1 mixing), which executes on the slow fluid path, while our approach
requires cascading only for uncommon cases of extreme mix ratios."

This package makes that comparison quantitative:

* :mod:`repro.biostream.mixtree` — the classic binary mixing-tree
  construction [Thies et al., Natural Computing 2007]: realise any target
  concentration to ``k`` bits with ``<= k`` serial 1:1 mixes, discarding
  half of every intermediate;
* :mod:`repro.biostream.compare` — per-assay wet-operation and fluid-waste
  costs for AIS variable-ratio mixing vs Biostream 1:1-only mixing.
"""

from .compare import AssayMixCost, ais_mix_cost, biostream_mix_cost
from .mixtree import MixStep, OneToOnePlan, bits_for_tolerance, one_to_one_plan

__all__ = [
    "MixStep",
    "OneToOnePlan",
    "one_to_one_plan",
    "bits_for_tolerance",
    "AssayMixCost",
    "ais_mix_cost",
    "biostream_mix_cost",
]
