"""Binary mixing trees: arbitrary concentrations from 1:1 mixes only.

Biostream's hardware mixes two equal volumes and keeps half, so the only
primitive is ``mix1:1``.  A target concentration ``c`` of *sample* in
*buffer* is realised by writing ``c ~ m / 2**k`` and folding the bits in,
least-significant first: starting from pure buffer (or the first 1 bit's
sample), each step mixes the working fluid 1:1 with pure sample (bit 1) or
pure buffer (bit 0), halving the working concentration and adding ``b/2``:

    c_out = (c_in + bit) / 2

After ``k`` steps the achieved concentration is exactly ``m / 2**k``; the
approximation error against an arbitrary rational target is at most
``2**-(k+1)``.  Every step discards half of the working fluid (the excess
production the paper contrasts with AIS's metered draws).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

from ..core.limits import Number, as_fraction

__all__ = ["MixStep", "OneToOnePlan", "one_to_one_plan", "bits_for_tolerance"]


@dataclass(frozen=True)
class MixStep:
    """One 1:1 mix: combine the working fluid with a pure ingredient."""

    ingredient: str  # "sample" | "buffer"
    concentration_after: Fraction

    def __str__(self) -> str:
        return (
            f"mix 1:1 with {self.ingredient} -> "
            f"{float(self.concentration_after):.6g}"
        )


@dataclass(frozen=True)
class OneToOnePlan:
    """A realised concentration and its cost."""

    target: Fraction
    achieved: Fraction
    steps: tuple[MixStep, ...]

    @property
    def mix_count(self) -> int:
        return len(self.steps)

    @property
    def error(self) -> Fraction:
        return abs(self.achieved - self.target)

    @property
    def relative_error(self) -> Fraction:
        if self.target == 0:
            return Fraction(0)
        return self.error / self.target

    @property
    def discarded_units(self) -> int:
        """Half of the working fluid is discarded after every mix except
        the last (whose product is the delivered fluid)."""
        return max(0, self.mix_count - 1)

    @property
    def sample_units(self) -> int:
        """Unit volumes of pure sample consumed."""
        return sum(1 for s in self.steps if s.ingredient == "sample")

    @property
    def buffer_units(self) -> int:
        return sum(1 for s in self.steps if s.ingredient == "buffer")


def bits_for_tolerance(target: Number, relative_tolerance: Number) -> int:
    """Bits of precision needed so the binary approximation of ``target``
    has relative error at most ``relative_tolerance``.

    ``2**-(k+1) <= tol * target  =>  k >= log2(1 / (2 * tol * target))``.
    """
    c = as_fraction(target)
    tolerance = as_fraction(relative_tolerance)
    if not (0 < c < 1):
        raise ValueError(f"target concentration must be in (0, 1), got {c}")
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    bound = 1 / (2 * tolerance * c)
    return max(1, math.ceil(math.log2(float(bound))))


def one_to_one_plan(target: Number, bits: int) -> OneToOnePlan:
    """Plan the 1:1 mixing sequence for ``target`` at ``bits`` precision.

    Leading zero-bits (which would just halve pure buffer) are skipped, so
    dilute targets cost about ``log2(1/c)`` mixes rather than always
    ``bits``.
    """
    c = as_fraction(target)
    if not (0 <= c <= 1):
        raise ValueError(f"target concentration must be in [0, 1], got {c}")
    if bits < 1:
        raise ValueError("bits must be >= 1")
    numerator = round(c * 2 ** bits)
    numerator = min(max(numerator, 0), 2 ** bits)
    achieved = Fraction(numerator, 2 ** bits)
    if numerator == 0 or numerator == 2 ** bits:
        # pure buffer / pure sample: no mixing needed
        return OneToOnePlan(target=c, achieved=achieved, steps=())
    bit_list = [(numerator >> i) & 1 for i in range(bits)]  # LSB first
    # Folding proceeds LSB -> MSB with c' = (c + bit)/2.  Steps before the
    # first 1 bit would mix buffer into a pure-buffer working fluid; they
    # are no-ops and are skipped, so dilute targets cost ~log2(1/c) mixes.
    first_one = bit_list.index(1)
    concentration = Fraction(0)
    steps: list[MixStep] = []
    for index in range(first_one, bits):
        bit = bit_list[index]
        concentration = (concentration + bit) / 2
        steps.append(
            MixStep("sample" if bit else "buffer", concentration)
        )
    assert concentration == achieved
    return OneToOnePlan(target=c, achieved=achieved, steps=tuple(steps))
