"""Quantifying the AIS-vs-Biostream mixing-cost comparison.

AIS mixes in arbitrary metered ratios: every DAG mix node costs exactly one
wet ``mix`` (plus its metered moves); only *extreme* ratios cascade.
Biostream mixes only 1:1: every mix node whose ratio is not pure 1:1 must
be realised as a binary mixing tree — a chain of 1:1 mixes with half of
each intermediate discarded — and a ``p_1 : ... : p_n`` multi-way mix
becomes n-1 pairwise stages, each needing its own tree.

:func:`biostream_mix_cost` walks a volume DAG and sums these costs at a
given chemistry tolerance (the paper's rounding discussion uses 2%);
:func:`ais_mix_cost` counts the same DAG's AIS cost.  The benchmark
``bench_biostream.py`` tabulates both across the paper's assays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from ..core.dag import AssayDAG, NodeKind
from ..core.limits import Number, as_fraction
from .mixtree import bits_for_tolerance, one_to_one_plan

__all__ = ["AssayMixCost", "ais_mix_cost", "biostream_mix_cost"]


@dataclass
class AssayMixCost:
    """Wet-mixing cost of realising an assay's mixes."""

    scheme: str
    mix_operations: int
    #: unit volumes of working fluid discarded by excess production
    discarded_units: int = 0
    #: per-node breakdown: node id -> (mixes, discarded)
    per_node: dict[str, tuple] = field(default_factory=dict)
    #: worst relative concentration error introduced by approximation
    worst_error: Fraction = Fraction(0)

    def __str__(self) -> str:
        return (
            f"{self.scheme}: {self.mix_operations} wet mixes, "
            f"{self.discarded_units} discarded units, "
            f"worst ratio error {float(self.worst_error) * 100:.2f}%"
        )


def _mix_nodes(dag: AssayDAG):
    for node in dag.nodes():
        if node.kind is NodeKind.MIX:
            inbound = [e for e in dag.in_edges(node.id) if not e.is_excess]
            if len(inbound) >= 2:
                yield node, inbound


def ais_mix_cost(dag: AssayDAG) -> AssayMixCost:
    """AIS cost: one wet mix per mix node (cascade stages included when the
    DAG was transformed); metered draws discard nothing except declared
    excess nodes."""
    mixes = 0
    discarded = 0
    per_node: dict[str, tuple] = {}
    for node, __ in _mix_nodes(dag):
        mixes += 1
        node_discard = 1 if node.excess_fraction > 0 else 0
        discarded += node_discard
        per_node[node.id] = (1, node_discard)
    return AssayMixCost(
        scheme="AIS (variable-ratio)",
        mix_operations=mixes,
        discarded_units=discarded,
        per_node=per_node,
    )


def biostream_mix_cost(
    dag: AssayDAG,
    relative_tolerance: Number = Fraction(1, 50),
) -> AssayMixCost:
    """Biostream cost: realise every mix with 1:1 operations only.

    A two-input mix at share ``f`` (minor fraction) costs the binary tree
    for concentration ``f``; a pure 1:1 mix costs a single operation.
    An ``n``-way mix decomposes into ``n - 1`` pairwise stages, stage ``i``
    combining the running mixture with the next ingredient at the running
    cumulative share.
    """
    tolerance = as_fraction(relative_tolerance)
    total_mixes = 0
    total_discarded = 0
    worst_error = Fraction(0)
    per_node: dict[str, tuple] = {}
    for node, inbound in _mix_nodes(dag):
        node_mixes = 0
        node_discarded = 0
        running = inbound[0].fraction
        for edge in inbound[1:]:
            combined = running + edge.fraction
            share = running / combined  # running mixture's share of stage
            minor = min(share, 1 - share)
            if minor == Fraction(1, 2):
                node_mixes += 1  # a native 1:1 mix
            else:
                bits = bits_for_tolerance(minor, tolerance)
                plan = one_to_one_plan(minor, bits)
                node_mixes += plan.mix_count
                node_discarded += plan.discarded_units
                worst_error = max(worst_error, plan.relative_error)
            running = combined
        total_mixes += node_mixes
        total_discarded += node_discarded
        per_node[node.id] = (node_mixes, node_discarded)
    return AssayMixCost(
        scheme=f"Biostream (1:1 only, tol {float(tolerance):.0%})",
        mix_operations=total_mixes,
        discarded_units=total_discarded,
        per_node=per_node,
        worst_error=worst_error,
    )
