"""SRC-* checks: turning converged fixpoint facts into diagnostics.

Every code mirrors a failure mode the unrolled pipeline can only find
for one concrete set of loop bounds — here each verdict quantifies over
*all* bounds.  The severity policy is uniform:

* **error** — *definite*: every concretisation of the invariant
  violates the rule (the unroller/linter would fail for any bounds that
  reach the statement);
* **note** — *possible*: some concretisation violates it, the abstract
  state cannot exclude it.  Notes keep ``is_clean`` true, so smashing
  imprecision never fails a clean assay;
* **warning** — hygiene findings (dead fluid, dry/wet clash) matching
  the unrolled linter's severity for the same rule.

The code table is catalogued in ``docs/ANALYSIS.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ...compiler.diagnostics import (
    Diagnostic,
    DiagnosticSink,
    Severity,
    exit_code_for,
    report_payload,
    severity_counts,
)
from ...machine.spec import MachineSpec
from ..state import ContentKind
from .cfg import SourceCFG
from .domain import IT_CELL, IntInterval
from .engine import FactLog

__all__ = ["SRC_CODES", "SourceReport", "run_checks"]


@dataclass(frozen=True)
class CodeInfo:
    code: str
    severity: str  # severity of the *definite* form
    summary: str


#: the stable SRC code catalogue (definite-form severities).
SRC_CODES: dict[str, CodeInfo] = {
    info.code: info
    for info in (
        CodeInfo(
            "SRC-READ-BEFORE-FILL",
            "error",
            "a fluid is read on a path where it definitely holds nothing "
            "(before its only definitions, or `it` before any operation)",
        ),
        CodeInfo(
            "SRC-USE-AFTER-CONSUME",
            "error",
            "a separation waste (or otherwise consumed cell) is used "
            "downstream",
        ),
        CodeInfo(
            "SRC-DOUBLE-FILL",
            "error",
            "a single-assignment fluid is definitely defined twice "
            "(e.g. an unsubscripted definition inside a loop that runs "
            "more than once)",
        ),
        CodeInfo(
            "SRC-AUX-NOT-INPUT",
            "error",
            "a separation matrix/pusher names a produced fluid instead "
            "of a primary input",
        ),
        CodeInfo(
            "SRC-DEAD-FLUID",
            "warning",
            "a produced fluid never reaches an OUTPUT or SENSE",
        ),
        CodeInfo(
            "SRC-INDEX-RANGE",
            "error",
            "a subscript interval falls (partly) outside the declared "
            "bank extent",
        ),
        CodeInfo(
            "SRC-DRY-UNDEFINED",
            "error",
            "a dry variable is read where it is (possibly) unassigned",
        ),
        CodeInfo(
            "SRC-RUNTIME-VALUE",
            "error",
            "a sensed (run-time) value is used where a static value is "
            "required (ratio, bound, subscript)",
        ),
        CodeInfo("SRC-DIV-ZERO", "error", "a dry division by (possible) zero"),
        CodeInfo(
            "SRC-RATIO-NONPOSITIVE",
            "error",
            "a mix ratio part that is (possibly) zero or negative",
        ),
        CodeInfo(
            "SRC-FRACTION-RANGE",
            "error",
            "a YIELD/KEEP hint outside (0, 1]",
        ),
        CodeInfo("SRC-WHILE-HINT", "error", "a WHILE hint below zero"),
        CodeInfo(
            "SRC-INFEASIBLE-MIX",
            "error",
            "a NOEXCESS mix whose exact ratios cannot fit the mixer "
            "capacity at the least count",
        ),
        CodeInfo(
            "SRC-EXTREME-MIX",
            "note",
            "a mix whose ratio spread may exceed the mixer's dynamic "
            "range (would need cascading)",
        ),
        CodeInfo(
            "SRC-ALIASED-MIX",
            "error",
            "two mix operands that (may) resolve to the same fluid",
        ),
        CodeInfo(
            "SRC-DRY-WET-CLASH",
            "warning",
            "a SENSE result stored into a loop counter",
        ),
        CodeInfo(
            "SRC-NO-CONVERGENCE",
            "error",
            "the fixpoint hit its sweep ceiling (engine bug guard); "
            "results are partial",
        ),
    )
}


class _Emitter:
    def __init__(self) -> None:
        #: (line, diagnostic) — kept separate so sorting is numeric.
        self.found: list[tuple[int, Diagnostic]] = []
        self._seen: set[tuple[int, str, str]] = set()

    def emit(
        self,
        severity: Severity,
        code: str,
        line: int,
        message: str,
        *,
        operand: str | None = None,
    ) -> None:
        assert code in SRC_CODES, f"unregistered source code {code}"
        key = (line, code, message)
        if key in self._seen:
            return
        self._seen.add(key)
        self.found.append(
            (
                line,
                Diagnostic(
                    severity,
                    code,
                    message,
                    node=f"line {line}",
                    operand=operand,
                ),
            )
        )

    def definite(self, code: str, line: int, message: str, **kw: str) -> None:
        self.emit(Severity.ERROR, code, line, message, **kw)

    def possible(self, code: str, line: int, message: str, **kw: str) -> None:
        self.emit(Severity.NOTE, code, line, message + " (possible)", **kw)


def _exec_count(cfg: SourceCFG, facts: FactLog, token: int) -> IntInterval:
    """How often a statement executes: the product of the trip-count
    intervals of every enclosing loop (the constant 1 outside loops)."""
    count = IntInterval.const(1)
    for loop in cfg.enclosing_loops.get(token, ()):
        trips = facts.loop_trips.get(loop.head, IntInterval(0, None))
        count = count.mul(trips)
    return count


def run_checks(
    cfg: SourceCFG, facts: FactLog, spec: MachineSpec
) -> list[Diagnostic]:
    """Evaluate every SRC check against the harvested facts."""
    out = _Emitter()
    _check_reads(out, facts)
    _check_defines(out, cfg, facts)
    _check_dead_fluid(out, cfg, facts)
    _check_aux(out, facts)
    _check_indexes(out, facts)
    _check_dry(out, facts)
    _check_ratios(out, facts, spec)
    _check_aliases(out, facts)
    _check_clashes(out, facts)
    if not facts.converged:  # pragma: no cover - MAX_SWEEPS safety net
        out.emit(
            Severity.ERROR,
            "SRC-NO-CONVERGENCE",
            0,
            "fixpoint did not converge within the sweep ceiling; "
            "results are partial",
        )
    out.found.sort(key=lambda pair: (pair[0], pair[1].code, pair[1].message))
    return [diagnostic for _, diagnostic in out.found]


# ---------------------------------------------------------------------------
def _check_reads(out: _Emitter, facts: FactLog) -> None:
    for read in facts.reads:
        kind = read.pre.kind
        if kind is ContentKind.CONSUMED:
            out.definite(
                "SRC-USE-AFTER-CONSUME",
                read.line,
                f"{read.op} uses {read.display!r}, a separation waste "
                "whose contents are consumed on every path",
                operand=read.display,
            )
            continue
        defined_somewhere = bool(facts.def_sites.get(read.cell))
        if kind is ContentKind.EMPTY:
            if read.cell == IT_CELL:
                out.definite(
                    "SRC-READ-BEFORE-FILL",
                    read.line,
                    f"{read.op} uses 'it' before any fluid operation",
                    operand=read.display,
                )
            elif defined_somewhere:
                out.definite(
                    "SRC-READ-BEFORE-FILL",
                    read.line,
                    f"{read.op} reads {read.display!r} before its "
                    "definition (it would become a primary input that the "
                    "later definition re-defines)",
                    operand=read.display,
                )
            # an undefined-everywhere fluid is a primary input: fine
        elif kind is ContentKind.UNKNOWN:
            if read.cell == IT_CELL or defined_somewhere:
                target = (
                    "'it' before any fluid operation"
                    if read.cell == IT_CELL
                    else f"{read.display!r} before its definition"
                )
                out.possible(
                    "SRC-READ-BEFORE-FILL",
                    read.line,
                    f"{read.op} may use {target}",
                    operand=read.display,
                )


def _check_defines(out: _Emitter, cfg: SourceCFG, facts: FactLog) -> None:
    for define in facts.defines:
        if define.cell == IT_CELL:
            continue  # the it register is re-targeted by every operation
        pre = define.pre
        executions = _exec_count(cfg, facts, define.token)
        # a definition inside an IF arm may be taken on only some
        # iterations (the unroller evaluates the condition per unrolled
        # copy), so re-execution is never definite under a branch
        guarded = cfg.under_branch.get(define.token, False)
        repeats_definitely = (
            not guarded and executions.lo is not None and executions.lo >= 2
        )
        repeats_possibly = executions.hi is None or executions.hi >= 2
        others = facts.def_sites.get(define.cell, set()) - {define.token}
        if not define.summarized:
            if repeats_definitely:
                out.definite(
                    "SRC-DOUBLE-FILL",
                    define.line,
                    f"fluid {define.display!r} is re-defined on every "
                    f"iteration (the enclosing loops run it at least "
                    f"{executions.lo} times); fluids are "
                    "single-assignment",
                    operand=define.display,
                )
            elif pre.kind is ContentKind.HOLDS and others & pre.defs:
                out.definite(
                    "SRC-DOUBLE-FILL",
                    define.line,
                    f"fluid {define.display!r} is defined twice; fluids "
                    "are single-assignment",
                    operand=define.display,
                )
            elif (
                repeats_possibly and define.token in pre.defs
            ) or others & pre.defs:
                out.possible(
                    "SRC-DOUBLE-FILL",
                    define.line,
                    f"fluid {define.display!r} may already be defined "
                    "here",
                    operand=define.display,
                )
        else:
            # summarised bank: only a statically-constant subscript that
            # re-executes definitely re-defines the same cell
            if define.singleton_index and repeats_definitely:
                out.definite(
                    "SRC-DOUBLE-FILL",
                    define.line,
                    f"bank cell {define.display!r} is re-defined on "
                    "every iteration of the enclosing loops",
                    operand=define.display,
                )
            elif pre.may_hold_fluid and (
                define.token in pre.defs or others & pre.defs
            ):
                out.possible(
                    "SRC-DOUBLE-FILL",
                    define.line,
                    f"bank {define.display!r} may re-define a cell that "
                    "already holds fluid",
                    operand=define.display,
                )


def _check_dead_fluid(out: _Emitter, cfg: SourceCFG, facts: FactLog) -> None:
    if not facts.has_sink:
        # a program that delivers nothing off-chip parks its result on
        # the machine; reachability is meaningless then (same policy as
        # the unrolled dead-fluid check)
        return
    for define in facts.defines:
        if define.token not in facts.sunk:
            out.emit(
                Severity.WARNING,
                "SRC-DEAD-FLUID",
                define.line,
                f"{define.op} result {define.display!r} never reaches an "
                "OUTPUT or SENSE on any path; the fluid is produced for "
                "nothing",
                operand=define.display,
            )


def _check_aux(out: _Emitter, facts: FactLog) -> None:
    for aux in facts.aux_loads:
        if aux.pre.kind in (ContentKind.HOLDS, ContentKind.CONSUMED):
            out.definite(
                "SRC-AUX-NOT-INPUT",
                aux.line,
                f"matrix/pusher {aux.name!r} must be a primary input "
                "fluid, but it is produced by this program",
                operand=aux.name,
            )
        elif aux.pre.kind is ContentKind.UNKNOWN:
            out.possible(
                "SRC-AUX-NOT-INPUT",
                aux.line,
                f"matrix/pusher {aux.name!r} may name a produced fluid",
                operand=aux.name,
            )


def _check_indexes(out: _Emitter, facts: FactLog) -> None:
    for fact in facts.indexes:
        for position, (iv, dim) in enumerate(zip(fact.indices, fact.dims)):
            if not iv.intersects(1, dim):
                out.definite(
                    "SRC-INDEX-RANGE",
                    fact.line,
                    f"subscript {position + 1} of {fact.base!r} is "
                    f"{iv}, entirely outside 1..{dim}",
                    operand=fact.base,
                )
            elif not iv.within(1, dim):
                out.possible(
                    "SRC-INDEX-RANGE",
                    fact.line,
                    f"subscript {position + 1} of {fact.base!r} spans "
                    f"{iv}, which can leave 1..{dim}",
                    operand=fact.base,
                )


def _check_dry(out: _Emitter, facts: FactLog) -> None:
    for read in facts.dry_reads:
        if read.definite:
            out.definite(
                "SRC-DRY-UNDEFINED",
                read.line,
                f"dry variable {read.name!r} is read before any "
                "assignment",
                operand=read.name,
            )
        else:
            out.possible(
                "SRC-DRY-UNDEFINED",
                read.line,
                f"dry variable {read.name!r} may be unassigned here",
                operand=read.name,
            )
    for use in facts.runtime_uses:
        out.definite(
            "SRC-RUNTIME-VALUE",
            use.line,
            f"{use.name!r} holds a sensed value, which cannot be used "
            "in a static position (ratio, bound, or subscript)",
            operand=use.name,
        )
    for div in facts.divisions:
        if div.definite:
            out.definite("SRC-DIV-ZERO", div.line, "division by zero")
        else:
            out.possible("SRC-DIV-ZERO", div.line, "divisor may be zero")
    for hint in facts.hints:
        if hint.definite:
            out.definite(
                "SRC-WHILE-HINT", hint.line, "WHILE hint must be >= 0"
            )
        else:
            out.possible(
                "SRC-WHILE-HINT", hint.line, "WHILE hint may be negative"
            )
    for fraction in facts.fractions:
        if fraction.definite:
            out.definite(
                "SRC-FRACTION-RANGE",
                fraction.line,
                f"{fraction.which} hint must be a fraction in (0, 1]",
            )
        else:
            out.possible(
                "SRC-FRACTION-RANGE",
                fraction.line,
                f"{fraction.which} hint may leave (0, 1]",
            )


def _check_ratios(out: _Emitter, facts: FactLog, spec: MachineSpec) -> None:
    least = spec.limits.least_count
    capacity = spec.limits.max_capacity
    for ratio in facts.ratios:
        nonpositive_definitely = any(
            part.hi is not None and part.hi <= 0 for part in ratio.parts
        )
        if nonpositive_definitely:
            out.definite(
                "SRC-RATIO-NONPOSITIVE",
                ratio.line,
                "mix ratio parts must be positive",
            )
            continue
        if any(part.lo is None or part.lo <= 0 for part in ratio.parts):
            out.possible(
                "SRC-RATIO-NONPOSITIVE",
                ratio.line,
                "a mix ratio part may be zero or negative",
            )
        if all(part.is_singleton for part in ratio.parts):
            parts = [part.lo for part in ratio.parts]
            assert all(value is not None for value in parts)
            total = sum(parts)  # type: ignore[arg-type]
            smallest = min(parts)  # type: ignore[type-var]
            if smallest is not None and smallest > 0:
                # metering the smallest part at the least count fixes the
                # minimum feasible batch: least * total / smallest
                minimum = least * total / smallest
                if ratio.no_excess and minimum > capacity:
                    out.definite(
                        "SRC-INFEASIBLE-MIX",
                        ratio.line,
                        f"NOEXCESS mix needs at least "
                        f"{float(minimum):g} nl to honour its ratios at "
                        f"the least count, over the capacity of "
                        f"{float(capacity):g} nl",
                    )
        else:
            hi_parts = [part.hi for part in ratio.parts]
            lo_parts = [part.lo for part in ratio.parts]
            if None in hi_parts or any(
                lo is None or lo <= 0 for lo in lo_parts
            ):
                spread_unbounded = True
            else:
                spread_unbounded = False
                worst = max(h for h in hi_parts if h is not None)
                best = min(lo for lo in lo_parts if lo is not None)
                if best > 0 and worst / best > float(
                    capacity / least
                ):
                    spread_unbounded = True
            if spread_unbounded:
                out.emit(
                    Severity.NOTE,
                    "SRC-EXTREME-MIX",
                    ratio.line,
                    "ratio spread is unbounded over the loop iterations; "
                    "extreme dilutions fall back to mix cascading",
                )


def _check_aliases(out: _Emitter, facts: FactLog) -> None:
    for alias in facts.aliases:
        if alias.definite:
            out.definite(
                "SRC-ALIASED-MIX",
                alias.line,
                f"MIX operands must be distinct fluids, but "
                f"{alias.display!r} appears twice",
                operand=alias.display,
            )
        else:
            out.possible(
                "SRC-ALIASED-MIX",
                alias.line,
                f"two MIX operands may resolve to the same cell of "
                f"{alias.display!r}",
                operand=alias.display,
            )


def _check_clashes(out: _Emitter, facts: FactLog) -> None:
    for line, name in facts.clashes:
        out.emit(
            Severity.WARNING,
            "SRC-DRY-WET-CLASH",
            line,
            f"SENSE stores its reading into {name!r}, which is a loop "
            "counter; the sensed value would clobber the iteration",
            operand=name,
        )


# ---------------------------------------------------------------------------
@dataclass
class SourceReport:
    """The outcome of source-level verification of one program."""

    program: str
    machine: str
    findings: list[Diagnostic] = field(default_factory=list)
    #: fixpoint instrumentation, surfaced in the JSON summary.
    stats: dict[str, int | bool] = field(default_factory=dict)

    @property
    def counts(self) -> dict[str, int]:
        return severity_counts(self.findings)

    @property
    def is_clean(self) -> bool:
        """No warnings or errors (notes are informational)."""
        return self.counts["error"] == 0 and self.counts["warning"] == 0

    @property
    def exit_code(self) -> int:
        """Shared severity table (repro.compiler.diagnostics)."""
        return exit_code_for(self.findings)

    def codes(self) -> set[str]:
        return {finding.code for finding in self.findings}

    def sink(self) -> DiagnosticSink:
        sink = DiagnosticSink()
        sink.extend(self.findings)
        return sink

    # ------------------------------------------------------------------
    def render_text(self) -> str:
        counts = self.counts
        lines = [str(finding) for finding in self.findings]
        summary = (
            f"{self.program}: "
            + (
                "verified for all loop bounds"
                if not self.findings
                else f"{counts['error']} error(s), {counts['warning']} "
                f"warning(s), {counts['note']} note(s)"
            )
        )
        lines.append(summary)
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        """The stable v1 report schema shared with lint/certify."""
        return report_payload(
            "sourceflow",
            self.program,
            self.machine,
            self.findings,
            exit_code=self.exit_code,
            extra_summary={"fixpoint": dict(self.stats)},
        )

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)
