"""Worklist fixpoint engine of the source-level verifier.

The engine runs a classic interval abstract interpretation over the
:class:`~repro.analysis.sourceflow.cfg.SourceCFG`:

1. **Fixpoint** — chaotic iteration in reverse-postorder sweeps.  Loop
   heads join their entry and back-edge states for the first
   ``WIDEN_DELAY`` sweeps (letting short chains converge exactly), then
   *widen*, which jumps any still-moving bound to its extreme and
   guarantees termination for every trip count — including WHILE loops
   whose bound is only a hint.
2. **Narrowing** — one descending sweep that refines bounds widening
   threw to infinity.  A single decreasing iteration from a
   post-fixpoint stays above the least fixpoint, so soundness is kept.
3. **Reporting** — a final pass over the *stable* invariants that
   replays each reachable block once and records :class:`FactLog`
   entries (reads, defines, ratio/index/bound evaluations…).  Facts are
   collected only from the converged states, so a diagnostic describes
   the invariant, not some transient iterate — and the pass runs once
   per *syntactic* statement, which is what makes source-level lint
   O(1) in the trip count.

Statically decided branches prune edges: an IF whose condition is
definite only propagates state into the taken arm, and a FOR that can
never run contributes ⊥ to its body, so code the unroller would drop is
not analysed either.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...lang import ast
from ...machine.spec import MachineSpec
from ..state import AbsContent, VolumeInterval
from .cfg import BasicBlock, SourceCFG
from .domain import IT_CELL, DryVal, IntInterval, SourceState

__all__ = ["FactLog", "WIDEN_DELAY", "MAX_SWEEPS", "run_fixpoint"]

#: sweeps of plain joins before widening kicks in at loop heads.
WIDEN_DELAY = 3
#: hard ceiling on sweeps — the widened lattice converges in a handful;
#: hitting this means a bug in the transfer functions, not a big program.
MAX_SWEEPS = 64


# ---------------------------------------------------------------------------
# facts — everything the checks need, harvested from the converged states
# ---------------------------------------------------------------------------
@dataclass
class CellRead:
    line: int
    cell: str
    display: str
    pre: AbsContent
    op: str
    sink: bool


@dataclass
class CellDefine:
    line: int
    cell: str
    display: str
    pre: AbsContent
    token: int
    op: str
    summarized: bool
    #: bank targets only: every subscript is a statically-known constant.
    singleton_index: bool


@dataclass
class RatioFact:
    line: int
    parts: list[IntInterval]
    no_excess: bool
    n_operands: int


@dataclass
class IndexFact:
    line: int
    base: str
    dims: tuple[int, ...]
    indices: list[IntInterval]


@dataclass
class DryReadFact:
    line: int
    name: str
    definite: bool


@dataclass
class RuntimeFact:
    line: int
    name: str


@dataclass
class DivFact:
    line: int
    definite: bool


@dataclass
class HintFact:
    line: int
    definite: bool


@dataclass
class FractionFact:
    line: int
    which: str  # "YIELD" | "KEEP"
    definite: bool


@dataclass
class AuxFact:
    line: int
    name: str
    pre: AbsContent


@dataclass
class AliasFact:
    line: int
    display: str
    definite: bool


@dataclass
class FactLog:
    """The converged invariants, flattened into checkable facts."""

    reads: list[CellRead] = field(default_factory=list)
    defines: list[CellDefine] = field(default_factory=list)
    ratios: list[RatioFact] = field(default_factory=list)
    indexes: list[IndexFact] = field(default_factory=list)
    dry_reads: list[DryReadFact] = field(default_factory=list)
    runtime_uses: list[RuntimeFact] = field(default_factory=list)
    divisions: list[DivFact] = field(default_factory=list)
    hints: list[HintFact] = field(default_factory=list)
    fractions: list[FractionFact] = field(default_factory=list)
    aux_loads: list[AuxFact] = field(default_factory=list)
    aliases: list[AliasFact] = field(default_factory=list)
    #: (line, name): a SENSE result stored into a loop counter.
    clashes: list[tuple[int, str]] = field(default_factory=list)
    #: def-site tokens whose fluid (transitively) reached an OUTPUT/SENSE.
    sunk: set[int] = field(default_factory=set)
    #: cell -> def-site tokens of reachable definitions.
    def_sites: dict[str, set[int]] = field(default_factory=dict)
    #: the program delivers something off-chip / senses something.
    has_sink: bool = False
    #: loop head block id -> trip-count interval at the converged state.
    loop_trips: dict[int, IntInterval] = field(default_factory=dict)
    #: fixpoint instrumentation.
    sweeps: int = 0
    converged: bool = True
    reachable_blocks: int = 0


# ---------------------------------------------------------------------------
# dry-expression evaluation over the interval domain
# ---------------------------------------------------------------------------
class _Eval:
    """Evaluate a dry expression against one abstract state.

    ``static`` context mirrors :meth:`_Unroller.eval_dry` — an unbound or
    sensed (run-time) value is an error the unroller would raise.  In
    ``condition`` context the unroller falls back to a run-time guard
    instead, so the same situation just yields ⊤ with a taint flag.
    """

    def __init__(
        self,
        state: SourceState,
        cfg: SourceCFG,
        facts: FactLog | None,
        *,
        context: str = "static",
    ) -> None:
        self.state = state
        self.cfg = cfg
        self.facts = facts
        self.condition = context == "condition"
        self.tainted = False

    def eval(self, expr: ast.Expr, line: int) -> IntInterval:
        if isinstance(expr, ast.Num):
            return IntInterval.const(expr.value)
        if isinstance(expr, ast.Name):
            return self._read(expr.ident, expr.line or line)
        if isinstance(expr, ast.Index):
            indices = [self.eval(index, line) for index in expr.indices]
            dims = self.cfg.symbols.dims_of(expr.base)
            if self.facts is not None and dims:
                self.facts.indexes.append(
                    IndexFact(expr.line or line, expr.base, dims, indices)
                )
            return self._read(expr.base, expr.line or line)
        if isinstance(expr, ast.BinOp):
            left = self.eval(expr.left, line)
            right = self.eval(expr.right, line)
            if expr.op == "+":
                return left.add(right)
            if expr.op == "-":
                return left.sub(right)
            if expr.op == "*":
                return left.mul(right)
            if (
                right.contains(0)
                and not self.tainted
                and not self.condition
                and self.facts is not None
            ):
                self.facts.divisions.append(
                    DivFact(expr.line or line, right.is_singleton)
                )
            return left.floordiv(right)
        if isinstance(expr, ast.Compare):
            verdict = self.eval(expr.left, line).compare(
                expr.op, self.eval(expr.right, line)
            )
            if self.tainted:
                verdict = None
            if verdict is None:
                return IntInterval(0, 1)
            return IntInterval.const(int(verdict))
        # ``it`` is a wet register; semantic analysis rejects it in dry
        # positions, so a checked AST never reaches this line.
        self.tainted = True
        return IntInterval.top()

    def _read(self, name: str, line: int) -> IntInterval:
        val = self.state.dry.get(name)
        if val is None:
            if self.condition:
                self.tainted = True
            elif self.facts is not None:
                self.facts.dry_reads.append(DryReadFact(line, name, True))
            return IntInterval.top()
        if val.runtime:
            self.tainted = True
            if not self.condition and self.facts is not None:
                self.facts.runtime_uses.append(RuntimeFact(line, name))
            return IntInterval.top()
        if val.maybe_unset:
            if self.condition:
                self.tainted = True
            elif self.facts is not None:
                self.facts.dry_reads.append(DryReadFact(line, name, False))
        return val.value

    def verdict(self, expr: ast.Expr, line: int) -> bool | None:
        """Tri-state truth of a condition: matches the unroller's
        ``try_eval_dry`` + ``verdict == 0`` protocol."""
        value = self.eval(expr, line)
        if self.tainted:
            return None
        if value.is_singleton and value.lo == 0:
            return False
        if not value.contains(0):
            return True
        return None


# ---------------------------------------------------------------------------
# statement transfer functions
# ---------------------------------------------------------------------------
@dataclass
class _Operand:
    cell: str
    display: str
    bank: bool
    indices: list[IntInterval]

    @property
    def singleton(self) -> bool:
        return bool(self.indices) and all(
            iv.is_singleton for iv in self.indices
        )


class _Transfer:
    def __init__(
        self, cfg: SourceCFG, spec: MachineSpec, facts: FactLog | None
    ) -> None:
        self.cfg = cfg
        self.spec = spec
        self.facts = facts
        self.capacity = spec.limits.max_capacity

    # -- helpers --------------------------------------------------------
    def _static(
        self, state: SourceState, expr: ast.Expr, line: int
    ) -> IntInterval:
        return _Eval(state, self.cfg, self.facts).eval(expr, line)

    def resolve(
        self, state: SourceState, operand: ast.Expr, line: int
    ) -> _Operand:
        """Resolve a wet operand to its abstract cell."""
        if isinstance(operand, ast.ItRef):
            return _Operand(IT_CELL, "it", False, [])
        if isinstance(operand, ast.Name):
            return _Operand(operand.ident, operand.ident, False, [])
        assert isinstance(operand, ast.Index)
        evaluator = _Eval(state, self.cfg, self.facts)
        indices = [evaluator.eval(index, line) for index in operand.indices]
        dims = self.cfg.symbols.dims_of(operand.base)
        if self.facts is not None and dims:
            self.facts.indexes.append(
                IndexFact(operand.line or line, operand.base, dims, indices)
            )
        rendered = ", ".join(
            str(iv.lo) if iv.is_singleton else "?" for iv in indices
        )
        return _Operand(
            operand.base, f"{operand.base}[{rendered}]", True, indices
        )

    def read(
        self,
        state: SourceState,
        operand: _Operand,
        line: int,
        op: str,
        *,
        sink: bool = False,
    ) -> AbsContent:
        pre = state.cell(operand.cell)
        if self.facts is not None:
            self.facts.reads.append(
                CellRead(line, operand.cell, operand.display, pre, op, sink)
            )
            if sink:
                self.facts.sunk |= pre.defs
                self.facts.has_sink = True
        return pre

    def define(
        self,
        state: SourceState,
        operand: _Operand,
        line: int,
        token: int,
        op: str,
        content: AbsContent,
    ) -> None:
        pre = state.cell(operand.cell)
        if self.facts is not None:
            self.facts.defines.append(
                CellDefine(
                    line,
                    operand.cell,
                    operand.display,
                    pre,
                    token,
                    op,
                    operand.bank,
                    operand.bank and operand.singleton,
                )
            )
            self.facts.def_sites.setdefault(operand.cell, set()).add(token)
        if operand.bank:
            state.weak_set_cell(operand.cell, content)
        else:
            state.set_cell(operand.cell, content)

    # -- statements -----------------------------------------------------
    def stmt(self, state: SourceState, stmt: ast.Stmt) -> None:
        if isinstance(stmt, (ast.FluidDecl, ast.VarDecl)):
            return
        if isinstance(stmt, ast.Assign):
            self.assign(state, stmt)
        elif isinstance(stmt, ast.MixExpr):
            self.mix(state, stmt, owner=stmt, target=None)
        elif isinstance(stmt, ast.SenseStmt):
            self.sense(state, stmt)
        elif isinstance(stmt, ast.SeparateStmt):
            self.separate(state, stmt)
        elif isinstance(stmt, (ast.IncubateStmt, ast.ConcentrateStmt)):
            self.heat(state, stmt)
        elif isinstance(stmt, ast.OutputStmt):
            operand = self.resolve(state, stmt.operand, stmt.line)
            self.read(state, operand, stmt.line, "OUTPUT", sink=True)
        else:  # pragma: no cover - CFG only feeds leaf statements here
            raise TypeError(f"unexpected statement {type(stmt).__name__}")

    def assign(self, state: SourceState, stmt: ast.Assign) -> None:
        if isinstance(stmt.value, ast.MixExpr):
            self.mix(state, stmt.value, owner=stmt, target=stmt.target)
            return
        value = self._static(state, stmt.value, stmt.line)
        target = stmt.target
        if isinstance(target, ast.Index):
            evaluator = _Eval(state, self.cfg, self.facts)
            indices = [
                evaluator.eval(index, stmt.line) for index in target.indices
            ]
            dims = self.cfg.symbols.dims_of(target.base)
            if self.facts is not None and dims:
                self.facts.indexes.append(
                    IndexFact(stmt.line, target.base, dims, indices)
                )
            # smashed dry array: weak update
            old = state.dry.get(target.base)
            new = DryVal(value)
            state.dry[target.base] = new if old is None else old.join(new)
        else:
            state.dry[target.ident] = DryVal(value)

    def mix(
        self,
        state: SourceState,
        expr: ast.MixExpr,
        *,
        owner: ast.Stmt,
        target: ast.Target | None,
    ) -> None:
        token = self.cfg.stmt_id(owner)
        operands = [
            self.resolve(state, operand, expr.line)
            for operand in expr.operands
        ]
        self._alias_facts(expr.line, operands)
        defs = frozenset([token])
        for operand in operands:
            pre = self.read(state, operand, expr.line, "MIX")
            defs |= pre.defs
        if expr.ratios is not None:
            parts = [
                self._static(state, ratio, expr.line)
                for ratio in expr.ratios
            ]
            bases = {operand.cell for operand in operands}
            if target is not None:
                bases.add(
                    target.ident
                    if isinstance(target, ast.Name)
                    else target.base
                )
            if self.facts is not None:
                self.facts.ratios.append(
                    RatioFact(
                        expr.line,
                        parts,
                        bool(bases & self.cfg.symbols.no_excess),
                        len(operands),
                    )
                )
        self._static(state, expr.duration, expr.line)
        content = AbsContent.holding(
            VolumeInterval.at_most(self.capacity), defs
        )
        if target is not None:
            resolved = self.resolve(state, target, expr.line)
            self.define(state, resolved, expr.line, token, "MIX", content)
        elif self.facts is not None:
            # a bare MIX lands in ``it`` only; record the def site so
            # dead-fluid reachability still covers it (but the checks
            # never treat the ``it`` register as single-assignment)
            self.facts.defines.append(
                CellDefine(
                    expr.line, IT_CELL, "it", state.cell(IT_CELL), token,
                    "MIX", False, False,
                )
            )
            self.facts.def_sites.setdefault(IT_CELL, set()).add(token)
        state.set_cell(IT_CELL, content)

    def _alias_facts(self, line: int, operands: list[_Operand]) -> None:
        if self.facts is None:
            return
        for i, first in enumerate(operands):
            for second in operands[i + 1 :]:
                if first.cell != second.cell:
                    continue
                if not first.bank:
                    # the same scalar (or ``it``) twice: every
                    # concretisation violates MIX-operand distinctness
                    self.facts.aliases.append(
                        AliasFact(line, first.display, True)
                    )
                elif (
                    first.singleton
                    and second.singleton
                    and [iv.lo for iv in first.indices]
                    == [iv.lo for iv in second.indices]
                ):
                    self.facts.aliases.append(
                        AliasFact(line, first.display, True)
                    )
                elif all(
                    b.lo is None
                    or b.hi is None
                    or a.intersects(b.lo, b.hi)
                    for a, b in zip(first.indices, second.indices)
                ):
                    self.facts.aliases.append(
                        AliasFact(line, first.display, False)
                    )

    def sense(self, state: SourceState, stmt: ast.SenseStmt) -> None:
        operand = self.resolve(state, stmt.operand, stmt.line)
        self.read(state, operand, stmt.line, "SENSE", sink=True)
        target = stmt.target
        base = target.ident if isinstance(target, ast.Name) else target.base
        if isinstance(target, ast.Index):
            evaluator = _Eval(state, self.cfg, self.facts)
            indices = [
                evaluator.eval(index, stmt.line) for index in target.indices
            ]
            dims = self.cfg.symbols.dims_of(base)
            if self.facts is not None and dims:
                self.facts.indexes.append(
                    IndexFact(stmt.line, base, dims, indices)
                )
        if base in self.cfg.symbols.loop_vars and self.facts is not None:
            self.facts.clashes.append((stmt.line, base))
        sensed = DryVal(IntInterval.top(), runtime=True)
        if isinstance(target, ast.Index):
            old = state.dry.get(base)
            state.dry[base] = sensed if old is None else old.join(sensed)
        else:
            state.dry[base] = sensed

    def separate(self, state: SourceState, stmt: ast.SeparateStmt) -> None:
        operand = self.resolve(state, stmt.operand, stmt.line)
        pre = self.read(state, operand, stmt.line, "SEPARATE")
        token = self.cfg.stmt_id(stmt)
        if self.facts is not None:
            for name in (stmt.matrix, stmt.pusher):
                self.facts.aux_loads.append(
                    AuxFact(stmt.line, name, state.cell(name))
                )
        self._static(state, stmt.duration, stmt.line)
        if stmt.yield_hint is not None:
            self._fraction(state, stmt.yield_hint, stmt.line, "YIELD")
        content = AbsContent.holding(
            VolumeInterval.at_most(self.capacity),
            frozenset([token]) | pre.defs,
        )
        effluent = _Operand(stmt.effluent, stmt.effluent, False, [])
        self.define(state, effluent, stmt.line, token, "SEPARATE", content)
        state.set_cell(IT_CELL, content)
        state.set_cell(stmt.waste, AbsContent.consumed(frozenset([token])))

    def _fraction(
        self,
        state: SourceState,
        pair: tuple[ast.Expr, ast.Expr],
        line: int,
        which: str,
    ) -> None:
        numerator = self._static(state, pair[0], line)
        denominator = self._static(state, pair[1], line)
        # the unroller demands 0 < numerator <= denominator
        num_pos = numerator.compare(">", IntInterval.const(0))
        num_le_den = numerator.compare("<=", denominator)
        if self.facts is None:
            return
        if num_pos is False or num_le_den is False:
            self.facts.fractions.append(FractionFact(line, which, True))
        elif num_pos is None or num_le_den is None:
            self.facts.fractions.append(FractionFact(line, which, False))

    def heat(
        self,
        state: SourceState,
        stmt: ast.IncubateStmt | ast.ConcentrateStmt,
    ) -> None:
        is_concentrate = isinstance(stmt, ast.ConcentrateStmt)
        op = "CONCENTRATE" if is_concentrate else "INCUBATE"
        operand = self.resolve(state, stmt.operand, stmt.line)
        pre = self.read(state, operand, stmt.line, op)
        self._static(state, stmt.temperature, stmt.line)
        self._static(state, stmt.duration, stmt.line)
        if is_concentrate and stmt.keep is not None:
            self._fraction(state, stmt.keep, stmt.line, "KEEP")
        token = self.cfg.stmt_id(stmt)
        content = AbsContent.holding(
            VolumeInterval.at_most(self.capacity),
            frozenset([token]) | pre.defs,
        )
        if self.facts is not None:
            self.facts.defines.append(
                CellDefine(
                    stmt.line, IT_CELL, "it", state.cell(IT_CELL), token,
                    op, False, False,
                )
            )
            self.facts.def_sites.setdefault(IT_CELL, set()).add(token)
        state.set_cell(IT_CELL, content)


# ---------------------------------------------------------------------------
# the fixpoint engine
# ---------------------------------------------------------------------------
class _Engine:
    def __init__(self, cfg: SourceCFG, spec: MachineSpec) -> None:
        self.cfg = cfg
        self.spec = spec
        #: edge (src, dst) -> state flowing along it (absent = ⊥).
        self.edge_states: dict[tuple[int, int], SourceState] = {}
        self.in_states: dict[int, SourceState] = {}
        self.visits: dict[int, int] = {}

    # -- state plumbing -------------------------------------------------
    def block_in(self, block: BasicBlock) -> SourceState | None:
        state: SourceState | None = None
        if block.id == self.cfg.entry:
            state = SourceState()
        for pred in block.preds:
            incoming = self.edge_states.get((pred, block.id))
            if incoming is None:
                continue
            state = incoming.copy() if state is None else state.join(incoming)
        return state

    def apply_out(self, block: BasicBlock, state: SourceState) -> None:
        for edge, out in self.flow_out(block, state, None).items():
            if out is None:
                self.edge_states.pop(edge, None)
            else:
                self.edge_states[edge] = out

    def flow_out(
        self,
        block: BasicBlock,
        state: SourceState,
        facts: FactLog | None,
    ) -> dict[tuple[int, int], SourceState | None]:
        """Run the block's statements and compute per-edge out states."""
        transfer = _Transfer(self.cfg, self.spec, facts)
        post = state.copy()
        for stmt in block.stmts:
            transfer.stmt(post, stmt)
        edges: dict[tuple[int, int], SourceState | None] = {}
        if block.loop is not None:
            taken, fallthrough = self.loop_edges(block, post, facts)
            edges[(block.id, block.loop.body_entry)] = taken
            edges[(block.id, block.loop.exit)] = fallthrough
        elif block.branch is not None:
            then_id, else_id = block.succs
            evaluator = _Eval(post, self.cfg, None, context="condition")
            verdict = evaluator.verdict(
                block.branch.condition, block.branch.line
            )
            edges[(block.id, then_id)] = (
                None if verdict is False else post.copy()
            )
            edges[(block.id, else_id)] = (
                None if verdict is True else post.copy()
            )
        else:
            for succ in block.succs:
                edges[(block.id, succ)] = post.copy()
        return edges

    def loop_edges(
        self,
        block: BasicBlock,
        state: SourceState,
        facts: FactLog | None,
    ) -> tuple[SourceState | None, SourceState | None]:
        info = block.loop
        assert info is not None
        if info.kind == "for":
            stmt = info.stmt
            assert isinstance(stmt, ast.ForStmt)
            evaluator = _Eval(state, self.cfg, facts)
            start = evaluator.eval(stmt.start, stmt.line)
            stop = evaluator.eval(stmt.stop, stmt.line)
            runs = start.compare("<=", stop)
            trips_lo = 0
            if runs is True and start.hi is not None and stop.lo is not None:
                trips_lo = max(0, stop.lo - start.hi + 1)
            trips_hi: int | None = None
            if start.lo is not None and stop.hi is not None:
                trips_hi = max(0, stop.hi - start.lo + 1)
            if facts is not None:
                facts.loop_trips[block.id] = IntInterval(trips_lo, trips_hi)
            taken: SourceState | None = None
            if runs is not False and (trips_hi is None or trips_hi > 0):
                taken = state.copy()
                # the counter stays inside [start.lo, stop.hi] on every
                # iteration — a flat abstraction that needs no widening
                taken.dry[stmt.var] = DryVal(IntInterval(start.lo, stop.hi))
            fallthrough = state.copy()
            if runs is not False:
                final = DryVal(IntInterval(start.lo, stop.hi))
                prev = fallthrough.dry.get(stmt.var)
                if trips_lo >= 1:
                    fallthrough.dry[stmt.var] = final
                elif prev is None:
                    fallthrough.dry[stmt.var] = DryVal(
                        final.value, maybe_unset=True
                    )
                else:
                    fallthrough.dry[stmt.var] = prev.join(final)
            return taken, fallthrough
        stmt = info.stmt
        assert isinstance(stmt, ast.WhileStmt)
        evaluator = _Eval(state, self.cfg, facts)
        hint = evaluator.eval(stmt.hint, stmt.line)
        if facts is not None:
            definite_neg = hint.hi is not None and hint.hi < 0
            if definite_neg or hint.lo is None or hint.lo < 0:
                facts.hints.append(HintFact(stmt.line, definite_neg))
        condition = _Eval(state, self.cfg, None, context="condition")
        verdict = condition.verdict(stmt.condition, stmt.line)
        no_trips = hint.hi is not None and hint.hi <= 0
        taken = None
        if verdict is not False and not no_trips:
            taken = state.copy()
        if facts is not None:
            trips_lo = 0
            if verdict is True and hint.lo is not None:
                trips_lo = max(0, hint.lo)
            facts.loop_trips[block.id] = IntInterval(
                trips_lo, None if hint.hi is None else max(0, hint.hi)
            )
        return taken, state.copy()

    # -- driver ---------------------------------------------------------
    def run(self) -> FactLog:
        facts = FactLog()
        sweeps = 0
        changed = True
        while changed and sweeps < MAX_SWEEPS:
            sweeps += 1
            changed = False
            for block in self.cfg.blocks:
                new_in = self.block_in(block)
                if new_in is None:
                    continue
                old_in = self.in_states.get(block.id)
                if block.loop is not None and old_in is not None:
                    self.visits[block.id] = self.visits.get(block.id, 0) + 1
                    if self.visits[block.id] > WIDEN_DELAY:
                        new_in = old_in.widen(new_in)
                    else:
                        new_in = old_in.join(new_in)
                if old_in is not None and new_in == old_in:
                    continue
                changed = True
                self.in_states[block.id] = new_in
                self.apply_out(block, new_in)
        facts.converged = not changed
        facts.sweeps = sweeps

        # one descending sweep: loop heads narrow their widened invariant
        # against a fresh join of the converged predecessor states, and
        # the refinement propagates forward through the sweep
        for block in self.cfg.blocks:
            fresh = self.block_in(block)
            if fresh is None:
                self.in_states.pop(block.id, None)
                continue
            stable = self.in_states.get(block.id)
            if block.loop is not None and stable is not None:
                refined = stable.narrow(fresh)
            else:
                refined = fresh
            self.in_states[block.id] = refined
            self.apply_out(block, refined)

        # reporting pass: replay every reachable block once against its
        # converged in-state, recording facts
        for block in self.cfg.blocks:
            state = self.in_states.get(block.id)
            if state is None:
                continue
            facts.reachable_blocks += 1
            self.flow_out(block, state, facts)
        return facts


def run_fixpoint(cfg: SourceCFG, spec: MachineSpec) -> FactLog:
    """Iterate the CFG to a post-fixpoint and harvest the facts."""
    return _Engine(cfg, spec).run()
