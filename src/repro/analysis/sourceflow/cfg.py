"""Control-flow graph over the *rolled* (source-level) AST.

The unrolled pipeline flattens every FOR/WHILE/IF into straight-line
AIS before analysing it, so its cost — and its verdict — depends on the
concrete trip counts.  This module instead builds a conventional CFG
directly from the checked AST:

* leaf statements accumulate into basic blocks;
* a FOR/WHILE statement gets a dedicated *head* block with a ``taken``
  edge into the body and an ``exit`` edge past the loop, plus a back
  edge from the body's last block to the head;
* an IF ends the current block (the block's ``branch`` field holds the
  statement so the engine can prune statically-decided arms) and both
  arm chains meet again at a join block.

Block ids are assigned in construction order, which is a topological
order of the acyclic quotient (back edges always point to an older
block), so iterating blocks by id is a reverse-postorder — the worklist
engine relies on this for fast convergence.

Every leaf statement also receives a stable integer *statement id*
(used as the def-site token inside :class:`repro.analysis.state.AbsContent`)
and a record of its enclosing loops, so the checks can reason about
"does this definition re-execute?".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...lang import ast
from ...lang.semantic import SymbolTable, analyze

__all__ = ["BasicBlock", "LoopInfo", "SourceCFG", "build_cfg"]

#: statements that sit inside basic blocks (everything except control flow)
LeafStmt = (
    ast.FluidDecl,
    ast.VarDecl,
    ast.Assign,
    ast.MixExpr,  # a bare MIX statement (result lands in ``it``)
    ast.SenseStmt,
    ast.SeparateStmt,
    ast.IncubateStmt,
    ast.ConcentrateStmt,
    ast.OutputStmt,
)


@dataclass
class LoopInfo:
    """One FOR or WHILE loop of the program."""

    kind: str  # "for" | "while"
    stmt: ast.ForStmt | ast.WhileStmt
    head: int  # block id of the loop head
    body_entry: int  # first block of the body (the ``taken`` target)
    exit: int  # block following the loop (the fall-through target)
    back_edges: list[tuple[int, int]] = field(default_factory=list)


@dataclass
class BasicBlock:
    """A maximal straight-line run of leaf statements."""

    id: int
    stmts: list[ast.Stmt] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)
    #: set when this block is a loop head (its successors are then
    #: exactly ``[body_entry, exit]``).
    loop: LoopInfo | None = None
    #: set when this block ends at an IF (successors are then exactly
    #: ``[then_entry, else_entry]``).
    branch: ast.IfStmt | None = None


@dataclass
class SourceCFG:
    """The control-flow graph plus per-statement metadata."""

    program: ast.Program
    symbols: SymbolTable
    blocks: list[BasicBlock]
    entry: int
    exit: int
    loops: list[LoopInfo]
    #: stable def-site token per leaf statement (keyed by object identity).
    stmt_ids: dict[int, int]
    #: leaf statement object per def-site token (inverse of ``stmt_ids``).
    stmt_by_id: dict[int, ast.Stmt]
    #: enclosing loops (outermost first) per leaf statement token.
    enclosing_loops: dict[int, tuple[LoopInfo, ...]]
    #: whether the statement sits under any IF arm (conditional execution).
    under_branch: dict[int, bool]

    def stmt_id(self, stmt: ast.Stmt) -> int:
        return self.stmt_ids[id(stmt)]

    def rpo(self) -> list[int]:
        """Reverse-postorder over forward edges == construction order."""
        return [block.id for block in self.blocks]


class _Builder:
    def __init__(self, program: ast.Program, symbols: SymbolTable) -> None:
        self.program = program
        self.symbols = symbols
        self.blocks: list[BasicBlock] = []
        self.loops: list[LoopInfo] = []
        self.stmt_ids: dict[int, int] = {}
        self.stmt_by_id: dict[int, ast.Stmt] = {}
        self.enclosing_loops: dict[int, tuple[LoopInfo, ...]] = {}
        self.under_branch: dict[int, bool] = {}
        self.loop_stack: list[LoopInfo] = []
        self.branch_depth = 0

    def new_block(self) -> BasicBlock:
        block = BasicBlock(id=len(self.blocks))
        self.blocks.append(block)
        return block

    def edge(self, src: int, dst: int) -> None:
        self.blocks[src].succs.append(dst)
        self.blocks[dst].preds.append(src)

    def register(self, stmt: ast.Stmt) -> None:
        token = len(self.stmt_ids)
        self.stmt_ids[id(stmt)] = token
        self.stmt_by_id[token] = stmt
        self.enclosing_loops[token] = tuple(self.loop_stack)
        self.under_branch[token] = self.branch_depth > 0

    def build_body(self, body: list[ast.Stmt], current: BasicBlock) -> BasicBlock:
        """Lower ``body`` starting in ``current``; return the block that
        control falls out of."""
        for stmt in body:
            if isinstance(stmt, LeafStmt):
                self.register(stmt)
                current.stmts.append(stmt)
            elif isinstance(stmt, (ast.ForStmt, ast.WhileStmt)):
                head = self.new_block()
                self.edge(current.id, head.id)
                body_entry = self.new_block()
                kind = "for" if isinstance(stmt, ast.ForStmt) else "while"
                info = LoopInfo(
                    kind=kind,
                    stmt=stmt,
                    head=head.id,
                    body_entry=body_entry.id,
                    exit=-1,  # patched below
                )
                head.loop = info
                self.loops.append(info)
                # taken edge first: the engine reads succs as [taken, exit]
                self.edge(head.id, body_entry.id)
                self.loop_stack.append(info)
                body_end = self.build_body(stmt.body, body_entry)
                self.loop_stack.pop()
                self.edge(body_end.id, head.id)  # back edge
                info.back_edges.append((body_end.id, head.id))
                exit_block = self.new_block()
                info.exit = exit_block.id
                self.edge(head.id, exit_block.id)
                current = exit_block
            elif isinstance(stmt, ast.IfStmt):
                current.branch = stmt
                then_entry = self.new_block()
                self.edge(current.id, then_entry.id)
                self.branch_depth += 1
                then_end = self.build_body(stmt.then_body, then_entry)
                if stmt.else_body:
                    else_entry = self.new_block()
                    self.edge(current.id, else_entry.id)
                    else_end = self.build_body(stmt.else_body, else_entry)
                else:
                    # no else: the fall-through arm is an empty block so
                    # the branch still has exactly two successors
                    else_entry = self.new_block()
                    self.edge(current.id, else_entry.id)
                    else_end = else_entry
                self.branch_depth -= 1
                join = self.new_block()
                self.edge(then_end.id, join.id)
                self.edge(else_end.id, join.id)
                current = join
            else:  # pragma: no cover - parser produces no other nodes
                raise TypeError(f"unexpected statement {type(stmt).__name__}")
        return current

    def build(self) -> SourceCFG:
        entry = self.new_block()
        last = self.build_body(self.program.body, entry)
        return SourceCFG(
            program=self.program,
            symbols=self.symbols,
            blocks=self.blocks,
            entry=entry.id,
            exit=last.id,
            loops=self.loops,
            stmt_ids=self.stmt_ids,
            stmt_by_id=self.stmt_by_id,
            enclosing_loops=self.enclosing_loops,
            under_branch=self.under_branch,
        )


def build_cfg(
    program: ast.Program, symbols: SymbolTable | None = None
) -> SourceCFG:
    """Build the CFG of a checked program.

    ``symbols`` may be passed when semantic analysis already ran (the
    pass-manager path); otherwise it is derived here.
    """
    if symbols is None:
        symbols = analyze(program)
    return _Builder(program, symbols).build()
