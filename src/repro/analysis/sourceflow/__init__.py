"""Source-level parametric volume verifier.

The paper (Section 3.5) — and the rest of this repo's analysis stack —
handles control flow by fully unrolling loops, so ``repro lint`` sees a
straight-line program whose size (and verdict) depends on the concrete
trip counts.  This package verifies the *rolled* program instead: a CFG
built straight from the checked AST, an interval abstract domain with
widening, and a worklist fixpoint whose invariants quantify over **all**
loop bounds.  Verification cost is O(program size), independent of N.

Public entry points:

* :func:`verify_program` — verify a parsed+checked AST;
* :func:`verify_source` — parse, check, and verify assay source text;
* :class:`SourceReport` — findings + fixpoint stats, sharing the v1
  report schema and severity/exit-code table with lint and certify.
"""

from __future__ import annotations

from ...lang import ast
from ...lang.parser import parse
from ...lang.semantic import SymbolTable, analyze
from ...machine.spec import AQUACORE_SPEC, MachineSpec
from .cfg import SourceCFG, build_cfg
from .checks import SRC_CODES, SourceReport, run_checks
from .domain import IT_CELL, DryVal, IntInterval, SourceState
from .engine import MAX_SWEEPS, WIDEN_DELAY, FactLog, run_fixpoint

__all__ = [
    "SRC_CODES",
    "IT_CELL",
    "WIDEN_DELAY",
    "MAX_SWEEPS",
    "IntInterval",
    "DryVal",
    "SourceState",
    "SourceCFG",
    "FactLog",
    "SourceReport",
    "build_cfg",
    "run_fixpoint",
    "run_checks",
    "verify_program",
    "verify_source",
]


def verify_program(
    program: ast.Program,
    spec: MachineSpec = AQUACORE_SPEC,
    *,
    symbols: SymbolTable | None = None,
) -> SourceReport:
    """Verify a checked AST for all loop bounds."""
    if symbols is None:
        symbols = analyze(program)
    cfg = build_cfg(program, symbols)
    facts = run_fixpoint(cfg, spec)
    findings = run_checks(cfg, facts, spec)
    return SourceReport(
        program=program.name,
        machine=spec.name,
        findings=findings,
        stats={
            "sweeps": facts.sweeps,
            "converged": facts.converged,
            "blocks": len(cfg.blocks),
            "reachable_blocks": facts.reachable_blocks,
            "loops": len(cfg.loops),
        },
    )


def verify_source(
    text: str,
    spec: MachineSpec = AQUACORE_SPEC,
    *,
    name: str | None = None,
) -> SourceReport:
    """Parse, semantically check, and source-verify assay text.

    Raises:
        LexError/ParseError/SemanticError: when the text does not even
        reach the analysable stage (same front-end contract as compile).
    """
    program = parse(text)
    if name is not None:
        program = ast.Program(name=name, body=program.body, line=program.line)
    return verify_program(program, spec)
