"""Abstract domain of the source-level parametric verifier.

Three layers, all with explicit ⊤/⊥, join, widening and narrowing:

* :class:`IntInterval` — dry integers (loop counters, dilution registers,
  ratios, subscripts) as intervals over ``int`` with ``None`` meaning the
  respective infinity.  Widening (after the engine's delay) sends a bound
  that is still moving to its extreme, which is what makes loop-carried
  registers such as the enzyme assay's ``temp = temp * 10`` converge for
  *every* trip count.
* :class:`DryVal` — an interval plus two qualifiers: ``maybe_unset``
  (absent on some path) and ``runtime`` (holds a sensed value, which the
  unrolled pipeline cannot evaluate statically).  A name missing from the
  environment entirely is *definitely* unassigned.
* fluid cells — reuse :class:`repro.analysis.state.AbsContent` (extended
  with ``join``/``widen`` for this engine).  Each scalar fluid is one
  cell with strong updates; a fluid *bank* (``s3(i)`` in the rolled
  listing, ``Diluted_Inhibitor[4]`` at source level) is **smashed** into
  one summary cell with weak updates, so the verdict is independent of
  the bank's extent.  The pseudo-cell ``__it__`` models the ``it``
  register (strong updates; excluded from single-assignment checks).

⊥ is uniformly represented by *absence*: an unreachable block has no
state at all, an unbound variable has no entry in ``dry``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction

from ..state import AbsContent

__all__ = ["IT_CELL", "IntInterval", "DryVal", "SourceState"]

#: the abstract cell modelling the ``it`` register.
IT_CELL = "__it__"

Bound = int | None  # None = the infinity of the respective direction


def _as_real(bound: Bound, *, sign: int) -> float | int:
    """Finite bounds stay exact ints; ``None`` becomes ±inf for math."""
    if bound is None:
        return math.inf * sign
    return bound


def _as_bound(value: float | int | Fraction) -> Bound:
    if isinstance(value, float) and math.isinf(value):
        return None
    if isinstance(value, Fraction):
        return math.floor(value)
    return int(value)


@dataclass(frozen=True)
class IntInterval:
    """A closed integer interval; ``lo=None`` is -inf, ``hi=None`` +inf.

    The empty interval (⊥) is never materialised — an unreachable value
    is simply absent from the environment.
    """

    lo: Bound = None
    hi: Bound = None

    def __post_init__(self) -> None:
        if self.lo is not None and self.hi is not None and self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    # -- constructors ---------------------------------------------------
    @classmethod
    def const(cls, value: int) -> "IntInterval":
        return cls(value, value)

    @classmethod
    def top(cls) -> "IntInterval":
        return cls(None, None)

    # -- predicates -----------------------------------------------------
    @property
    def is_singleton(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    @property
    def is_top(self) -> bool:
        return self.lo is None and self.hi is None

    def contains(self, value: int) -> bool:
        if self.lo is not None and value < self.lo:
            return False
        return self.hi is None or value <= self.hi

    def intersects(self, lo: int, hi: int) -> bool:
        """True when the interval meets the closed range ``[lo, hi]``."""
        if self.hi is not None and self.hi < lo:
            return False
        return self.lo is None or self.lo <= hi

    def within(self, lo: int, hi: int) -> bool:
        """True when the interval lies entirely inside ``[lo, hi]``."""
        if self.lo is None or self.lo < lo:
            return False
        return self.hi is not None and self.hi <= hi

    # -- arithmetic -----------------------------------------------------
    def add(self, other: "IntInterval") -> "IntInterval":
        lo = None if self.lo is None or other.lo is None else self.lo + other.lo
        hi = None if self.hi is None or other.hi is None else self.hi + other.hi
        return IntInterval(lo, hi)

    def sub(self, other: "IntInterval") -> "IntInterval":
        lo = None if self.lo is None or other.hi is None else self.lo - other.hi
        hi = None if self.hi is None or other.lo is None else self.hi - other.lo
        return IntInterval(lo, hi)

    def mul(self, other: "IntInterval") -> "IntInterval":
        products = []
        for a in (_as_real(self.lo, sign=-1), _as_real(self.hi, sign=1)):
            for b in (_as_real(other.lo, sign=-1), _as_real(other.hi, sign=1)):
                # inf * 0 contributes 0 to the hull (exact for endpoints)
                products.append(0 if (a == 0 or b == 0) else a * b)
        return IntInterval(_as_bound(min(products)), _as_bound(max(products)))

    def floordiv(self, other: "IntInterval") -> "IntInterval":
        """Sound hull of ``self // other`` for a sign-definite divisor;
        callers handle a divisor straddling zero (→ ⊤) themselves."""
        if other.contains(0):
            return IntInterval.top()
        quotients: list[float | Fraction] = []
        for a in (_as_real(self.lo, sign=-1), _as_real(self.hi, sign=1)):
            for b in (_as_real(other.lo, sign=-1), _as_real(other.hi, sign=1)):
                if isinstance(a, float) and math.isinf(a):
                    if isinstance(b, float) and math.isinf(b):
                        quotients.append(math.copysign(math.inf, a * b))
                    else:
                        quotients.append(math.copysign(math.inf, a * b))
                elif isinstance(b, float) and math.isinf(b):
                    # finite / inf approaches 0 from one side; floor covers it
                    quotients.append(Fraction(0))
                else:
                    quotients.append(Fraction(int(a), int(b)))
        lo = min(quotients)
        hi = max(quotients)
        return IntInterval(
            None if isinstance(lo, float) else math.floor(lo),
            None if isinstance(hi, float) else math.floor(hi),
        )

    def compare(self, op: str, other: "IntInterval") -> bool | None:
        """Decide ``self op other`` when every concretisation agrees;
        ``None`` when the verdict depends on the concrete values."""
        a_lo = _as_real(self.lo, sign=-1)
        a_hi = _as_real(self.hi, sign=1)
        b_lo = _as_real(other.lo, sign=-1)
        b_hi = _as_real(other.hi, sign=1)
        if op == "<":
            if a_hi < b_lo:
                return True
            if a_lo >= b_hi:
                return False
            return None
        if op == "<=":
            if a_hi <= b_lo:
                return True
            if a_lo > b_hi:
                return False
            return None
        if op == ">":
            return other.compare("<", self)
        if op == ">=":
            return other.compare("<=", self)
        if op == "==":
            if self.is_singleton and other.is_singleton and self.lo == other.lo:
                return True
            if a_hi < b_lo or b_hi < a_lo:
                return False
            return None
        if op == "!=":
            verdict = self.compare("==", other)
            return None if verdict is None else not verdict
        raise ValueError(f"unknown comparison {op!r}")

    # -- lattice --------------------------------------------------------
    def join(self, other: "IntInterval") -> "IntInterval":
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return IntInterval(lo, hi)

    def widen(self, other: "IntInterval") -> "IntInterval":
        """Widen ``self`` (old) by ``other`` (new), with 0 as the one
        threshold below (loop counters and dilution registers are almost
        always nonnegative, and the landing point keeps subscripts
        checkable)."""
        lo = self.lo
        if lo is not None and (other.lo is None or other.lo < lo):
            lo = 0 if (other.lo is not None and other.lo >= 0) else None
        hi = self.hi
        if hi is not None and (other.hi is None or other.hi > hi):
            hi = None
        return IntInterval(lo, hi)

    def narrow(self, other: "IntInterval") -> "IntInterval":
        """Refine bounds that widening sent to infinity from ``other``."""
        lo = other.lo if self.lo is None else self.lo
        hi = other.hi if self.hi is None else self.hi
        if lo is not None and hi is not None and lo > hi:
            return self
        return IntInterval(lo, hi)

    def __str__(self) -> str:
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


@dataclass(frozen=True)
class DryVal:
    """Abstract value of one dry variable (or smashed dry array)."""

    value: IntInterval
    #: unbound on at least one path into the current point.
    maybe_unset: bool = False
    #: holds a sensed (run-time) value; not statically evaluable.
    runtime: bool = False

    def join(self, other: "DryVal") -> "DryVal":
        return DryVal(
            self.value.join(other.value),
            self.maybe_unset or other.maybe_unset,
            self.runtime or other.runtime,
        )

    def widen(self, other: "DryVal") -> "DryVal":
        return DryVal(
            self.value.widen(other.value),
            self.maybe_unset or other.maybe_unset,
            self.runtime or other.runtime,
        )

    def narrow(self, other: "DryVal") -> "DryVal":
        return DryVal(
            self.value.narrow(other.value),
            self.maybe_unset and other.maybe_unset,
            self.runtime or other.runtime,
        )


@dataclass
class SourceState:
    """One abstract machine state at a CFG program point.

    ``dry`` maps variable names (and smashed dry-array base names) to
    :class:`DryVal`; a missing name is *definitely* unassigned.  ``cells``
    maps fluid cell keys to :class:`AbsContent`; a missing cell is
    definitely EMPTY (never filled).  Unreachable program points carry no
    state at all (⊥).
    """

    dry: dict[str, DryVal] = field(default_factory=dict)
    cells: dict[str, AbsContent] = field(default_factory=dict)

    def copy(self) -> "SourceState":
        return SourceState(dict(self.dry), dict(self.cells))

    # -- cells ----------------------------------------------------------
    def cell(self, key: str) -> AbsContent:
        return self.cells.get(key, AbsContent.empty())

    def set_cell(self, key: str, content: AbsContent) -> None:
        """Strong update (scalar fluids and the ``it`` register)."""
        self.cells[key] = content

    def weak_set_cell(self, key: str, content: AbsContent) -> None:
        """Weak update (summarised banks: the cell may denote any member,
        so the old contents stay possible)."""
        self.cells[key] = self.cell(key).join(content)

    # -- lattice --------------------------------------------------------
    def _merge(self, other: "SourceState", op: str) -> "SourceState":
        dry: dict[str, DryVal] = {}
        for name in self.dry.keys() | other.dry.keys():
            mine = self.dry.get(name)
            theirs = other.dry.get(name)
            if mine is None:
                assert theirs is not None
                dry[name] = DryVal(theirs.value, True, theirs.runtime)
            elif theirs is None:
                dry[name] = DryVal(mine.value, True, mine.runtime)
            else:
                dry[name] = getattr(mine, op)(theirs)
        cells: dict[str, AbsContent] = {}
        for key in self.cells.keys() | other.cells.keys():
            cells[key] = getattr(self.cell(key), op)(other.cell(key))
        return SourceState(dry, cells)

    def join(self, other: "SourceState") -> "SourceState":
        return self._merge(other, "join")

    def widen(self, other: "SourceState") -> "SourceState":
        return self._merge(other, "widen")

    def narrow(self, other: "SourceState") -> "SourceState":
        dry = {
            name: (
                val.narrow(other.dry[name]) if name in other.dry else val
            )
            for name, val in self.dry.items()
        }
        return SourceState(dry, dict(self.cells))
