"""The check registry: linear-resource safety rules over AIS programs.

Each check consumes the facts a single :class:`ForwardAnalysis` pass
computed (pre-states, accesses, value flow) and yields structured
:class:`Diagnostic`\\ s with **stable codes** (catalogued with minimal
failing examples in ``docs/ANALYSIS.md``):

==========================  ========  =====================================
code                        severity  meaning
==========================  ========  =====================================
``use-after-consume``       error     dispensing from a location whose
                                      contents were fully moved out
``read-before-fill``        error*    reading a location that never held
                                      fluid (*warning for ``output``)
``double-fill``             error     ``input`` into a non-empty location
``dead-fluid``              warning   a produced fluid never transitively
                                      reaches a product ``output``/``sense``
``static-overflow``         error*    statically-known volumes exceed the
                                      location capacity (*warning for
                                      ``input``, which the hardware clamps)
``static-underflow``        error     a metered volume below the least count
``insufficient-volume``     error     a metered draw larger than its source
                                      can possibly hold
``storage-less-misuse``     error     separator sub-port protocol violation
                                      (outlet read before/after its
                                      ``separate``, well dispensed/loaded
                                      wrongly)
``dry-wet-clash``           error     a dry register named like a wet
                                      component, or used as a wet operand
``unknown-operand``         error     a wet operand addressing nothing on
                                      the machine
``port-misuse``             error     a port operand in the wrong position
``unit-kind-mismatch``      error     an operation on the wrong kind of
                                      functional unit (or unsupported mode)
==========================  ========  =====================================

New checks subclass :class:`Check` and register with :func:`register`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterator, Sequence

from ..compiler.diagnostics import Diagnostic, Severity
from ..ir.instructions import Instruction, Opcode
from ..ir.program import AISProgram
from ..machine.spec import AQUACORE_SPEC, MachineSpec
from .dataflow import Access, AccessKind, ForwardAnalysis, is_waste_output
from .state import ContentKind

__all__ = [
    "AnalysisContext",
    "Check",
    "register",
    "all_checks",
    "check_codes",
    "analyze",
]

#: read kinds that dispense fluid (destructive or metered use).
_DISPENSING_READS = (
    AccessKind.READ_METERED,
    AccessKind.READ_DRAIN,
    AccessKind.READ_FEED,
)


@dataclass
class AnalysisContext:
    """Everything a check may look at."""

    program: AISProgram
    spec: MachineSpec
    forward: ForwardAnalysis
    #: names that live in the dry register file (dry-op registers and
    #: operands, sense result variables).
    dry_names: dict[str, int] = field(default_factory=dict)

    def instruction(self, index: int) -> Instruction:
        return self.program[index]

    def describe(self, index: int) -> str:
        return self.program[index].render()

    def producer_label(self, index: int) -> str:
        return self.forward.flow.producers.get(index, f"instruction {index}")


class Check:
    """One safety rule.  Subclasses set ``name``/``codes`` and implement
    :meth:`run`."""

    name: str = ""
    codes: Sequence[str] = ()
    description: str = ""

    def run(self, ctx: AnalysisContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diagnostic(
        self,
        severity: Severity,
        code: str,
        message: str,
        *,
        instruction: int | None = None,
        operand: str | None = None,
    ) -> Diagnostic:
        assert code in self.codes, f"{self.name} emitted unregistered {code}"
        return Diagnostic(
            severity, code, message, instruction=instruction, operand=operand
        )


_REGISTRY: list[type[Check]] = []


def register(check_class: type[Check]) -> type[Check]:
    _REGISTRY.append(check_class)
    return check_class


def all_checks() -> list[Check]:
    return [check_class() for check_class in _REGISTRY]


def check_codes() -> dict[str, str]:
    """code -> owning check name, for documentation and tooling."""
    return {
        code: check_class.name
        for check_class in _REGISTRY
        for code in check_class.codes
    }


# ---------------------------------------------------------------------------
@register
class UseAfterConsumeCheck(Check):
    """The linear-type violation: fluid uses are destructive, so a location
    whose contents were fully moved out has nothing left to dispense."""

    name = "use-after-consume"
    codes = ("use-after-consume", "read-before-fill")
    description = (
        "reads of locations that are consumed (contents fully moved out) "
        "or that never held fluid"
    )

    def run(self, ctx: AnalysisContext) -> Iterator[Diagnostic]:
        for access in ctx.forward.accesses:
            if not access.is_read or access.guarded:
                continue
            place = access.place
            if not place.holds_fluid or place.is_subport:
                continue  # ports/unknown names and sub-ports have own checks
            if access.kind is AccessKind.READ_OUTPUT and is_waste_output(
                ctx.instruction(access.index)
            ):
                # codegen's housekeeping: flushing residue/excess drains a
                # location that may well be empty already — by design.
                continue
            what = ctx.describe(access.index)
            if access.before.kind is ContentKind.CONSUMED:
                origin = ""
                if access.before.defs:
                    first = min(access.before.defs)
                    origin = f" (was {ctx.producer_label(first)})"
                yield self.diagnostic(
                    Severity.ERROR,
                    "use-after-consume",
                    f"`{what}` reads {place.text}, whose contents were "
                    f"already fully moved out{origin}",
                    instruction=access.index,
                    operand=place.text,
                )
            elif access.before.kind is ContentKind.EMPTY:
                severity = (
                    Severity.WARNING
                    if access.kind is AccessKind.READ_OUTPUT
                    else Severity.ERROR
                )
                yield self.diagnostic(
                    severity,
                    "read-before-fill",
                    f"`{what}` reads {place.text}, which never held fluid",
                    instruction=access.index,
                    operand=place.text,
                )


@register
class DoubleFillCheck(Check):
    """``input`` into an occupied location: the fresh draw would land on
    top of live contents, silently contaminating the mixture."""

    name = "double-fill"
    codes = ("double-fill",)
    description = "input instructions targeting a location that still holds fluid"

    def run(self, ctx: AnalysisContext) -> Iterator[Diagnostic]:
        for access in ctx.forward.accesses:
            if access.kind is not AccessKind.WRITE_FILL or access.guarded:
                continue
            if not access.place.holds_fluid:
                continue
            if access.before.kind is ContentKind.HOLDS:
                yield self.diagnostic(
                    Severity.ERROR,
                    "double-fill",
                    f"`{ctx.describe(access.index)}` loads into "
                    f"{access.place.text}, which still holds fluid",
                    instruction=access.index,
                    operand=access.place.text,
                )


@register
class DeadFluidCheck(Check):
    """A fluid value (input load, mix result, separation effluent) that
    never transitively reaches a product ``output`` or a ``sense`` was
    metered, loaded, and moved for nothing."""

    name = "dead-fluid"
    codes = ("dead-fluid",)
    description = "produced fluids that never reach a product output or sense"

    def run(self, ctx: AnalysisContext) -> Iterator[Diagnostic]:
        flow = ctx.forward.flow
        if not flow.product_sinks:
            # A program that delivers nothing off-chip leaves its result
            # parked on the machine; reachability is meaningless then.
            return
        for index in sorted(flow.producers):
            if not flow.reaches_product(index):
                yield self.diagnostic(
                    Severity.WARNING,
                    "dead-fluid",
                    f"{ctx.producer_label(index)} never reaches an output "
                    "or sense; the fluid is loaded and moved for nothing",
                    instruction=index,
                )


@register
class StaticVolumeCheck(Check):
    """Interval-propagated volumes against the machine's max-capacity and
    least-count limits — before ever invoking the LP.  Only *definite*
    violations fire: the lower volume bound alone must break the limit."""

    name = "static-volume"
    codes = ("static-overflow", "static-underflow", "insufficient-volume")
    description = (
        "statically-known volumes violating capacity or least-count limits"
    )

    def run(self, ctx: AnalysisContext) -> Iterator[Diagnostic]:
        least = ctx.spec.limits.least_count
        for access in ctx.forward.accesses:
            place = access.place
            moved = access.moved
            if moved is None:
                continue
            what = ctx.describe(access.index)
            if (
                access.kind is AccessKind.READ_METERED
                and place.holds_fluid
                and moved.is_exact
            ):
                if moved.lo < least:
                    yield self.diagnostic(
                        Severity.ERROR,
                        "static-underflow",
                        f"`{what}` meters {float(moved.lo):g} nl, below the "
                        f"least count of {float(least):g} nl",
                        instruction=access.index,
                        operand=place.text,
                    )
                elif (
                    access.before.volume.hi is not None
                    and moved.lo > access.before.volume.hi
                ):
                    yield self.diagnostic(
                        Severity.ERROR,
                        "insufficient-volume",
                        f"`{what}` draws {float(moved.lo):g} nl but "
                        f"{place.text} can hold at most "
                        f"{float(access.before.volume.hi):g} nl here",
                        instruction=access.index,
                        operand=place.text,
                    )
            if access.kind in (
                AccessKind.WRITE_DEPOSIT,
                AccessKind.WRITE_FILL,
                AccessKind.WRITE_PRODUCE,
            ) and place.holds_fluid and place.capacity is not None:
                if place.kind == "sensor":
                    resulting = moved.lo  # flow cell: previous sample flushed
                else:
                    resulting = access.before.volume.lo + moved.lo
                if resulting > place.capacity:
                    severity = (
                        Severity.WARNING
                        if access.kind is AccessKind.WRITE_FILL
                        else Severity.ERROR
                    )
                    clamp = (
                        "; the input port clamps to free space"
                        if access.kind is AccessKind.WRITE_FILL
                        else ""
                    )
                    yield self.diagnostic(
                        severity,
                        "static-overflow",
                        f"`{what}` brings {place.text} to at least "
                        f"{float(resulting):g} nl, over its capacity of "
                        f"{float(place.capacity):g} nl{clamp}",
                        instruction=access.index,
                        operand=place.text,
                    )


@register
class StorageLessCheck(Check):
    """Separator sub-ports are the storage-less operands: ``out1``/``out2``
    exist only between their producing ``separate`` and the single read
    that drains them; ``matrix``/``pusher`` are load-only consumables."""

    name = "storage-less-misuse"
    codes = ("storage-less-misuse",)
    description = "separator sub-port protocol violations"

    def run(self, ctx: AnalysisContext) -> Iterator[Diagnostic]:
        for access in ctx.forward.accesses:
            place = access.place
            if not place.is_subport or not place.is_valid or access.guarded:
                continue
            if access.kind is AccessKind.READ_OUTPUT and is_waste_output(
                ctx.instruction(access.index)
            ):
                continue  # discarding a spent outlet is housekeeping
            what = ctx.describe(access.index)
            if place.sub in ("out1", "out2"):
                if access.is_read:
                    if access.before.kind is ContentKind.EMPTY:
                        yield self.diagnostic(
                            Severity.ERROR,
                            "storage-less-misuse",
                            f"`{what}` reads {place.text} before any "
                            f"separate has produced it",
                            instruction=access.index,
                            operand=place.text,
                        )
                    elif access.before.kind is ContentKind.CONSUMED:
                        yield self.diagnostic(
                            Severity.ERROR,
                            "storage-less-misuse",
                            f"`{what}` reads {place.text} a second time; "
                            "the outlet was already drained",
                            instruction=access.index,
                            operand=place.text,
                        )
                elif access.kind is AccessKind.WRITE_DEPOSIT:
                    yield self.diagnostic(
                        Severity.ERROR,
                        "storage-less-misuse",
                        f"`{what}` loads into {place.text}; outlet wells "
                        "are produced by separate, not loaded",
                        instruction=access.index,
                        operand=place.text,
                    )
            elif place.sub in ("matrix", "pusher") and access.is_read:
                yield self.diagnostic(
                    Severity.ERROR,
                    "storage-less-misuse",
                    f"`{what}` dispenses from {place.text}; the "
                    f"{place.sub} well is consumed by separate and cannot "
                    "be read",
                    instruction=access.index,
                    operand=place.text,
                )


def _wet_operands(instruction: Instruction):
    if instruction.dst is not None:
        yield "dst", instruction.dst
    if instruction.src is not None:
        yield "src", instruction.src


@register
class DryWetClashCheck(Check):
    """Dry registers and wet locations live in different register files;
    a name crossing over is always a programming error."""

    name = "dry-wet-clash"
    codes = ("dry-wet-clash",)
    description = "dry registers used as wet operands, or vice versa"

    def run(self, ctx: AnalysisContext) -> Iterator[Diagnostic]:
        for index, instruction in enumerate(ctx.program):
            what = instruction.render()
            if not instruction.is_wet:
                for role, name in (
                    ("register", instruction.reg),
                    ("operand", instruction.value),
                ):
                    if (
                        isinstance(name, str)
                        and ctx.spec.component_kind(name) is not None
                    ):
                        yield self.diagnostic(
                            Severity.ERROR,
                            "dry-wet-clash",
                            f"`{what}` uses wet component {name!r} as a "
                            f"dry {role}",
                            instruction=index,
                            operand=name,
                        )
                continue
            if (
                instruction.opcode is Opcode.SENSE
                and instruction.result is not None
                and ctx.spec.component_kind(instruction.result) is not None
            ):
                yield self.diagnostic(
                    Severity.ERROR,
                    "dry-wet-clash",
                    f"`{what}` stores its reading into {instruction.result!r}, "
                    "which names a wet component",
                    instruction=index,
                    operand=instruction.result,
                )
            for _, operand in _wet_operands(instruction):
                if (
                    ctx.spec.component_kind(operand.base) is None
                    and operand.base in ctx.dry_names
                ):
                    yield self.diagnostic(
                        Severity.ERROR,
                        "dry-wet-clash",
                        f"`{what}` uses dry register {operand.base!r} as a "
                        "wet operand",
                        instruction=index,
                        operand=str(operand),
                    )


@register
class OperandCheck(Check):
    """Structural operand sanity: every wet operand must address a real
    location, ports must appear in the right positions, and operations
    must target the right kind of functional unit."""

    name = "operands"
    codes = ("unknown-operand", "port-misuse", "unit-kind-mismatch")
    description = "unknown names, misplaced ports, wrong unit kinds"

    _UNIT_FOR_OP = {
        Opcode.MIX: "mixer",
        Opcode.INCUBATE: "heater",
        Opcode.CONCENTRATE: "heater",
        Opcode.SEPARATE: "separator",
        Opcode.SENSE: "sensor",
    }

    def run(self, ctx: AnalysisContext) -> Iterator[Diagnostic]:
        seen: set[tuple] = set()
        for index, instruction in enumerate(ctx.program):
            if not instruction.is_wet:
                continue
            what = instruction.render()
            for role, operand in _wet_operands(instruction):
                place = ctx.forward.place(operand)
                if place.kind is None:
                    if operand.base in ctx.dry_names:
                        continue  # reported as dry-wet-clash
                    key = ("unknown", str(operand))
                    if key in seen:
                        continue
                    seen.add(key)
                    yield self.diagnostic(
                        Severity.ERROR,
                        "unknown-operand",
                        f"`{what}`: {operand} addresses nothing on machine "
                        f"{ctx.spec.name!r}",
                        instruction=index,
                        operand=str(operand),
                    )
                    continue
                if not place.is_valid:
                    yield self.diagnostic(
                        Severity.ERROR,
                        "unknown-operand",
                        f"`{what}`: {place.base!r} (a {place.kind}) has no "
                        f"sub-port {place.sub!r}",
                        instruction=index,
                        operand=str(operand),
                    )
                    continue
                yield from self._port_position(
                    ctx, index, instruction, role, place, what
                )
            yield from self._unit_kind(ctx, index, instruction, what)

    def _port_position(self, ctx, index, instruction, role, place, what):
        op = instruction.opcode
        is_input_port = place.kind == "input-port"
        is_output_port = place.kind == "output-port"
        bad = None
        if op is Opcode.INPUT:
            if role == "src" and not is_input_port:
                bad = "input draws from an input port"
            elif role == "dst" and (is_input_port or is_output_port):
                bad = "input cannot load into a port"
        elif op is Opcode.OUTPUT:
            if role == "dst" and not is_output_port:
                bad = "output sends to an output port"
            elif role == "src" and (is_input_port or is_output_port):
                bad = "output drains an on-chip location, not a port"
        elif is_input_port or is_output_port:
            bad = f"{op.value} cannot address a port; use input/output"
        if bad is not None:
            yield self.diagnostic(
                Severity.ERROR,
                "port-misuse",
                f"`{what}`: {place.text} — {bad}",
                instruction=index,
                operand=place.text,
            )

    def _unit_kind(self, ctx, index, instruction, what):
        wanted = self._UNIT_FOR_OP.get(instruction.opcode)
        if wanted is None or instruction.dst is None:
            return
        place = ctx.forward.place(instruction.dst)
        if place.kind is None or place.is_subport:
            return
        if place.kind != wanted:
            yield self.diagnostic(
                Severity.ERROR,
                "unit-kind-mismatch",
                f"`{what}` targets {place.text}, a {place.kind}; "
                f"{instruction.opcode.value} needs a {wanted}",
                instruction=index,
                operand=place.text,
            )
            return
        if instruction.mode is not None:
            unit = ctx.spec.unit(place.base)
            supported = (
                unit.modes if wanted == "separator" else unit.senses
            )
            if supported and instruction.mode not in supported:
                yield self.diagnostic(
                    Severity.ERROR,
                    "unit-kind-mismatch",
                    f"`{what}`: {place.text} does not implement "
                    f"{instruction.opcode.value}.{instruction.mode} "
                    f"(supports {', '.join(supported)})",
                    instruction=index,
                    operand=place.text,
                )


# ---------------------------------------------------------------------------
def _collect_dry_names(program: AISProgram) -> dict[str, int]:
    names: dict[str, int] = {}
    for index, instruction in enumerate(program):
        if not instruction.is_wet:
            if instruction.reg:
                names.setdefault(instruction.reg, index)
            if isinstance(instruction.value, str):
                names.setdefault(instruction.value, index)
        elif instruction.opcode is Opcode.SENSE and instruction.result:
            names.setdefault(instruction.result, index)
    return names


_SEVERITY_ORDER = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.NOTE: 2}


def analyze(
    program: AISProgram,
    spec: MachineSpec = AQUACORE_SPEC,
    *,
    checks: Sequence[Check] | None = None,
) -> list[Diagnostic]:
    """Run the fluid-safety analyzer; the library entry point.

    Returns diagnostics sorted by program position (then severity), so
    output is stable and reads like a compiler's.
    """
    forward = ForwardAnalysis(program, spec)
    ctx = AnalysisContext(
        program=program,
        spec=spec,
        forward=forward,
        dry_names=_collect_dry_names(program),
    )
    findings: list[Diagnostic] = []
    for check in checks if checks is not None else all_checks():
        findings.extend(check.run(ctx))
    findings.sort(
        key=lambda d: (
            d.instruction if d.instruction is not None else len(program),
            _SEVERITY_ORDER[d.severity],
            d.code,
        )
    )
    return findings
