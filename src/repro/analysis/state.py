"""Abstract domain of the fluid-safety analyzer.

Fluids are **linear resources**: every location (reservoir, functional
unit, separator well) is abstracted to one of four content states —

* ``EMPTY``     — never held fluid (the machine's initial state);
* ``HOLDS``     — holds fluid, with a volume *interval* and the set of
  defining instructions that contributed to the contents;
* ``CONSUMED``  — held fluid that has since been fully moved out or
  drained off-chip (the post-state of a whole-content ``move``/``output``
  or a ``separate`` feed).  Reading a CONSUMED location is the
  linear-type violation the paper's destructive-use model forbids;
* ``UNKNOWN``   — the analyzer lost track (e.g. after reporting a
  use-after-consume it deliberately degrades the location to UNKNOWN so
  one root cause does not cascade into a wall of findings).

Volumes are tracked as closed intervals ``[lo, hi]`` over exact
:class:`~fractions.Fraction` nanoliters, with ``hi=None`` meaning
unbounded; only statically-known quantities (``move-abs`` volumes,
absolute input loads) tighten the bounds, so interval findings are
*definite* — a ``static-overflow`` fires only when the lower bound alone
already exceeds capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum, unique
from fractions import Fraction
from typing import Dict, FrozenSet, Optional

__all__ = ["VolumeInterval", "ContentKind", "AbsContent", "AbstractState"]


@dataclass(frozen=True)
class VolumeInterval:
    """A closed interval of possible volumes; ``hi=None`` is unbounded."""

    lo: Fraction = Fraction(0)
    hi: Optional[Fraction] = None

    @classmethod
    def exact(cls, volume: Fraction) -> "VolumeInterval":
        return cls(volume, volume)

    @classmethod
    def at_most(cls, volume: Fraction) -> "VolumeInterval":
        return cls(Fraction(0), volume)

    @classmethod
    def zero(cls) -> "VolumeInterval":
        return cls(Fraction(0), Fraction(0))

    @property
    def is_exact(self) -> bool:
        return self.hi is not None and self.lo == self.hi

    def add(self, other: "VolumeInterval") -> "VolumeInterval":
        hi = None if self.hi is None or other.hi is None else self.hi + other.hi
        return VolumeInterval(self.lo + other.lo, hi)

    def subtract(self, other: "VolumeInterval") -> "VolumeInterval":
        """Interval difference for a draw of ``other`` out of ``self``,
        clamped at zero (a pump cannot leave negative residue)."""
        lo = Fraction(0)
        if self.hi is not None and other.hi is not None:
            lo = max(Fraction(0), self.lo - other.hi)
        hi = None
        if self.hi is not None:
            hi = max(Fraction(0), self.hi - other.lo)
        return VolumeInterval(lo, hi)

    def scaled(self, factor: Fraction) -> "VolumeInterval":
        return VolumeInterval(
            self.lo * factor, None if self.hi is None else self.hi * factor
        )

    def clamped(self, capacity: Optional[Fraction]) -> "VolumeInterval":
        """Cap the upper bound at a physical capacity (a container can
        never actually hold more; overflow is reported separately)."""
        if capacity is None:
            return self
        hi = capacity if self.hi is None else min(self.hi, capacity)
        return VolumeInterval(min(self.lo, capacity), hi)

    def __str__(self) -> str:
        hi = "inf" if self.hi is None else f"{float(self.hi):g}"
        return f"[{float(self.lo):g}, {hi}]"


@unique
class ContentKind(Enum):
    EMPTY = "empty"
    HOLDS = "holds"
    CONSUMED = "consumed"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class AbsContent:
    """Abstract contents of one location."""

    kind: ContentKind
    volume: VolumeInterval = field(default_factory=VolumeInterval.zero)
    #: indices of the instructions whose fluid contributed to the contents
    #: (the def sites of the value-flow graph).
    defs: FrozenSet[int] = frozenset()

    @classmethod
    def empty(cls) -> "AbsContent":
        return cls(ContentKind.EMPTY, VolumeInterval.zero())

    @classmethod
    def consumed(cls, defs: FrozenSet[int] = frozenset()) -> "AbsContent":
        return cls(ContentKind.CONSUMED, VolumeInterval.zero(), defs)

    @classmethod
    def unknown(cls) -> "AbsContent":
        return cls(ContentKind.UNKNOWN, VolumeInterval())

    @classmethod
    def holding(
        cls, volume: VolumeInterval, defs: FrozenSet[int] = frozenset()
    ) -> "AbsContent":
        return cls(ContentKind.HOLDS, volume, defs)

    @property
    def may_hold_fluid(self) -> bool:
        return self.kind in (ContentKind.HOLDS, ContentKind.UNKNOWN)

    def deposit(
        self,
        moved: VolumeInterval,
        defs: FrozenSet[int],
        *,
        capacity: Optional[Fraction] = None,
        replace_contents: bool = False,
    ) -> "AbsContent":
        """The post-state of depositing ``moved`` into this location.

        ``replace_contents`` models flow cells (sensors flush the previous
        sample when a new one arrives).
        """
        if replace_contents or not self.may_hold_fluid:
            return AbsContent.holding(moved.clamped(capacity), defs)
        return AbsContent.holding(
            self.volume.add(moved).clamped(capacity), self.defs | defs
        )

    def after_metered_draw(self, moved: VolumeInterval) -> "AbsContent":
        """Residue after a partial draw: still HOLDS (rounded plans leave
        sub-least-count residue behind), volume reduced, defs retained."""
        if self.kind is not ContentKind.HOLDS:
            return self
        return replace(self, volume=self.volume.subtract(moved))


class AbstractState:
    """Per-location abstract contents plus the dry register file."""

    def __init__(self) -> None:
        self._locations: Dict[str, AbsContent] = {}
        #: dry register / sense-result names defined so far.
        self.dry_defined: Dict[str, int] = {}

    def get(self, location: str) -> AbsContent:
        return self._locations.get(location, AbsContent.empty())

    def set(self, location: str, content: AbsContent) -> None:
        self._locations[location] = content

    def locations(self) -> Dict[str, AbsContent]:
        return dict(self._locations)

    def snapshot(self) -> Dict[str, AbsContent]:
        return dict(self._locations)

    def define_dry(self, name: str, index: int) -> None:
        self.dry_defined.setdefault(name, index)
