"""Abstract domain of the fluid-safety analyzer.

Fluids are **linear resources**: every location (reservoir, functional
unit, separator well) is abstracted to one of four content states —

* ``EMPTY``     — never held fluid (the machine's initial state);
* ``HOLDS``     — holds fluid, with a volume *interval* and the set of
  defining instructions that contributed to the contents;
* ``CONSUMED``  — held fluid that has since been fully moved out or
  drained off-chip (the post-state of a whole-content ``move``/``output``
  or a ``separate`` feed).  Reading a CONSUMED location is the
  linear-type violation the paper's destructive-use model forbids;
* ``UNKNOWN``   — the analyzer lost track (e.g. after reporting a
  use-after-consume it deliberately degrades the location to UNKNOWN so
  one root cause does not cascade into a wall of findings).

Volumes are tracked as closed intervals ``[lo, hi]`` over exact
:class:`~fractions.Fraction` nanoliters, with ``hi=None`` meaning
unbounded; only statically-known quantities (``move-abs`` volumes,
absolute input loads) tighten the bounds, so interval findings are
*definite* — a ``static-overflow`` fires only when the lower bound alone
already exceeds capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum, unique
from fractions import Fraction

__all__ = ["VolumeInterval", "ContentKind", "AbsContent", "AbstractState"]


@dataclass(frozen=True)
class VolumeInterval:
    """A closed interval of possible volumes; ``hi=None`` is unbounded."""

    lo: Fraction = Fraction(0)
    hi: Fraction | None = None

    @classmethod
    def exact(cls, volume: Fraction) -> "VolumeInterval":
        return cls(volume, volume)

    @classmethod
    def at_most(cls, volume: Fraction) -> "VolumeInterval":
        return cls(Fraction(0), volume)

    @classmethod
    def zero(cls) -> "VolumeInterval":
        return cls(Fraction(0), Fraction(0))

    @property
    def is_exact(self) -> bool:
        return self.hi is not None and self.lo == self.hi

    def add(self, other: "VolumeInterval") -> "VolumeInterval":
        hi = None if self.hi is None or other.hi is None else self.hi + other.hi
        return VolumeInterval(self.lo + other.lo, hi)

    def subtract(self, other: "VolumeInterval") -> "VolumeInterval":
        """Interval difference for a draw of ``other`` out of ``self``,
        clamped at zero (a pump cannot leave negative residue)."""
        lo = Fraction(0)
        if self.hi is not None and other.hi is not None:
            lo = max(Fraction(0), self.lo - other.hi)
        hi = None
        if self.hi is not None:
            hi = max(Fraction(0), self.hi - other.lo)
        return VolumeInterval(lo, hi)

    def scaled(self, factor: Fraction) -> "VolumeInterval":
        return VolumeInterval(
            self.lo * factor, None if self.hi is None else self.hi * factor
        )

    def clamped(self, capacity: Fraction | None) -> "VolumeInterval":
        """Cap the upper bound at a physical capacity (a container can
        never actually hold more; overflow is reported separately)."""
        if capacity is None:
            return self
        hi = capacity if self.hi is None else min(self.hi, capacity)
        return VolumeInterval(min(self.lo, capacity), hi)

    # ------------------------------------------------------------------
    # lattice operators (used by the source-level fixpoint engine,
    # repro.analysis.sourceflow; ⊥ is represented by absence of state)
    # ------------------------------------------------------------------
    def join(self, other: "VolumeInterval") -> "VolumeInterval":
        """Least upper bound: the interval hull of the two operands."""
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return VolumeInterval(min(self.lo, other.lo), hi)

    def widen(self, other: "VolumeInterval") -> "VolumeInterval":
        """Standard interval widening of ``self`` (old) by ``other`` (new):
        any bound still moving jumps to its extreme (0 below — volumes are
        nonnegative — and unbounded above), guaranteeing the ascending
        chain stabilises."""
        lo = self.lo if other.lo >= self.lo else Fraction(0)
        hi = self.hi
        if hi is not None and (other.hi is None or other.hi > hi):
            hi = None
        return VolumeInterval(lo, hi)

    def narrow(self, other: "VolumeInterval") -> "VolumeInterval":
        """One narrowing step: recover bounds that widening threw away
        (only bounds at their extreme are refined from ``other``)."""
        lo = other.lo if self.lo == Fraction(0) else self.lo
        hi = other.hi if self.hi is None else self.hi
        return VolumeInterval(lo, hi)

    def __str__(self) -> str:
        hi = "inf" if self.hi is None else f"{float(self.hi):g}"
        return f"[{float(self.lo):g}, {hi}]"


@unique
class ContentKind(Enum):
    EMPTY = "empty"
    HOLDS = "holds"
    CONSUMED = "consumed"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class AbsContent:
    """Abstract contents of one location."""

    kind: ContentKind
    volume: VolumeInterval = field(default_factory=VolumeInterval.zero)
    #: indices of the instructions whose fluid contributed to the contents
    #: (the def sites of the value-flow graph).
    defs: frozenset[int] = frozenset()

    @classmethod
    def empty(cls) -> "AbsContent":
        return cls(ContentKind.EMPTY, VolumeInterval.zero())

    @classmethod
    def consumed(cls, defs: frozenset[int] = frozenset()) -> "AbsContent":
        return cls(ContentKind.CONSUMED, VolumeInterval.zero(), defs)

    @classmethod
    def unknown(cls) -> "AbsContent":
        return cls(ContentKind.UNKNOWN, VolumeInterval())

    @classmethod
    def holding(
        cls, volume: VolumeInterval, defs: frozenset[int] = frozenset()
    ) -> "AbsContent":
        return cls(ContentKind.HOLDS, volume, defs)

    @property
    def may_hold_fluid(self) -> bool:
        return self.kind in (ContentKind.HOLDS, ContentKind.UNKNOWN)

    def deposit(
        self,
        moved: VolumeInterval,
        defs: frozenset[int],
        *,
        capacity: Fraction | None = None,
        replace_contents: bool = False,
    ) -> "AbsContent":
        """The post-state of depositing ``moved`` into this location.

        ``replace_contents`` models flow cells (sensors flush the previous
        sample when a new one arrives).
        """
        if replace_contents or not self.may_hold_fluid:
            return AbsContent.holding(moved.clamped(capacity), defs)
        return AbsContent.holding(
            self.volume.add(moved).clamped(capacity), self.defs | defs
        )

    def after_metered_draw(self, moved: VolumeInterval) -> "AbsContent":
        """Residue after a partial draw: still HOLDS (rounded plans leave
        sub-least-count residue behind), volume reduced, defs retained."""
        if self.kind is not ContentKind.HOLDS:
            return self
        return replace(self, volume=self.volume.subtract(moved))

    # ------------------------------------------------------------------
    # lattice operators.  ``UNKNOWN`` doubles as ⊤ (two disagreeing
    # definite states join to it); ⊥ is represented by absence of state
    # in the source-level environment (an unreachable location).
    # ------------------------------------------------------------------
    def join(self, other: "AbsContent") -> "AbsContent":
        """Least upper bound.  Def sites are provenance metadata and
        accumulate monotonically even through ⊤."""
        kind = self.kind if self.kind is other.kind else ContentKind.UNKNOWN
        return AbsContent(
            kind, self.volume.join(other.volume), self.defs | other.defs
        )

    def widen(self, other: "AbsContent") -> "AbsContent":
        """Widening of ``self`` (old) by ``other`` (new): the content
        lattice is finite so only the volume interval needs widening."""
        kind = self.kind if self.kind is other.kind else ContentKind.UNKNOWN
        return AbsContent(
            kind, self.volume.widen(other.volume), self.defs | other.defs
        )


class AbstractState:
    """Per-location abstract contents plus the dry register file."""

    def __init__(self) -> None:
        self._locations: dict[str, AbsContent] = {}
        #: dry register / sense-result names defined so far.
        self.dry_defined: dict[str, int] = {}

    def get(self, location: str) -> AbsContent:
        return self._locations.get(location, AbsContent.empty())

    def set(self, location: str, content: AbsContent) -> None:
        self._locations[location] = content

    def locations(self) -> dict[str, AbsContent]:
        return dict(self._locations)

    def snapshot(self) -> dict[str, AbsContent]:
        return dict(self._locations)

    def define_dry(self, name: str, index: int) -> None:
        self.dry_defined.setdefault(name, index)
