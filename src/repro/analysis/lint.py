"""Lint driver: the ``repro lint`` entry point as a library.

Wraps :func:`repro.analysis.checks.analyze` with input handling (textual
AIS listings or compiled programs), rendering (compiler-style text or
JSON) and the severity-based exit-code policy:

* ``0`` — clean, or notes only;
* ``1`` — warnings;
* ``2`` — errors (or the input failed to parse/compile).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from collections.abc import Sequence

from ..compiler.diagnostics import (
    EXIT_CLEAN,
    EXIT_ERRORS,
    EXIT_WARNINGS,
    Diagnostic,
    DiagnosticSink,
    exit_code_for,
    report_payload,
    severity_counts,
)
from ..ir.parse import parse_ais
from ..ir.program import AISProgram
from ..machine.spec import AQUACORE_SPEC, MachineSpec
from .checks import Check, analyze

__all__ = [
    "LintReport",
    "lint_program",
    "lint_text",
    "EXIT_CLEAN",
    "EXIT_WARNINGS",
    "EXIT_ERRORS",
]


@dataclass
class LintReport:
    """The outcome of linting one program."""

    program: str
    machine: str
    findings: list[Diagnostic] = field(default_factory=list)

    @property
    def counts(self) -> dict[str, int]:
        return severity_counts(self.findings)

    @property
    def is_clean(self) -> bool:
        """No warnings or errors (notes are informational)."""
        return self.counts["error"] == 0 and self.counts["warning"] == 0

    @property
    def exit_code(self) -> int:
        """Shared severity table (repro.compiler.diagnostics)."""
        return exit_code_for(self.findings)

    def sink(self) -> DiagnosticSink:
        sink = DiagnosticSink()
        sink.extend(self.findings)
        return sink

    # ------------------------------------------------------------------
    def render_text(self) -> str:
        counts = self.counts
        lines = [str(finding) for finding in self.findings]
        summary = (
            f"{self.program}: "
            + (
                "clean"
                if not self.findings
                else f"{counts['error']} error(s), {counts['warning']} "
                f"warning(s), {counts['note']} note(s)"
            )
        )
        lines.append(summary)
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        """The stable v1 report schema shared with ``repro certify``
        (see :func:`repro.compiler.diagnostics.report_payload`)."""
        return report_payload(
            "lint",
            self.program,
            self.machine,
            self.findings,
            exit_code=self.exit_code,
        )

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def lint_program(
    program: AISProgram,
    spec: MachineSpec = AQUACORE_SPEC,
    *,
    checks: Sequence[Check] | None = None,
) -> LintReport:
    """Lint an in-memory program."""
    return LintReport(
        program=program.name,
        machine=spec.name,
        findings=analyze(program, spec, checks=checks),
    )


def lint_text(
    text: str,
    spec: MachineSpec = AQUACORE_SPEC,
    *,
    name: str = "program",
    checks: Sequence[Check] | None = None,
) -> LintReport:
    """Parse an AIS listing and lint it.

    Raises:
        AISParseError: when the text is not a well-formed listing.
    """
    return lint_program(parse_ais(text, name=name), spec, checks=checks)
