"""Forward dataflow over straight-line AIS programs.

:class:`ForwardAnalysis` interprets a program once over the abstract
domain of :mod:`repro.analysis.state`, recording

* a **pre-state snapshot** per instruction (what every location held just
  before it executed);
* a flat list of :class:`Access` events — every read/write of a fluid
  location, tagged with the abstract content *at access time* and the
  moved volume interval;
* a **value-flow graph** over instruction indices: ``input`` / ``mix`` /
  ``separate`` instructions *produce* fluid values, transport carries the
  producing indices along inside :class:`AbsContent.defs`, and ``output``
  / ``sense`` instructions are sinks (outputs are split into *product*
  and *waste* sinks — codegen's ``discard …`` outputs are waste).

Checks in :mod:`repro.analysis.checks` consume these facts; they never
re-implement transfer semantics.

Guarded instructions (dynamic-IF branches included conservatively,
Section 3.5) are interpreted weakly: a guarded drain leaves its source
``UNKNOWN`` rather than ``CONSUMED``, and reads under a guard are marked
so checks do not report definite violations for code the executor may
skip.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, unique
from fractions import Fraction

from ..ir.instructions import Instruction, Opcode, Operand
from ..ir.program import AISProgram
from ..machine.spec import FU_KINDS, MachineSpec
from .state import AbsContent, AbstractState, ContentKind, VolumeInterval

__all__ = [
    "Place",
    "AccessKind",
    "Access",
    "ValueFlow",
    "ForwardAnalysis",
]

#: separator wells addressable as ``unit.<sub>``.
SEPARATOR_SUBPORTS = ("matrix", "pusher", "out1", "out2")


@dataclass(frozen=True)
class Place:
    """A classified operand: where it points on the machine."""

    text: str                 # canonical operand text, e.g. "separator1.out1"
    base: str
    sub: str | None
    kind: str | None       # spec.component_kind(base); None = unknown name
    capacity: Fraction | None

    @property
    def is_subport(self) -> bool:
        return self.sub is not None

    @property
    def is_valid(self) -> bool:
        """Addresses a real fluid location (or port) on the machine."""
        if self.kind is None:
            return False
        if self.sub is None:
            return True
        return self.kind == "separator" and self.sub in SEPARATOR_SUBPORTS

    @property
    def holds_fluid(self) -> bool:
        """True for locations with state (not ports, not unknown names)."""
        return self.is_valid and self.kind not in ("input-port", "output-port")


@unique
class AccessKind(Enum):
    READ_METERED = "read-metered"   # move with a planned volume
    READ_DRAIN = "read-drain"       # move with implicit whole volume
    READ_OUTPUT = "read-output"     # output drains the source off-chip
    READ_FEED = "read-feed"         # mix/incubate/concentrate/separate operand
    READ_SENSE = "read-sense"       # non-destructive optical read
    WRITE_FILL = "write-fill"       # input loading a location
    WRITE_DEPOSIT = "write-deposit"  # move/move-abs destination
    WRITE_PRODUCE = "write-produce"  # separate filling its outlet wells


@dataclass(frozen=True)
class Access:
    """One touch of a fluid location by one instruction."""

    index: int
    place: Place
    kind: AccessKind
    before: AbsContent            # abstract content at access time
    moved: VolumeInterval | None = None
    guarded: bool = False

    @property
    def is_read(self) -> bool:
        return self.kind.value.startswith("read-")


@dataclass
class ValueFlow:
    """Def-use graph over instruction indices."""

    #: producing instruction -> human label ("input s1 (Glucose)").
    producers: dict[int, str]
    #: fluid-flow edges: producing/consuming instruction adjacency.
    edges: dict[int, set[int]]
    #: sense instructions and product (non-discard) outputs.
    product_sinks: set[int]
    #: codegen discard/excess/residue outputs.
    waste_sinks: set[int]

    def reaches_product(self, index: int) -> bool:
        """Does fluid produced at ``index`` transitively reach a sink?"""
        seen: set[int] = set()
        stack = [index]
        while stack:
            node = stack.pop()
            if node in self.product_sinks:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.edges.get(node, ()))
        return False


def is_waste_output(instruction: Instruction) -> bool:
    """Codegen marks its housekeeping outputs; text round-trips keep the
    ``discard …`` comment."""
    if instruction.opcode is not Opcode.OUTPUT:
        return False
    meta = instruction.meta
    if "discard" in meta or "excess" in meta or "residue" in meta:
        return True
    comment = instruction.comment or ""
    return comment.startswith("discard")


class ForwardAnalysis:
    """One abstract-interpretation pass; all facts are computed eagerly."""

    def __init__(self, program: AISProgram, spec: MachineSpec) -> None:
        self.program = program
        self.spec = spec
        self.least_count = spec.limits.least_count
        self.accesses: list[Access] = []
        self.pre_states: list[dict[str, AbsContent]] = []
        self.flow = ValueFlow({}, {}, set(), set())
        self.state = AbstractState()
        self._place_cache: dict[str, Place] = {}
        self._run()

    # ------------------------------------------------------------------
    def place(self, operand: Operand) -> Place:
        text = str(operand)
        cached = self._place_cache.get(text)
        if cached is None:
            cached = Place(
                text=text,
                base=operand.base,
                sub=operand.sub,
                kind=self.spec.component_kind(operand.base),
                capacity=self.spec.location_capacity(operand.base),
            )
            self._place_cache[text] = cached
        return cached

    def pre_state(self, index: int) -> dict[str, AbsContent]:
        return self.pre_states[index]

    @property
    def final_state(self) -> AbstractState:
        return self.state

    # ------------------------------------------------------------------
    def _run(self) -> None:
        for index, instruction in enumerate(self.program):
            self.pre_states.append(self.state.snapshot())
            handler = {
                Opcode.INPUT: self._step_input,
                Opcode.OUTPUT: self._step_output,
                Opcode.MOVE: self._step_move,
                Opcode.MOVE_ABS: self._step_move,
                Opcode.MIX: self._step_operate,
                Opcode.INCUBATE: self._step_operate,
                Opcode.CONCENTRATE: self._step_operate,
                Opcode.SEPARATE: self._step_separate,
                Opcode.SENSE: self._step_sense,
                Opcode.DRY_MOV: self._step_dry,
                Opcode.DRY_ADD: self._step_dry,
                Opcode.DRY_SUB: self._step_dry,
                Opcode.DRY_MUL: self._step_dry,
            }[instruction.opcode]
            handler(index, instruction)

    # ------------------------------------------------------------------
    def _guarded(self, instruction: Instruction) -> bool:
        return instruction.meta.get("guard") is not None

    def _access(
        self,
        index: int,
        place: Place,
        kind: AccessKind,
        before: AbsContent,
        *,
        moved: VolumeInterval | None = None,
        guarded: bool = False,
    ) -> None:
        self.accesses.append(Access(index, place, kind, before, moved, guarded))

    def _add_flow(self, sources: frozenset[int], target: int) -> None:
        for source in sources:
            self.flow.edges.setdefault(source, set()).add(target)

    def _label(self, index: int, instruction: Instruction, what: str) -> None:
        tag = f" ({instruction.comment})" if instruction.comment else ""
        self.flow.producers[index] = f"{what}{tag}"

    def _read_violated(self, content: AbsContent) -> bool:
        return content.kind in (ContentKind.EMPTY, ContentKind.CONSUMED)

    def _metered_interval(
        self, source: AbsContent, abs_volume: Fraction | None
    ) -> VolumeInterval:
        if abs_volume is not None:
            return VolumeInterval.exact(abs_volume)
        hi = source.volume.hi if source.kind is ContentKind.HOLDS else None
        return VolumeInterval(self.least_count, hi)

    # -- wet steps ------------------------------------------------------
    def _step_input(self, index: int, instruction: Instruction) -> None:
        guarded = self._guarded(instruction)
        dst = self.place(instruction.dst)
        src = self.place(instruction.src)
        before = self.state.get(dst.text)
        if instruction.abs_volume is not None:
            moved = VolumeInterval.exact(instruction.abs_volume)
        else:
            moved = VolumeInterval.at_most(
                dst.capacity if dst.capacity is not None
                else self.spec.limits.max_capacity
            )
        # src is a port, stateless; record the access for operand checks.
        self._access(index, src, AccessKind.READ_METERED, AbsContent.unknown(),
                     moved=moved, guarded=guarded)
        self._access(index, dst, AccessKind.WRITE_FILL, before,
                     moved=moved, guarded=guarded)
        if guarded:
            moved = VolumeInterval(Fraction(0), moved.hi)
        if dst.holds_fluid or dst.kind is None:
            self.state.set(
                dst.text,
                before.deposit(moved, frozenset({index}), capacity=dst.capacity),
            )
        self._label(index, instruction, f"input {dst.text}")

    def _step_output(self, index: int, instruction: Instruction) -> None:
        guarded = self._guarded(instruction)
        src = self.place(instruction.src)
        before = self.state.get(src.text)
        self._access(index, src, AccessKind.READ_OUTPUT, before, guarded=guarded)
        self._add_flow(before.defs, index)
        if is_waste_output(instruction):
            self.flow.waste_sinks.add(index)
        else:
            self.flow.product_sinks.add(index)
        if src.holds_fluid or src.kind is None:
            if guarded or self._read_violated(before):
                self.state.set(src.text, AbsContent.unknown())
            else:
                self.state.set(src.text, AbsContent.consumed(before.defs))

    def _step_move(self, index: int, instruction: Instruction) -> None:
        guarded = self._guarded(instruction)
        src = self.place(instruction.src)
        dst = self.place(instruction.dst)
        src_before = self.state.get(src.text)
        dst_before = self.state.get(dst.text)
        is_drain = (
            instruction.opcode is Opcode.MOVE
            and instruction.rel_volume is None
            and instruction.abs_volume is None
        )
        if is_drain:
            moved = src_before.volume if (
                src_before.kind is ContentKind.HOLDS
            ) else VolumeInterval()
            self._access(index, src, AccessKind.READ_DRAIN, src_before,
                         moved=moved, guarded=guarded)
        else:
            moved = self._metered_interval(src_before, instruction.abs_volume)
            self._access(index, src, AccessKind.READ_METERED, src_before,
                         moved=moved, guarded=guarded)
        self._access(index, dst, AccessKind.WRITE_DEPOSIT, dst_before,
                     moved=moved, guarded=guarded)

        # source post-state
        if src.holds_fluid or src.kind is None:
            if self._read_violated(src_before):
                self.state.set(src.text, AbsContent.unknown())
            elif is_drain:
                self.state.set(
                    src.text,
                    AbsContent.unknown() if guarded
                    else AbsContent.consumed(src_before.defs),
                )
            else:
                self.state.set(src.text, src_before.after_metered_draw(moved))
        # destination post-state
        if dst.holds_fluid or dst.kind is None:
            if guarded:
                moved = VolumeInterval(Fraction(0), moved.hi)
            self.state.set(
                dst.text,
                dst_before.deposit(
                    moved,
                    src_before.defs,
                    capacity=dst.capacity,
                    replace_contents=dst.kind == "sensor",
                ),
            )

    def _step_operate(self, index: int, instruction: Instruction) -> None:
        """mix / incubate / concentrate: in-place operation on a unit."""
        guarded = self._guarded(instruction)
        unit = self.place(instruction.dst)
        before = self.state.get(unit.text)
        self._access(index, unit, AccessKind.READ_FEED, before, guarded=guarded)
        if instruction.opcode is Opcode.MIX:
            # the homogenised mixture is a fresh value
            self._add_flow(before.defs, index)
            self._label(index, instruction, f"mix in {unit.text}")
            content = before if before.kind is ContentKind.HOLDS else (
                AbsContent.unknown()
            )
            self.state.set(
                unit.text,
                AbsContent.holding(content.volume, frozenset({index})),
            )
        elif instruction.opcode is Opcode.CONCENTRATE:
            keep = instruction.meta.get("keep_fraction")
            if before.kind is ContentKind.HOLDS:
                volume = (
                    before.volume.scaled(Fraction(keep))
                    if keep is not None
                    else VolumeInterval.at_most(
                        before.volume.hi
                    ) if before.volume.hi is not None else VolumeInterval()
                )
                self.state.set(
                    unit.text, AbsContent.holding(volume, before.defs)
                )
        # incubate: volume conserving, nothing changes abstractly

    def _step_separate(self, index: int, instruction: Instruction) -> None:
        guarded = self._guarded(instruction)
        unit = self.place(instruction.dst)
        before = self.state.get(unit.text)
        self._access(index, unit, AccessKind.READ_FEED, before, guarded=guarded)
        contributing = set(before.defs)
        feed_hi = before.volume.hi if before.kind is ContentKind.HOLDS else None
        # matrix and pusher are spent driving the run
        for well in ("matrix", "pusher"):
            well_text = f"{unit.base}.{well}"
            well_before = self.state.get(well_text)
            contributing |= well_before.defs
            if unit.kind == "separator":
                self.state.set(
                    well_text,
                    AbsContent.unknown() if guarded
                    else AbsContent.consumed(well_before.defs),
                )
        self._add_flow(frozenset(contributing), index)
        self._label(index, instruction, f"separate.{instruction.mode} {unit.text}")
        if unit.holds_fluid or unit.kind is None:
            self.state.set(
                unit.text,
                AbsContent.unknown() if guarded or self._read_violated(before)
                else AbsContent.consumed(before.defs),
            )
        # outlets are flushed at run start, then filled by this run
        outlet_volume = (
            VolumeInterval.at_most(feed_hi) if feed_hi is not None
            else VolumeInterval()
        )
        for outlet in ("out1", "out2"):
            outlet_text = f"{unit.base}.{outlet}"
            outlet_place = self.place(Operand(unit.base, outlet))
            self._access(
                index, outlet_place, AccessKind.WRITE_PRODUCE,
                self.state.get(outlet_text),
                moved=outlet_volume, guarded=guarded,
            )
            self.state.set(
                outlet_text,
                AbsContent.holding(outlet_volume, frozenset({index})),
            )

    def _step_sense(self, index: int, instruction: Instruction) -> None:
        guarded = self._guarded(instruction)
        unit = self.place(instruction.dst)
        before = self.state.get(unit.text)
        self._access(index, unit, AccessKind.READ_SENSE, before, guarded=guarded)
        self._add_flow(before.defs, index)
        self.flow.product_sinks.add(index)
        if instruction.result:
            self.state.define_dry(instruction.result, index)
        # non-destructive: the sample stays in the cell

    # -- dry step -------------------------------------------------------
    def _step_dry(self, index: int, instruction: Instruction) -> None:
        if instruction.reg:
            self.state.define_dry(instruction.reg, index)


def analyze_forward(program: AISProgram, spec: MachineSpec) -> ForwardAnalysis:
    """Convenience constructor mirroring the module docstring's naming."""
    return ForwardAnalysis(program, spec)


# re-exported convenience: which unit kinds exist (used by checks)
UNIT_KINDS: tuple[str, ...] = FU_KINDS
