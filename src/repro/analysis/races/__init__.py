"""Static race / interference detection over AIS schedules.

The certifier (:mod:`repro.analysis.certify`) *replays* one concrete
schedule — a dynamic check that proves nothing about other interleavings.
This package is the static counterpart, and the safety oracle a
multi-assay scheduler calls **before** committing to an interleaving:

* :mod:`repro.analysis.races.hb` — happens-before construction (program
  order, fluid dataflow, explicit barriers) and may-happen-in-parallel
  (MHP) queries via barrier epochs;
* :mod:`repro.analysis.races.resources` — lockset-style resource access
  extraction from the shared dataflow facts (reservoirs, storage wells,
  input ports, functional units), with per-program reservoir namespacing
  for re-bankable storage;
* :mod:`repro.analysis.races.detector` — the classification engine:
  safe / definite race (``RACE-WW``, ``RACE-RW``, ``RACE-PORT``,
  ``RACE-ROUTE``) / possible race (``RACE-BANK``, ``RACE-GUARDED``,
  ``RACE-ORDER``), plus route contention via
  :meth:`~repro.machine.topology.ChannelTopology.conflicts`;
* :mod:`repro.analysis.races.codes` — the stable RACE-* catalogue.

Library entry point — the scheduler oracle::

    from repro.analysis.races import analyze_races
    report = analyze_races([compiled_a.program, compiled_b.program], spec)
    if report.counts["error"] == 0:
        ...  # every interleaving the barriers admit is interference-free

A single program answers the *schedule-sensitivity* question instead
(which conflicting pairs rest on emission order alone); those findings
are notes, never errors — the serial schedule itself is sound.  The same
analysis runs behind ``repro lint --races [--json]`` and as an opt-in
compile pass (``repro compile --race-check``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from collections.abc import Sequence

from ...compiler.diagnostics import (
    Diagnostic,
    exit_code_for,
    report_payload,
    severity_counts,
)
from ...ir.parse import parse_ais
from ...ir.program import AISProgram
from ...machine.spec import AQUACORE_SPEC, MachineSpec
from ...machine.topology import ChannelTopology
from .codes import RACE_CODES
from .detector import RaceDetector
from .hb import Barrier, BarrierOrder, DataflowOrder

__all__ = [
    "RACE_CODES",
    "Barrier",
    "BarrierOrder",
    "DataflowOrder",
    "RaceReport",
    "analyze_races",
    "race_text",
]


@dataclass
class RaceReport:
    """The outcome of one race-detection run."""

    program: str
    machine: str
    findings: list[Diagnostic] = field(default_factory=list)
    #: MHP statistics (the ``summary.mhp`` block of the JSON report).
    mhp: dict[str, object] = field(default_factory=dict)

    @property
    def counts(self) -> dict[str, int]:
        return severity_counts(self.findings)

    @property
    def is_clean(self) -> bool:
        """No warnings or errors (notes are informational)."""
        counts = self.counts
        return counts["error"] == 0 and counts["warning"] == 0

    @property
    def exit_code(self) -> int:
        """Shared severity table (repro.compiler.diagnostics)."""
        return exit_code_for(self.findings)

    def codes(self) -> set[str]:
        return {finding.code for finding in self.findings}

    # ------------------------------------------------------------------
    def render_text(self) -> str:
        counts = self.counts
        lines = [str(finding) for finding in self.findings]
        lines.append(
            f"{self.program}: "
            + (
                "race-free"
                if not self.findings
                else f"{counts['error']} error(s), {counts['warning']} "
                f"warning(s), {counts['note']} note(s)"
            )
            + (
                f" [{self.mhp.get('mhp_pairs', 0)} MHP pair(s) over "
                f"{self.mhp.get('programs', 1)} program(s)]"
            )
        )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        """The stable v1 report schema shared with ``repro lint`` and
        ``repro certify`` plus a ``summary.mhp`` block."""
        return report_payload(
            "races",
            self.program,
            self.machine,
            self.findings,
            exit_code=self.exit_code,
            extra_summary={"mhp": dict(self.mhp)},
        )

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def analyze_races(
    programs: AISProgram | Sequence[AISProgram],
    spec: MachineSpec = AQUACORE_SPEC,
    *,
    topology: ChannelTopology | None = None,
    barriers: Sequence[Barrier] = (),
    share_storage: bool = False,
    name: str | None = None,
) -> RaceReport:
    """Statically detect races over one program or a merged schedule.

    Args:
        programs: one AIS program, or several independently-compiled
            programs to be run concurrently (the scheduler-oracle form).
        spec: machine description for component classification.
        topology: channel graph for route-contention findings.  Opt-in:
            on the stock bus every transfer pair contends through the
            backbone, so the default answers the re-banking question.
        barriers: synchronization points — each a tuple of per-program
            instruction cut indices; instructions before the cut in one
            program happen before instructions at/after it in every
            other.  An empty sequence means fully concurrent.
        share_storage: treat same-named reservoirs in different programs
            as the same physical cell (the literal merged schedule).
            Default ``False`` namespaces them per program — a scheduler
            re-banks storage — and adds the ``RACE-BANK`` capacity note.
        name: report title; defaults to the joined program names.

    Returns:
        a :class:`RaceReport`; ``counts["error"] == 0`` certifies every
        interleaving the barriers admit as interference-free.
    """
    if isinstance(programs, AISProgram):
        programs = [programs]
    programs = list(programs)
    if not programs:
        raise ValueError("analyze_races needs at least one program")
    detector = RaceDetector(
        programs=programs,
        spec=spec,
        topology=topology,
        barriers=barriers,
        share_storage=share_storage,
    ).run()
    return RaceReport(
        program=name or "+".join(program.name for program in programs),
        machine=spec.name,
        findings=detector.findings,
        mhp=detector.mhp,
    )


def race_text(
    text: str,
    spec: MachineSpec = AQUACORE_SPEC,
    *,
    name: str = "program",
    topology: ChannelTopology | None = None,
) -> RaceReport:
    """Parse an AIS listing and race-check it (the CLI path).

    Raises:
        AISParseError: when the text is not a well-formed listing.
    """
    return analyze_races(
        parse_ais(text, name=name), spec, topology=topology
    )
