"""Resource-access extraction: what each instruction touches, for races.

The lockset half of the race detector needs, per instruction, the set of
hardware resources it reads or mutates.  Rather than re-deriving transfer
semantics, this module projects the :class:`~repro.analysis.dataflow.
ForwardAnalysis` access stream (the same facts the lint checks consume)
down to flat :class:`ResourceAccess` records:

* every fluid-bearing location access becomes one record; destructive
  reads (drains, metered draws, unit-op feeds) count as **writes**, since
  they mutate the location's content — only ``sense`` is a pure read;
* input-port accesses carry the sourced **fluid label** (the certifier's
  convention: codegen's ``meta`` provenance keys, then the DAG edge, then
  the comment), so the detector can tell a consistent shared port from a
  port clash;
* accesses under a dynamic guard, or to names the spec cannot classify,
  are **inexact** — conflicts involving them are *possible* races
  (``RACE-GUARDED``), never definite ones;
* reservoir names can be **namespaced** per program (``p0:s4``): a
  scheduler merging independently-compiled assays is free to re-bank
  storage, so same-numbered reservoirs in different programs are not
  real collisions unless the caller says storage is shared.

Transfers (``input``/``output``/``move``/``move-abs``) are additionally
recorded with their endpoints for the route-contention half.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...ir.instructions import Instruction, Opcode
from ...ir.program import AISProgram
from ...machine.spec import MachineSpec
from ..dataflow import Access, AccessKind, ForwardAnalysis

__all__ = [
    "ResourceAccess",
    "Transfer",
    "ProgramAccesses",
    "extract_accesses",
    "fluid_label",
]

#: transfer opcodes whose endpoints contend for channel routes.
TRANSFER_OPCODES = (Opcode.INPUT, Opcode.OUTPUT, Opcode.MOVE, Opcode.MOVE_ABS)


@dataclass(frozen=True)
class ResourceAccess:
    """One instruction's touch of one (possibly namespaced) resource."""

    program: int        # index into the merged program list
    index: int          # instruction index within that program
    resource: str       # canonical resource name, e.g. "p0:s4", "mixer1"
    write: bool         # mutates the resource's content
    exact: bool         # False = guarded or unclassifiable (possible only)
    kind: str           # spec component kind ("" when unknown)
    fluid: str | None = None   # input-port accesses: the sourced fluid

    @property
    def is_port(self) -> bool:
        return self.kind == "input-port"


@dataclass(frozen=True)
class Transfer:
    """One fluid transfer's endpoints (for route contention)."""

    program: int
    index: int
    src: str
    dst: str
    guarded: bool


@dataclass
class ProgramAccesses:
    """Everything the detector needs about one program."""

    name: str
    wet_count: int
    accesses: list[ResourceAccess]
    transfers: list[Transfer]
    #: distinct reservoirs the program parks fluid in (peak bank demand).
    reservoir_demand: int


def fluid_label(instruction: Instruction) -> str:
    """The fluid an instruction handles, by the certifier's convention."""
    for key in ("node", "dst_node", "aux", "park", "sense_of"):
        value = instruction.meta.get(key)
        if value is not None:
            return str(value)
    if instruction.edge is not None:
        return str(instruction.edge[0])
    return instruction.comment or "fluid"


def _is_write(kind: AccessKind) -> bool:
    """Only ``sense`` leaves the location untouched; drains, metered
    draws, and in-place unit operations all mutate content."""
    return kind is not AccessKind.READ_SENSE


def extract_accesses(
    program: AISProgram,
    spec: MachineSpec,
    *,
    program_index: int = 0,
    namespace: str = "",
) -> ProgramAccesses:
    """Project one program's dataflow facts to resource-access records.

    ``namespace`` (e.g. ``"p0:"``) is prepended to reservoir names only —
    functional units, their sub-wells, and ports are bound by opcodes and
    modes, so they stay globally shared.
    """
    analysis = ForwardAnalysis(program, spec)
    records: list[ResourceAccess] = []
    reservoirs: set[str] = set()
    for access in analysis.accesses:
        record = _record(program, spec, access, program_index, namespace)
        if record is None:
            continue
        records.append(record)
        if record.kind == "reservoir":
            reservoirs.add(record.resource)
    transfers = [
        Transfer(
            program_index,
            index,
            str(instruction.src),
            str(instruction.dst),
            instruction.meta.get("guard") is not None,
        )
        for index, instruction in enumerate(program.instructions)
        if instruction.opcode in TRANSFER_OPCODES
    ]
    return ProgramAccesses(
        name=program.name,
        wet_count=len(program.wet_instructions()),
        accesses=records,
        transfers=transfers,
        reservoir_demand=len(reservoirs),
    )


def _record(
    program: AISProgram,
    spec: MachineSpec,
    access: Access,
    program_index: int,
    namespace: str,
) -> ResourceAccess | None:
    place = access.place
    kind = place.kind or ""
    if kind == "output-port":
        # off-chip sink: no shared state to contend for.
        return None
    fluid: str | None = None
    if kind == "input-port":
        fluid = fluid_label(program.instructions[access.index])
    resource = place.text
    if kind == "reservoir" and namespace:
        resource = f"{namespace}{resource}"
    return ResourceAccess(
        program=program_index,
        index=access.index,
        resource=resource,
        write=_is_write(access.kind),
        exact=not access.guarded and place.kind is not None,
        kind=kind,
        fluid=fluid,
    )
