"""Race classification: MHP pairs x lockset resources -> diagnostics.

Merged mode walks every resource touched by two or more programs and
classifies each cross-program access pair that may happen in parallel:

* both accesses exact and both writes      -> ``RACE-WW`` (definite)
* both exact, one write one read           -> ``RACE-RW`` (definite)
* input port sourcing two different fluids -> ``RACE-PORT`` (definite)
* either access guard-widened or unknown   -> ``RACE-GUARDED`` (possible)

With a :class:`~repro.machine.topology.ChannelTopology`, MHP transfer
pairs whose routes contend raise ``RACE-ROUTE`` and unroutable endpoint
pairs raise ``RACE-UNROUTABLE``.  Route analysis is **opt-in**: on the
AquaCore bus every pair of transfers contends through the backbone (the
wet path is serial by construction), so a topology-free call answers the
re-banking question and a topology-carrying call answers the full
parallel-routing question.

Without shared storage, reservoirs are namespaced per program (a
scheduler may re-bank them), and a ``RACE-BANK`` possible-race note
fires when the summed peak reservoir demand exceeds the machine's bank —
re-banking cannot be collision-free then.

Single mode (one program) reports **schedule-sensitive** pairs instead:
conflicting accesses ordered only by emission order, not by fluid
dataflow (``RACE-ORDER`` / ``RACE-GUARDED`` notes; never errors — the
serial schedule itself is sound).

Diagnostics are deduplicated per (code, resource, program pair): the
first witnessing instruction pair is named and the remaining pair count
is summarized, keeping reports readable on quadratic pair sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from ...compiler.diagnostics import Diagnostic, Severity
from ...ir.program import AISProgram
from ...machine.errors import ComponentError
from ...machine.spec import MachineSpec
from ...machine.topology import ChannelTopology
from ..dataflow import ForwardAnalysis
from .hb import Barrier, BarrierOrder, DataflowOrder
from .resources import (
    ProgramAccesses,
    ResourceAccess,
    Transfer,
    extract_accesses,
)

__all__ = ["RaceDetector"]

SEVERITIES = {"error": Severity.ERROR, "warning": Severity.WARNING,
              "note": Severity.NOTE}


@dataclass
class _Group:
    """One deduplicated finding: first witness plus the pair count."""

    severity: Severity
    resource: str
    message: str
    instruction: int | None
    count: int = 1


@dataclass
class RaceDetector:
    """One detection run over one or more programs."""

    programs: Sequence[AISProgram]
    spec: MachineSpec
    topology: ChannelTopology | None = None
    barriers: Sequence[Barrier] = ()
    share_storage: bool = False

    findings: list[Diagnostic] = field(default_factory=list, init=False)
    mhp: dict[str, object] = field(default_factory=dict, init=False)
    _groups: dict[tuple, _Group] = field(default_factory=dict, init=False)

    # ------------------------------------------------------------------
    def run(self) -> "RaceDetector":
        if len(self.programs) >= 2:
            self._run_merged()
        else:
            self._run_single()
        self._flush_groups()
        return self

    # ------------------------------------------------------------------
    def _collect(
        self,
        code: str,
        severity: Severity,
        resource: str,
        message: str,
        *,
        key_extra: tuple = (),
        instruction: int | None = None,
    ) -> None:
        key = (code, resource, *key_extra)
        group = self._groups.get(key)
        if group is None:
            self._groups[key] = _Group(severity, resource, message, instruction)
        else:
            group.count += 1

    def _flush_groups(self) -> None:
        for (code, *_rest), group in sorted(
            self._groups.items(), key=lambda item: item[0]
        ):
            message = group.message
            if group.count > 1:
                message += f" (+{group.count - 1} more such pair(s))"
            self.findings.append(
                Diagnostic(
                    group.severity,
                    code,
                    message,
                    instruction=group.instruction,
                    operand=group.resource,
                )
            )

    # ------------------------------------------------------------------
    # merged mode: cross-assay interference
    # ------------------------------------------------------------------
    def _run_merged(self) -> None:
        order = BarrierOrder(self.programs, self.barriers)
        extracted = [
            extract_accesses(
                program,
                self.spec,
                program_index=p,
                namespace="" if self.share_storage else f"p{p}:",
            )
            for p, program in enumerate(self.programs)
        ]
        by_resource: dict[str, list[ResourceAccess]] = {}
        for facts in extracted:
            for access in facts.accesses:
                by_resource.setdefault(access.resource, []).append(access)
        shared = 0
        for resource, accesses in sorted(by_resource.items()):
            if len({a.program for a in accesses}) < 2:
                continue
            shared += 1
            self._classify_resource(resource, accesses, order, extracted)
        if self.topology is not None:
            self._check_routes(order, extracted)
        if not self.share_storage:
            self._check_bank(extracted)
        cross, mhp = order.mhp_pair_count()
        self.mhp = {
            "mode": "merged",
            "programs": len(self.programs),
            "wet_instructions": sum(f.wet_count for f in extracted),
            "barriers": len(list(self.barriers)),
            "pairs": cross,
            "mhp_pairs": mhp,
            "shared_resources": shared,
        }

    def _classify_resource(
        self,
        resource: str,
        accesses: list[ResourceAccess],
        order: BarrierOrder,
        extracted: list[ProgramAccesses],
    ) -> None:
        for position, a in enumerate(accesses):
            for b in accesses[position + 1:]:
                if a.program == b.program:
                    continue
                if not (a.write or b.write):
                    continue  # two pure reads never race
                if not order.mhp(a.program, a.index, b.program, b.index):
                    continue
                first, second = (a, b) if a.program < b.program else (b, a)
                self._classify_pair(resource, first, second, extracted)

    def _classify_pair(
        self,
        resource: str,
        a: ResourceAccess,
        b: ResourceAccess,
        extracted: list[ProgramAccesses],
    ) -> None:
        name_a = extracted[a.program].name
        name_b = extracted[b.program].name
        where = (
            f"{name_a!r}@{a.index} and {name_b!r}@{b.index} "
            f"may happen in parallel"
        )
        if a.is_port:
            if a.fluid == b.fluid:
                return  # one port, one fluid: consistent sharing
            if a.exact and b.exact:
                self._collect(
                    "RACE-PORT",
                    Severity.ERROR,
                    resource,
                    f"input port {resource!r} sources {a.fluid!r} and "
                    f"{b.fluid!r}: {where}",
                    key_extra=(a.program, b.program),
                )
            else:
                self._guarded_note(resource, a, b, where)
            return
        if not (a.exact and b.exact):
            self._guarded_note(resource, a, b, where)
            return
        if a.write and b.write:
            self._collect(
                "RACE-WW",
                Severity.ERROR,
                resource,
                f"{resource!r} is mutated by both: {where}",
                key_extra=(a.program, b.program),
            )
        else:
            self._collect(
                "RACE-RW",
                Severity.ERROR,
                resource,
                f"{resource!r} is read and mutated concurrently: {where}",
                key_extra=(a.program, b.program),
            )

    def _guarded_note(
        self, resource: str, a: ResourceAccess, b: ResourceAccess, where: str
    ) -> None:
        self._collect(
            "RACE-GUARDED",
            Severity.NOTE,
            resource,
            f"possible race on {resource!r} (guard-widened access): {where}",
            key_extra=(a.program, b.program),
        )

    # ------------------------------------------------------------------
    def _check_routes(
        self, order: BarrierOrder, extracted: list[ProgramAccesses]
    ) -> None:
        assert self.topology is not None
        routable: list[Transfer] = []
        for facts in extracted:
            for transfer in facts.transfers:
                try:
                    self.topology.route(transfer.src, transfer.dst)
                except ComponentError:
                    self._collect(
                        "RACE-UNROUTABLE",
                        Severity.ERROR,
                        transfer.dst,
                        f"no channel route from {transfer.src!r} to "
                        f"{transfer.dst!r} on topology "
                        f"{self.topology.name!r} "
                        f"({extracted[transfer.program].name!r}"
                        f"@{transfer.index})",
                        key_extra=(transfer.src,),
                        instruction=transfer.index,
                    )
                else:
                    routable.append(transfer)
        for position, a in enumerate(routable):
            for b in routable[position + 1:]:
                if a.program == b.program:
                    continue
                if not order.mhp(a.program, a.index, b.program, b.index):
                    continue
                if self.topology.conflicts((a.src, a.dst), (b.src, b.dst)):
                    first, second = (a, b) if a.program < b.program else (b, a)
                    self._collect(
                        "RACE-ROUTE",
                        Severity.ERROR,
                        second.dst,
                        f"transfers {first.src!r}->{first.dst!r} "
                        f"({extracted[first.program].name!r}@{first.index}) "
                        f"and {second.src!r}->{second.dst!r} "
                        f"({extracted[second.program].name!r}"
                        f"@{second.index}) may happen in parallel and "
                        "contend for a shared channel",
                        key_extra=(first.program, second.program),
                    )

    def _check_bank(self, extracted: list[ProgramAccesses]) -> None:
        demand = sum(facts.reservoir_demand for facts in extracted)
        bank = len(tuple(self.spec.reservoir_names()))
        if demand > bank:
            per_program = ", ".join(
                f"{facts.name!r}: {facts.reservoir_demand}"
                for facts in extracted
            )
            self._collect(
                "RACE-BANK",
                Severity.NOTE,
                "reservoir-bank",
                f"possible race: summed peak reservoir demand {demand} "
                f"exceeds the {bank}-reservoir bank ({per_program}); "
                "re-banking cannot be collision-free",
            )

    # ------------------------------------------------------------------
    # single mode: schedule-sensitive pairs of one serial program
    # ------------------------------------------------------------------
    def _run_single(self) -> None:
        program = self.programs[0]
        analysis = ForwardAnalysis(program, self.spec)
        order = DataflowOrder(program, analysis)
        facts = extract_accesses(program, self.spec)
        if self.topology is not None:
            self._check_single_routes(facts)
        by_resource: dict[str, list[ResourceAccess]] = {}
        for access in facts.accesses:
            by_resource.setdefault(access.resource, []).append(access)
        examined = sensitive = 0
        for resource, accesses in sorted(by_resource.items()):
            for position, a in enumerate(accesses):
                for b in accesses[position + 1:]:
                    if a.index == b.index or not (a.write or b.write):
                        continue
                    examined += 1
                    if order.ordered(a.index, b.index):
                        continue
                    sensitive += 1
                    first, second = (a, b) if a.index < b.index else (b, a)
                    code = (
                        "RACE-ORDER"
                        if first.exact and second.exact
                        else "RACE-GUARDED"
                    )
                    self._collect(
                        code,
                        Severity.NOTE,
                        resource,
                        f"schedule-sensitive: instructions {first.index} "
                        f"and {second.index} both touch {resource!r} but "
                        "are unordered by fluid dataflow; a scheduler "
                        "must keep their order or re-bank",
                        instruction=second.index,
                    )
        self.mhp = {
            "mode": "single",
            "programs": 1,
            "wet_instructions": facts.wet_count,
            "barriers": 0,
            "pairs": examined,
            "mhp_pairs": sensitive,
            "shared_resources": len(by_resource),
        }

    def _check_single_routes(self, facts: ProgramAccesses) -> None:
        assert self.topology is not None
        for transfer in facts.transfers:
            if not self.topology.is_routable(transfer.src, transfer.dst):
                self._collect(
                    "RACE-UNROUTABLE",
                    Severity.ERROR,
                    transfer.dst,
                    f"no channel route from {transfer.src!r} to "
                    f"{transfer.dst!r} on topology {self.topology.name!r} "
                    f"(@{transfer.index})",
                    key_extra=(transfer.src,),
                    instruction=transfer.index,
                )
