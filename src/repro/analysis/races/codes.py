"""Stable diagnostic codes emitted by the static race detector.

Every finding :func:`repro.analysis.races.analyze_races` produces carries
one of these codes; tests, CI, and ``repro lint --races --json`` consumers
match on them, so they are part of the tool's public contract.  The
catalogue below is the single source of truth; the table in
``docs/ANALYSIS.md`` mirrors the same text.

Severity semantics follow the certifier's convention: **errors** are
definite races (the classification holds on every interleaving the
happens-before graph admits), **notes** are possible races — findings
over bank-summarized, guard-widened, or merely schedule-sensitive
resources, where a scheduler still has the freedom to avoid the hazard.
"""

from __future__ import annotations

from ..certify.codes import CodeInfo, _catalogue

__all__ = ["RACE_CODES"]


RACE_CODES: dict[str, CodeInfo] = _catalogue(
    CodeInfo(
        "RACE-WW",
        "error",
        "two may-happen-in-parallel instructions both mutate the same "
        "component (write/write interference)",
    ),
    CodeInfo(
        "RACE-RW",
        "error",
        "a may-happen-in-parallel pair reads and mutates the same "
        "component (read/write interference)",
    ),
    CodeInfo(
        "RACE-PORT",
        "error",
        "two may-happen-in-parallel inputs source different fluids from "
        "the same input port",
    ),
    CodeInfo(
        "RACE-ROUTE",
        "error",
        "two may-happen-in-parallel transfers contend for a shared "
        "channel segment, pump, or junction on the chosen topology",
    ),
    CodeInfo(
        "RACE-UNROUTABLE",
        "error",
        "a transfer has no channel route between its endpoints on the "
        "chosen topology",
    ),
    CodeInfo(
        "RACE-BANK",
        "note",
        "possible race: the merged programs' summed peak reservoir "
        "demand exceeds the machine's bank, so re-banking cannot be "
        "collision-free",
    ),
    CodeInfo(
        "RACE-GUARDED",
        "note",
        "possible race: a may-happen-in-parallel conflict involves a "
        "guard-widened (dynamically conditional) or unknown access",
    ),
    CodeInfo(
        "RACE-ORDER",
        "note",
        "schedule-sensitive pair: two conflicting accesses are ordered "
        "only by the incidental program order, not by fluid dataflow — "
        "a scheduler must preserve their order or re-bank",
    ),
)
