"""Happens-before graphs and may-happen-in-parallel (MHP) queries.

Two orderings back the race detector, one per analysis mode:

**Merged mode** (:class:`BarrierOrder`) — several independently-compiled
programs run concurrently.  Within one program, program order is total
(the AIS stream is straight-line), so intra-program pairs never happen
in parallel.  Across programs the only ordering is explicit **barriers**:
a barrier is a tuple of per-program cut indices ``b``, meaning every
instruction *before* ``b[p]`` in program ``p`` happens before every
instruction *at or after* ``b[q]`` in program ``q``.  Rather than
enumerate the exists-a-barrier condition per pair, each instruction gets
an **epoch** — the number of barriers already crossed at its position:

    ``epoch_p(i) < epoch_q(j)  =>  (p, i) happens-before (q, j)``

for *arbitrary* barrier sets (a counting argument: some barrier is
crossed by ``j`` but not by ``i``), and pairs in equal epochs are
conservatively MHP — exact when the barrier cuts are monotone, an
over-approximation (sound: never misses a race) otherwise.

**Single mode** (:class:`DataflowOrder`) — one serial program, where
program order makes every pair trivially ordered and MHP vacuous.  The
interesting question is the opposite one: which conflicting pairs are
ordered *only* by the incidental emission order, not by fluid dataflow?
Those are exactly the pairs a scheduler may not reorder without
re-banking — surfaced as schedule-sensitive ``RACE-ORDER`` notes.  The
dataflow order is built from the value-flow graph (producer ->
consumer), read-after-write chains per location, and fences (``sense``
results feed dynamic guards, so a sense orders everything around it);
reachability is one backward sweep over bitsets.
"""

from __future__ import annotations

from collections.abc import Sequence

from ...ir.instructions import Opcode
from ...ir.program import AISProgram
from ..dataflow import AccessKind, ForwardAnalysis
from ..state import ContentKind

__all__ = ["Barrier", "BarrierOrder", "DataflowOrder"]

#: one synchronization point: per-program instruction cut indices.
Barrier = tuple[int, ...]


class BarrierOrder:
    """Epoch-based happens-before over a merged program list."""

    def __init__(
        self,
        programs: Sequence[AISProgram],
        barriers: Sequence[Barrier] = (),
    ) -> None:
        for barrier in barriers:
            if len(barrier) != len(programs):
                raise ValueError(
                    f"barrier {barrier!r} must carry one cut index per "
                    f"program ({len(programs)} expected)"
                )
        self.programs = list(programs)
        self.barriers = [tuple(b) for b in barriers]
        #: per program: instruction index -> epoch number.
        self._epochs: list[list[int]] = [
            self._program_epochs(p, len(program.instructions))
            for p, program in enumerate(self.programs)
        ]

    def _program_epochs(self, p: int, length: int) -> list[int]:
        cuts = sorted(barrier[p] for barrier in self.barriers)
        epochs, crossed = [], 0
        for index in range(length):
            while crossed < len(cuts) and cuts[crossed] <= index:
                crossed += 1
            epochs.append(crossed)
        return epochs

    def epoch(self, program: int, index: int) -> int:
        return self._epochs[program][index]

    def mhp(self, p: int, i: int, q: int, j: int) -> bool:
        """May (p, i) and (q, j) happen in parallel?"""
        if p == q:
            return False  # program order is total within one stream
        return self._epochs[p][i] == self._epochs[q][j]

    def mhp_pair_count(self) -> tuple[int, int]:
        """``(cross_pairs, mhp_pairs)`` over wet instructions, counted
        per epoch without pair enumeration."""
        per_epoch: list[dict[int, int]] = []
        for p, program in enumerate(self.programs):
            counts: dict[int, int] = {}
            for index, instruction in enumerate(program.instructions):
                if instruction.is_wet:
                    epoch = self._epochs[p][index]
                    counts[epoch] = counts.get(epoch, 0) + 1
            per_epoch.append(counts)
        cross = mhp = 0
        for p in range(len(per_epoch)):
            for q in range(p + 1, len(per_epoch)):
                total_p = sum(per_epoch[p].values())
                total_q = sum(per_epoch[q].values())
                cross += total_p * total_q
                for epoch, count in per_epoch[p].items():
                    mhp += count * per_epoch[q].get(epoch, 0)
        return cross, mhp


class DataflowOrder:
    """Fluid-dataflow ordering of one serial program (bitset closure)."""

    def __init__(self, program: AISProgram, analysis: ForwardAnalysis) -> None:
        n = len(program.instructions)
        successors: list[set[int]] = [set() for _ in range(n)]
        # value flow: producer -> consumer
        for source, targets in analysis.flow.edges.items():
            for target in targets:
                if source < target:
                    successors[source].add(target)
        # access chains per location, broken at fresh-session boundaries:
        # a deposit into a location whose previous content was drained or
        # consumed starts a *new* occupancy session — only the accident
        # of emission order separates it from the previous one, which is
        # exactly the schedule-sensitivity the detector reports.
        by_location: dict[str, list[tuple[int, bool, ContentKind]]] = {}
        for access in analysis.accesses:
            by_location.setdefault(access.place.text, []).append(
                (
                    access.index,
                    access.kind is not AccessKind.READ_SENSE,
                    access.before.kind,
                )
            )
        for events in by_location.values():
            last_write: int | None = None
            for index, is_write, before in events:
                if before in (ContentKind.EMPTY, ContentKind.CONSUMED):
                    last_write = None  # the location was free: new session
                if last_write is not None and last_write < index:
                    successors[last_write].add(index)
                if is_write:
                    last_write = index
        # fences: sense readings feed dynamic guards; explicit barriers
        fences = [
            index
            for index, instruction in enumerate(program.instructions)
            if instruction.opcode is Opcode.SENSE
            or instruction.meta.get("barrier")
        ]
        previous = None
        for fence in fences:
            start = 0 if previous is None else previous
            for index in range(start, fence):
                successors[index].add(fence)
            for index in range(fence + 1, n):
                successors[fence].add(index)
            previous = fence
        # backward transitive closure (all edges point forward)
        reach = [0] * n
        for index in range(n - 1, -1, -1):
            mask = 1 << index
            for successor in successors[index]:
                mask |= reach[successor]
            reach[index] = mask
        self._reach = reach

    def ordered(self, i: int, j: int) -> bool:
        """Is the earlier instruction ordered before the later one by
        dataflow (not merely by emission order)?"""
        if i == j:
            return True
        lo, hi = (i, j) if i < j else (j, i)
        return bool(self._reach[lo] >> hi & 1)
