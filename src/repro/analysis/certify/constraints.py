"""Independent re-derivation of the IVol constraint system.

This module rebuilds, from first principles, the demand model the paper's
volume solvers work against: how much of every fluid one unit of final
output requires, which node's capacity pins the global scale, and what
output volume an ideal (unrounded, equal-proportion) plan could deliver.

It deliberately does **not** import :mod:`repro.core.dagsolve`,
:mod:`repro.core.lp`, or :mod:`repro.core.rounding` — the certifier's
value as a translation validator comes from computing the same quantities
through an independent implementation, so a bug in the solvers cannot
silently agree with a bug here.  Only the shared IR (:mod:`repro.core.dag`)
and the limits record are reused.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ...core.dag import AssayDAG, NodeKind
from ...core.limits import HardwareLimits

__all__ = ["ReferenceModel", "reference_model"]

EdgeKey = tuple[str, str]

#: node kinds that act as fluid sources (drawn from a reservoir, never
#: produced by an upstream operation).
SOURCE_KINDS = (NodeKind.INPUT, NodeKind.CONSTRAINED_INPUT)


@dataclass
class ReferenceModel:
    """The re-derived demand model for one assay DAG.

    All quantities are *normalised*: they assume every final output
    produces exactly one volume unit (the paper's first artificial
    constraint).  ``production[n]`` is how much node ``n`` must produce,
    ``load[n]`` how much enters it (they differ only for separators),
    ``edge_demand[(s, d)]`` how much flows along each edge.  ``scale`` is
    the largest multiplier the hardware permits — the minimum over all
    nodes of ``capacity / held`` and over measured constrained inputs of
    ``available / production`` — and ``output_bound`` the total output
    volume an ideal unrounded equal-proportion plan would deliver at that
    scale.
    """

    production: dict[str, Fraction]
    load: dict[str, Fraction]
    edge_demand: dict[EdgeKey, Fraction]
    scale: Fraction
    output_bound: Fraction
    #: the node whose capacity (or availability) pins ``scale``.
    binding_node: str | None = None

    def held(self, node_id: str) -> Fraction:
        """Peak normalised volume the node's location must hold."""
        return max(self.production[node_id], self.load[node_id])


def reference_model(dag: AssayDAG, limits: HardwareLimits) -> ReferenceModel:
    """Re-derive normalised demands and the capacity-bound scale.

    Walks the DAG once in reverse topological order: a final output needs
    one unit; an intermediate must produce what its consumers draw plus
    its statically-known excess share; the volume *entering* a node is its
    production divided by its output fraction.  This mirrors the paper's
    constraint classes 1-5 without reusing the solver code.

    Raises:
        repro.core.errors.DagError (via ``validate``/``topological_order``)
        when the DAG is structurally broken — callers turn that into a
        certification failure rather than a crash.
    """
    production: dict[str, Fraction] = {}
    load: dict[str, Fraction] = {}
    edge_demand: dict[EdgeKey, Fraction] = {}

    sink_ids = {
        node.id
        for node in dag.nodes()
        if dag.out_degree(node.id) == 0 and node.kind is not NodeKind.EXCESS
    }

    for node_id in reversed(dag.topological_order()):
        node = dag.node(node_id)
        if node.kind is NodeKind.EXCESS:
            continue  # derived from its producer below
        drawn = Fraction(0)
        for edge in dag.out_edges(node_id):
            if not edge.is_excess:
                drawn += edge_demand[edge.key]
        if node_id in sink_ids:
            produced = Fraction(1)
        else:
            # Flow conservation modulo the statically-known discard: the
            # node makes what its consumers draw, plus the excess share.
            produced = drawn / (1 - node.excess_fraction)
        production[node_id] = produced
        if node.excess_fraction > 0:
            surplus = produced * node.excess_fraction
            for edge in dag.out_edges(node_id):
                if edge.is_excess:
                    edge_demand[edge.key] = surplus
                    production[edge.dst] = surplus
                    load[edge.dst] = surplus
        if node.kind in SOURCE_KINDS:
            load[node_id] = produced
            continue
        if node.unknown_volume:
            # A run-time-measured sink: the plan dispenses its *input*.
            fraction_out = Fraction(1)
        else:
            fraction_out = node.output_fraction or Fraction(1)
        entering = produced / fraction_out
        load[node_id] = entering
        for edge in dag.in_edges(node_id):
            if not edge.is_excess:
                edge_demand[edge.key] = edge.fraction * entering

    # -- the scale the hardware permits ---------------------------------
    scale: Fraction | None = None
    binding: str | None = None
    for node in dag.nodes():
        held = max(
            production.get(node.id, Fraction(0)),
            load.get(node.id, Fraction(0)),
        )
        if held == 0:
            continue
        capacity = node.capacity or limits.max_capacity
        bound = capacity / held
        if scale is None or bound < scale:
            scale, binding = bound, node.id
    for node in dag.nodes():
        if node.kind is not NodeKind.CONSTRAINED_INPUT:
            continue
        if node.available_volume is None:
            continue
        needed = production.get(node.id, Fraction(0))
        if needed == 0:
            continue
        bound = node.available_volume / needed
        if scale is None or bound < scale:
            scale, binding = bound, node.id
    if scale is None:
        scale = Fraction(0)

    outputs: list[str] = [
        node.id for node in dag.nodes()
        if node.id in sink_ids and node.kind not in SOURCE_KINDS
    ]
    output_bound = sum(
        (production[node_id] * scale for node_id in outputs), Fraction(0)
    )
    return ReferenceModel(
        production=production,
        load=load,
        edge_demand=edge_demand,
        scale=scale,
        output_bound=output_bound,
        binding_node=binding,
    )
