"""Schedule interference: occupancy analysis of the emitted program.

Walks the instruction stream in schedule order, maintaining which fluid
occupies every location (reservoirs, functional units, separator
sub-wells, sensors), and flags hardware interference:

* a transfer that deposits into a component already holding another live
  fluid (``SCHED-DOUBLE-BOOK``);
* a transfer or unit operation reading an empty component
  (``SCHED-DRY-PUMP`` — the dry-transport hazard);
* one input port sourcing two different fluids (``SCHED-PORT-CLASH``);
* a transfer with no channel route on the given topology
  (``SCHED-UNROUTABLE``), or whose route passes through an occupied
  component (``SCHED-ROUTE-THROUGH`` — the wet-transport hazard);
* with an explicit slot schedule, concurrent transfers whose routes
  contend for a shared segment, pump, or junction
  (``SCHED-ROUTE-OVERLAP`` via
  :meth:`~repro.machine.topology.ChannelTopology.conflicts`).

The model mirrors the code generator's conventions without trusting it:
a **bare** move drains its source while a **metered** move leaves a
remainder; ``output`` from an empty location is a hardware no-op (the
generator flushes units defensively); moving into a *filling* unit merges
(that is how mixes accumulate ingredients, and how a sensor accepts the
next sample over the last one); ``mix``/``incubate``/``concentrate``/
``separate`` promote the unit's content to a *product*, which no transfer
may then clobber.  Instructions guarded by a dynamic condition are
applied weakly: their effects are tracked as *unknown* and never flagged,
since whether they execute is decided at run time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

from ...compiler.diagnostics import Diagnostic, Severity
from ...ir.instructions import Instruction, Opcode, Operand
from ...ir.program import AISProgram
from ...machine.errors import ComponentError
from ...machine.spec import MachineSpec
from ...machine.topology import ChannelTopology

__all__ = ["OccupancyRecord", "certify_schedule"]


@dataclass
class _Hold:
    """One location's current content."""

    fluids: set[str] = field(default_factory=set)
    #: "filling" while ingredients accumulate (or a sample awaits
    #: sensing); "product" once an operation completed in place or a
    #: fluid was parked in a reservoir.
    state: str = "filling"
    #: set when the hold was created or mutated under a dynamic guard —
    #: its presence is not statically known, so it never raises findings.
    unknown: bool = False
    #: instruction index that created the hold (for diagnostics).
    start: int = 0


@dataclass(frozen=True)
class OccupancyRecord:
    """One completed occupancy interval, for reporting and benchmarks."""

    location: str
    fluids: tuple[str, ...]
    start: int  # instruction index that filled the location
    end: int    # instruction index that released it


class _ScheduleChecker:
    def __init__(
        self,
        program: AISProgram,
        spec: MachineSpec,
        topology: ChannelTopology | None,
        *,
        initial: dict[str, str] | None = None,
        slots: Sequence[int] | None = None,
    ) -> None:
        self.program = program
        self.spec = spec
        self.topology = topology
        self.slots = slots
        self.holds: dict[str, _Hold] = {}
        self.port_fluid: dict[str, str] = {}
        self.findings: list[Diagnostic] = []
        self.records: list[OccupancyRecord] = []
        for location, fluid in (initial or {}).items():
            self.holds[location] = _Hold({fluid}, state="product", start=-1)

    # ------------------------------------------------------------------
    def emit(
        self,
        severity: Severity,
        code: str,
        message: str,
        *,
        index: int,
        operand: str | None = None,
    ) -> None:
        self.findings.append(
            Diagnostic(
                severity, code, message, instruction=index, operand=operand
            )
        )

    # ------------------------------------------------------------------
    def run(self) -> tuple[list[Diagnostic], list[OccupancyRecord]]:
        for index, instruction in enumerate(self.program.instructions):
            if not instruction.is_wet:
                continue
            guarded = instruction.meta.get("guard") is not None
            op = instruction.opcode
            if op is Opcode.INPUT:
                self._do_input(index, instruction, guarded)
            elif op is Opcode.OUTPUT:
                self._do_output(index, instruction, guarded)
            elif op in (Opcode.MOVE, Opcode.MOVE_ABS):
                self._do_move(index, instruction, guarded)
            elif op in (Opcode.MIX, Opcode.INCUBATE, Opcode.CONCENTRATE):
                self._do_unit_op(index, instruction, guarded)
            elif op is Opcode.SEPARATE:
                self._do_separate(index, instruction, guarded)
            elif op is Opcode.SENSE:
                self._do_sense(index, instruction, guarded)
        self._check_slot_overlaps()
        for location, hold in sorted(self.holds.items()):
            self.records.append(
                OccupancyRecord(
                    location,
                    tuple(sorted(hold.fluids)),
                    hold.start,
                    len(self.program.instructions),
                )
            )
        return self.findings, self.records

    # ------------------------------------------------------------------
    # primitive state transitions
    # ------------------------------------------------------------------
    def _fluid_label(self, instruction: Instruction) -> str:
        for key in ("node", "dst_node", "aux", "park", "sense_of"):
            value = instruction.meta.get(key)
            if value is not None:
                return str(value)
        if instruction.edge is not None:
            return str(instruction.edge[0])
        return instruction.comment or "fluid"

    def _release(self, location: str, index: int) -> None:
        hold = self.holds.pop(location, None)
        if hold is not None:
            self.records.append(
                OccupancyRecord(
                    location, tuple(sorted(hold.fluids)), hold.start, index
                )
            )

    def _deposit(
        self,
        location: str,
        fluid: str,
        index: int,
        *,
        state: str,
        guarded: bool,
    ) -> None:
        hold = self.holds.get(location)
        if hold is None:
            self.holds[location] = _Hold(
                {fluid}, state=state, unknown=guarded, start=index
            )
        else:
            hold.fluids.add(fluid)
            hold.unknown = hold.unknown or guarded
            if state == "product":
                hold.state = "product"

    def _check_route(
        self, index: int, src: str, dst: str, guarded: bool
    ) -> None:
        if self.topology is None:
            return
        try:
            path = self.topology.route(src, dst)
        except ComponentError:
            self.emit(
                Severity.ERROR,
                "SCHED-UNROUTABLE",
                f"no channel route from {src!r} to {dst!r} on topology "
                f"{self.topology.name!r}",
                index=index,
                operand=dst,
            )
            return
        if guarded:
            return
        through = set(path[1:-1])
        for location, hold in self.holds.items():
            if hold.unknown:
                continue
            base = location.split(".")[0]
            if base in through:
                self.emit(
                    Severity.WARNING,
                    "SCHED-ROUTE-THROUGH",
                    f"transfer {src!r} -> {dst!r} routes through "
                    f"{base!r}, which holds "
                    f"{', '.join(sorted(hold.fluids))}",
                    index=index,
                    operand=base,
                )

    # ------------------------------------------------------------------
    # opcode handlers
    # ------------------------------------------------------------------
    def _do_input(
        self, index: int, instruction: Instruction, guarded: bool
    ) -> None:
        port = str(instruction.src)
        dst = str(instruction.dst)
        fluid = self._fluid_label(instruction)
        self._check_route(index, port, dst, guarded)
        seen = self.port_fluid.get(port)
        if seen is not None and seen != fluid and not guarded:
            self.emit(
                Severity.ERROR,
                "SCHED-PORT-CLASH",
                f"input port {port!r} sources {fluid!r} after already "
                f"sourcing {seen!r}",
                index=index,
                operand=port,
            )
        self.port_fluid.setdefault(port, fluid)
        hold = self.holds.get(dst)
        if hold is not None and not hold.unknown and not guarded:
            self.emit(
                Severity.ERROR,
                "SCHED-DOUBLE-BOOK",
                f"input into {dst!r} while it still holds "
                f"{', '.join(sorted(hold.fluids))}",
                index=index,
                operand=dst,
            )
        self._deposit(dst, fluid, index, state="product", guarded=guarded)

    def _do_output(
        self, index: int, instruction: Instruction, guarded: bool
    ) -> None:
        src = str(instruction.src)
        # Draining an empty location is a hardware no-op; the generator
        # flushes units defensively, so this is never a finding.
        if src not in self.holds:
            return
        self._check_route(index, src, str(instruction.dst), guarded)
        if guarded:
            self.holds[src].unknown = True
        else:
            self._release(src, index)

    def _do_move(
        self, index: int, instruction: Instruction, guarded: bool
    ) -> None:
        src = str(instruction.src)
        dst = str(instruction.dst)
        # a move is metered when it carries an explicit volume or an
        # ``edge`` annotation (the executor resolves those against the
        # volume plan at run time); only a truly bare move drains.
        metered = (
            instruction.rel_volume is not None
            or instruction.abs_volume is not None
            or instruction.edge is not None
        )
        source = self.holds.get(src)
        if source is None:
            if not guarded and not self._port_source(instruction.src):
                self.emit(
                    Severity.ERROR,
                    "SCHED-DRY-PUMP",
                    f"move from {src!r}, which holds nothing",
                    index=index,
                    operand=src,
                )
            fluids = {self._fluid_label(instruction)}
            unknown_src = True
        else:
            fluids = set(source.fluids)
            unknown_src = source.unknown
        self._check_route(index, src, dst, guarded)

        target = self.holds.get(dst)
        if (
            target is not None
            and not target.unknown
            and not guarded
            and not unknown_src
        ):
            collision = (
                target.state == "product"
                or self.spec.component_kind(dst.split(".")[0]) == "reservoir"
            )
            if collision:
                self.emit(
                    Severity.ERROR,
                    "SCHED-DOUBLE-BOOK",
                    f"move into {dst!r} while it still holds "
                    f"{', '.join(sorted(target.fluids))}",
                    index=index,
                    operand=dst,
                )
        # source bookkeeping: a bare move drains, a metered one meters.
        if source is not None:
            if guarded:
                source.unknown = True
            elif not metered:
                self._release(src, index)
        # destination: reservoirs hold finished fluids; units accumulate.
        dst_state = (
            "product"
            if self.spec.component_kind(dst.split(".")[0]) == "reservoir"
            else "filling"
        )
        for fluid in fluids:
            self._deposit(
                dst,
                fluid,
                index,
                state=dst_state,
                guarded=guarded or unknown_src,
            )

    def _port_source(self, operand: Operand | None) -> bool:
        if operand is None:
            return False
        return self.spec.component_kind(operand.base) == "input-port"

    def _do_unit_op(
        self, index: int, instruction: Instruction, guarded: bool
    ) -> None:
        unit = str(instruction.dst)
        hold = self.holds.get(unit)
        if hold is None:
            if not guarded:
                self.emit(
                    Severity.ERROR,
                    "SCHED-DRY-PUMP",
                    f"{instruction.opcode.value} on empty unit {unit!r}",
                    index=index,
                    operand=unit,
                )
            self.holds[unit] = _Hold(
                {self._fluid_label(instruction)},
                state="product",
                unknown=True,
                start=index,
            )
            return
        hold.state = "product"
        hold.unknown = hold.unknown or guarded

    def _do_separate(
        self, index: int, instruction: Instruction, guarded: bool
    ) -> None:
        unit = str(instruction.dst)
        feed = self.holds.get(unit)
        if feed is None and not guarded:
            self.emit(
                Severity.ERROR,
                "SCHED-DRY-PUMP",
                f"separate on empty unit {unit!r}",
                index=index,
                operand=unit,
            )
        outlet = f"{unit}.out1"
        pending = self.holds.get(outlet)
        if pending is not None and not pending.unknown and not guarded:
            self.emit(
                Severity.ERROR,
                "SCHED-DOUBLE-BOOK",
                f"separation deposits into {outlet!r} while it still "
                f"holds {', '.join(sorted(pending.fluids))}",
                index=index,
                operand=outlet,
            )
        fluids = set(feed.fluids) if feed is not None else set()
        fluids.add(self._fluid_label(instruction))
        unknown = guarded or (feed.unknown if feed is not None else True)
        # the separation consumes the feed and both auxiliary wells
        for well in (unit, f"{unit}.matrix", f"{unit}.pusher", outlet):
            if well in self.holds:
                self._release(well, index)
        self.holds[outlet] = _Hold(
            fluids, state="product", unknown=unknown, start=index
        )

    def _do_sense(
        self, index: int, instruction: Instruction, guarded: bool
    ) -> None:
        unit = str(instruction.dst)
        hold = self.holds.get(unit)
        if hold is None and not guarded:
            self.emit(
                Severity.ERROR,
                "SCHED-DRY-PUMP",
                f"sense on empty unit {unit!r}",
                index=index,
                operand=unit,
            )
        # non-destructive read: the sample stays where it is

    # ------------------------------------------------------------------
    def _check_slot_overlaps(self) -> None:
        if self.slots is None or self.topology is None:
            return
        transfers: dict[int, list[tuple[int, str, str]]] = {}
        for index, instruction in enumerate(self.program.instructions):
            if instruction.opcode not in (
                Opcode.INPUT,
                Opcode.OUTPUT,
                Opcode.MOVE,
                Opcode.MOVE_ABS,
            ):
                continue
            if index >= len(self.slots):
                break
            src, dst = str(instruction.src), str(instruction.dst)
            transfers.setdefault(self.slots[index], []).append(
                (index, src, dst)
            )
        for slot, group in sorted(transfers.items()):
            for position, (index_a, src_a, dst_a) in enumerate(group):
                for index_b, src_b, dst_b in group[position + 1:]:
                    # a chained pair (one's destination is the other's
                    # source) is a deliberate hand-off: sharing that
                    # endpoint is the point, so only deeper contention
                    # counts against it.
                    chained = dst_a == src_b or dst_b == src_a
                    try:
                        conflict = self.topology.conflicts(
                            (src_a, dst_a),
                            (src_b, dst_b),
                            allow_shared_endpoint=chained,
                        )
                    except ComponentError:
                        continue  # unroutable: already reported above
                    if conflict:
                        self.emit(
                            Severity.ERROR,
                            "SCHED-ROUTE-OVERLAP",
                            f"slot {slot}: transfers {src_a!r}->{dst_a!r} "
                            f"(instr {index_a}) and {src_b!r}->{dst_b!r} "
                            f"(instr {index_b}) contend for a shared "
                            "channel",
                            index=index_b,
                            operand=dst_b,
                        )


def certify_schedule(
    program: AISProgram,
    spec: MachineSpec,
    *,
    topology: ChannelTopology | None = None,
    initial: dict[str, str] | None = None,
    slots: Sequence[int] | None = None,
) -> tuple[list[Diagnostic], list[OccupancyRecord]]:
    """Check an instruction schedule for hardware interference.

    Args:
        program: the emitted AIS program (compiled or hand-written).
        spec: machine description for component classification.
        topology: channel graph for routability and wet-path findings;
            ``None`` checks occupancy only.
        initial: pre-seeded occupancy — location name to fluid label —
            for fluids a previous partition left behind (constrained
            inputs appear in reservoirs with no ``input`` instruction).
        slots: optional time slot per instruction index; instructions
            sharing a slot are treated as concurrent and their routes
            checked pairwise for contention.

    Returns:
        ``(findings, occupancy)`` — diagnostics plus the completed
        occupancy intervals (useful for reports and benchmarks).
    """
    checker = _ScheduleChecker(
        program, spec, topology, initial=initial, slots=slots
    )
    return checker.run()
