"""Stable diagnostic codes emitted by the plan-certificate verifier.

Every finding the certifier produces carries one of these codes; tests,
CI, and ``repro certify --json`` consumers match on them, so they are
part of the tool's public contract.  ``PLAN-*`` codes come from the plan
half (translation validation of the volume assignment against the
re-derived IVol constraint system), ``SCHED-*`` codes from the schedule
half (hardware-interference analysis over the emitted instruction
stream).  The catalogue below is the single source of truth; the table
in ``docs/ANALYSIS.md`` is generated from the same text.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CodeInfo", "PLAN_CODES", "SCHED_CODES", "ALL_CODES"]


@dataclass(frozen=True)
class CodeInfo:
    """One stable diagnostic code: default severity and a one-line gloss."""

    code: str
    severity: str  # "error" | "warning" | "note" — the *default* severity
    title: str


def _catalogue(*entries: CodeInfo) -> dict[str, CodeInfo]:
    return {entry.code: entry for entry in entries}


PLAN_CODES: dict[str, CodeInfo] = _catalogue(
    CodeInfo(
        "PLAN-COVERAGE",
        "error",
        "the assignment is missing (or has a negative) volume for a DAG "
        "node or edge",
    ),
    CodeInfo(
        "PLAN-FLOW",
        "error",
        "flow conservation violated: a node's input, production, or use "
        "totals disagree with its edge volumes",
    ),
    CodeInfo(
        "PLAN-QUANT",
        "error",
        "a dispensed edge volume is not an integer multiple of the least "
        "count (not expressible in IVol)",
    ),
    CodeInfo(
        "PLAN-UNDERFLOW",
        "error",
        "a metered edge volume is below the least count",
    ),
    CodeInfo(
        "PLAN-OVERFLOW",
        "error",
        "a node's held volume exceeds its capacity",
    ),
    CodeInfo(
        "PLAN-MIN-VOLUME",
        "error",
        "a functional-unit minimum-load constraint is violated",
    ),
    CodeInfo(
        "PLAN-BUDGET",
        "error",
        "draws from a constrained input exceed its measured available "
        "volume",
    ),
    CodeInfo(
        "PLAN-RATIO",
        "error",
        "a mix input deviates from its declared share by more than the "
        "rounding tolerance",
    ),
    CodeInfo(
        "PLAN-EXCESS",
        "error",
        "an excess edge's volume disagrees with its producer's surplus, "
        "or a NOEXCESS fluid produces excess",
    ),
    CodeInfo(
        "PLAN-SLICE",
        "error",
        "a replication or cascade slice is inconsistent with its origin "
        "(recipe mismatch or broken stage chain)",
    ),
    CodeInfo(
        "PLAN-DEFERRED",
        "note",
        "volumes are resolved at run time; plan certification limited to "
        "the schedule half",
    ),
    CodeInfo(
        "PLAN-WASTE",
        "note",
        "waste/optimality report: achieved output volume vs. the "
        "unrounded equal-output bound",
    ),
)


SCHED_CODES: dict[str, CodeInfo] = _catalogue(
    CodeInfo(
        "SCHED-DOUBLE-BOOK",
        "error",
        "a transfer or operation deposits into a component that still "
        "holds another live fluid",
    ),
    CodeInfo(
        "SCHED-DRY-PUMP",
        "error",
        "a transfer or operation reads a component that holds nothing "
        "(dry transport hazard)",
    ),
    CodeInfo(
        "SCHED-PORT-CLASH",
        "error",
        "one input port sources two different fluids",
    ),
    CodeInfo(
        "SCHED-UNROUTABLE",
        "error",
        "no channel route exists between a transfer's endpoints on the "
        "chosen topology",
    ),
    CodeInfo(
        "SCHED-ROUTE-THROUGH",
        "warning",
        "a transfer's route passes through a component that currently "
        "holds a live fluid (wet transport hazard)",
    ),
    CodeInfo(
        "SCHED-ROUTE-OVERLAP",
        "error",
        "two transfers scheduled to overlap in time contend for a shared "
        "channel segment, pump, or junction",
    ),
)


ALL_CODES: dict[str, CodeInfo] = {**PLAN_CODES, **SCHED_CODES}
