"""Plan certification: translation validation of a volume assignment.

Given the final (possibly cascaded/replicated) DAG and the volume
assignment the compiler produced for it, re-check every IVol obligation
with exact :class:`fractions.Fraction` arithmetic:

* **coverage** — every node and non-excess edge has a non-negative volume;
* **flow conservation** — a node's input volume equals the sum of its
  inbound draws; its production equals ``output_fraction`` times its
  input; its consumers (plus excess) draw no more than it produces;
* **quantisation / bounds** — every metered edge is an integer multiple
  of the least count and at least one least count; no location holds more
  than its capacity; functional-unit minimum loads and constrained-input
  budgets are respected;
* **ratio fidelity** — each mix input is within the rounding tolerance of
  its declared share;
* **slice consistency** — replicas brew the same recipe as their
  original; cascade stages chain to the node they were derived from;
* **waste report** — achieved output volume vs. the unrounded
  equal-proportion bound from :func:`~.constraints.reference_model`.

The assignment is accessed duck-typed (``node_volume`` /
``node_input_volume`` / ``edge_volume`` / ``tolerance``) so this module
needs no import from the solver stack it audits.
"""

from __future__ import annotations

from fractions import Fraction

from ...compiler.diagnostics import Diagnostic, Severity
from ...core.dag import AssayDAG, Node, NodeKind
from ...core.limits import HardwareLimits, as_fraction
from .codes import PLAN_CODES
from .constraints import SOURCE_KINDS, reference_model

__all__ = ["certify_plan"]

EdgeKey = tuple[str, str]

#: codes that report *feasibility* of the plan; when the compiler already
#: declared the plan infeasible (regeneration fallback), these downgrade
#: to warnings — the violation is known and handled at run time.  The
#: structural codes (FLOW, QUANT, COVERAGE, EXCESS, SLICE) never
#: downgrade: they mean the assignment is internally inconsistent, which
#: no amount of regeneration excuses.
_FEASIBILITY_CODES = frozenset(
    {
        "PLAN-UNDERFLOW",
        "PLAN-OVERFLOW",
        "PLAN-MIN-VOLUME",
        "PLAN-BUDGET",
        "PLAN-RATIO",
    }
)

_SEVERITIES = {
    "error": Severity.ERROR,
    "warning": Severity.WARNING,
    "note": Severity.NOTE,
}


def _nl(value: Fraction) -> str:
    return f"{float(value):.6g} nl"


class _PlanChecker:
    def __init__(
        self,
        dag: AssayDAG,
        assignment: object,
        limits: HardwareLimits,
        *,
        expect_feasible: bool = True,
        ratio_tolerance: Fraction | None = None,
    ) -> None:
        self.dag = dag
        self.limits = limits
        self.expect_feasible = expect_feasible
        self.ratio_tolerance = ratio_tolerance
        self.node_volume: dict[str, Fraction] = dict(assignment.node_volume)
        self.node_input_volume: dict[str, Fraction] = dict(
            assignment.node_input_volume
        )
        self.edge_volume: dict[EdgeKey, Fraction] = dict(
            assignment.edge_volume
        )
        self.slack: Fraction = as_fraction(
            getattr(assignment, "tolerance", 0) or 0
        )
        self.findings: list[Diagnostic] = []
        self.metrics: dict[str, float] = {}

    # ------------------------------------------------------------------
    def emit(
        self,
        code: str,
        message: str,
        *,
        node: str | None = None,
        operand: str | None = None,
    ) -> None:
        severity = _SEVERITIES[PLAN_CODES[code].severity]
        if code in _FEASIBILITY_CODES and not self.expect_feasible:
            severity = Severity.WARNING
        self.findings.append(
            Diagnostic(severity, code, message, node=node, operand=operand)
        )

    # ------------------------------------------------------------------
    def run(self) -> tuple[list[Diagnostic], dict[str, float]]:
        if not self._check_structure():
            return self.findings, self.metrics
        covered = self._check_coverage()
        self._check_edges(covered)
        self._check_nodes(covered)
        self._check_slices()
        self._report_waste()
        return self.findings, self.metrics

    # ------------------------------------------------------------------
    def _check_structure(self) -> bool:
        try:
            self.dag.validate()
        except Exception as error:  # DagError / RatioError / CycleError
            self.emit(
                "PLAN-COVERAGE",
                f"the final DAG fails structural validation: {error}",
            )
            return False
        return True

    def _check_coverage(self) -> bool:
        """Every node and edge priced, nothing negative."""
        clean = True
        for node in self.dag.nodes():
            for name, table in (
                ("production", self.node_volume),
                ("input", self.node_input_volume),
            ):
                volume = table.get(node.id)
                if volume is None:
                    self.emit(
                        "PLAN-COVERAGE",
                        f"assignment has no {name} volume for node "
                        f"{node.id!r}",
                        node=node.id,
                    )
                    table[node.id] = Fraction(0)
                    clean = False
                elif volume < 0:
                    self.emit(
                        "PLAN-COVERAGE",
                        f"negative {name} volume {_nl(volume)} for node "
                        f"{node.id!r}",
                        node=node.id,
                    )
                    clean = False
        for edge in self.dag.edges():
            volume = self.edge_volume.get(edge.key)
            if volume is None:
                self.emit(
                    "PLAN-COVERAGE",
                    f"assignment has no volume for edge "
                    f"{edge.src}->{edge.dst}",
                    node=edge.dst,
                )
                self.edge_volume[edge.key] = Fraction(0)
                clean = False
            elif volume < 0:
                self.emit(
                    "PLAN-COVERAGE",
                    f"negative volume {_nl(volume)} on edge "
                    f"{edge.src}->{edge.dst}",
                    node=edge.dst,
                )
                clean = False
        return clean

    # ------------------------------------------------------------------
    def _check_edges(self, covered: bool) -> None:
        least = self.limits.least_count
        for edge in self.dag.edges():
            if edge.is_excess:
                # The discarded share stays behind in the unit; it is
                # never metered, so IVol places no quantum on it.
                continue
            volume = self.edge_volume[edge.key]
            label = f"{edge.src}->{edge.dst}"
            steps = volume / least
            if steps.denominator != 1:
                self.emit(
                    "PLAN-QUANT",
                    f"edge {label} dispenses {_nl(volume)}, not an integer "
                    f"multiple of the {_nl(least)} least count",
                    node=edge.dst,
                    operand=label,
                )
            if volume < least - self.slack:
                self.emit(
                    "PLAN-UNDERFLOW",
                    f"edge {label} dispenses {_nl(volume)}, below the "
                    f"{_nl(least)} least count",
                    node=edge.dst,
                    operand=label,
                )

    # ------------------------------------------------------------------
    def _in_edges(self, node_id: str):
        return [e for e in self.dag.in_edges(node_id) if not e.is_excess]

    def _out_edges(self, node_id: str):
        return [e for e in self.dag.out_edges(node_id) if not e.is_excess]

    def _check_nodes(self, covered: bool) -> None:
        slack = self.slack
        for node in self.dag.nodes():
            if node.kind is NodeKind.EXCESS:
                self._check_excess_sink(node)
                continue
            production = self.node_volume[node.id]
            entering = self.node_input_volume[node.id]
            inbound = self._in_edges(node.id)
            outbound = self._out_edges(node.id)
            in_total = sum(
                (self.edge_volume[e.key] for e in inbound), Fraction(0)
            )
            out_total = sum(
                (self.edge_volume[e.key] for e in outbound), Fraction(0)
            )

            # -- flow conservation (constraint classes 2 and 5) --------
            if node.kind in SOURCE_KINDS:
                if abs(entering - production) > slack:
                    self.emit(
                        "PLAN-FLOW",
                        f"source {node.id!r}: input volume {_nl(entering)} "
                        f"differs from its production {_nl(production)}",
                        node=node.id,
                    )
            else:
                if abs(entering - in_total) > slack:
                    self.emit(
                        "PLAN-FLOW",
                        f"node {node.id!r}: input volume {_nl(entering)} "
                        f"!= sum of inbound draws {_nl(in_total)}",
                        node=node.id,
                    )
                fraction_out = (
                    Fraction(1)
                    if node.unknown_volume
                    else (node.output_fraction or Fraction(1))
                )
                expected = fraction_out * entering
                if abs(production - expected) > slack:
                    self.emit(
                        "PLAN-FLOW",
                        f"node {node.id!r}: production {_nl(production)} != "
                        f"output fraction {fraction_out} x input "
                        f"{_nl(entering)} = {_nl(expected)}",
                        node=node.id,
                    )
            excess_total = sum(
                (
                    self.edge_volume[e.key]
                    for e in self.dag.out_edges(node.id)
                    if e.is_excess
                ),
                Fraction(0),
            )
            if out_total + excess_total > production + slack:
                self.emit(
                    "PLAN-FLOW",
                    f"node {node.id!r}: consumers draw "
                    f"{_nl(out_total + excess_total)} but it only produces "
                    f"{_nl(production)}",
                    node=node.id,
                )

            # -- excess accounting (cascading, Section 3.4.1) -----------
            if node.excess_fraction > 0 or excess_total > 0:
                surplus = max(Fraction(0), production - out_total)
                if abs(excess_total - surplus) > slack:
                    self.emit(
                        "PLAN-EXCESS",
                        f"node {node.id!r}: excess edges carry "
                        f"{_nl(excess_total)} but the production surplus is "
                        f"{_nl(surplus)}",
                        node=node.id,
                    )
            if node.no_excess and excess_total > slack:
                self.emit(
                    "PLAN-EXCESS",
                    f"node {node.id!r} is flagged no-excess yet discards "
                    f"{_nl(excess_total)}",
                    node=node.id,
                )

            # -- capacity / minimum load (constraint classes 1 and 3) ---
            capacity = node.capacity or self.limits.max_capacity
            held = max(production, entering)
            if held > capacity + slack:
                self.emit(
                    "PLAN-OVERFLOW",
                    f"node {node.id!r} holds {_nl(held)}, over its "
                    f"{_nl(capacity)} capacity",
                    node=node.id,
                )
            if node.min_volume is not None:
                loaded = (
                    production if node.kind in SOURCE_KINDS else entering
                )
                if loaded < node.min_volume - slack:
                    self.emit(
                        "PLAN-MIN-VOLUME",
                        f"node {node.id!r} is loaded with {_nl(loaded)}, "
                        f"below its {_nl(node.min_volume)} minimum",
                        node=node.id,
                    )

            # -- constrained-input budget (Section 3.5) -----------------
            if (
                node.kind is NodeKind.CONSTRAINED_INPUT
                and node.available_volume is not None
                and production > node.available_volume + slack
            ):
                self.emit(
                    "PLAN-BUDGET",
                    f"constrained input {node.id!r} is drawn for "
                    f"{_nl(production)} but only "
                    f"{_nl(node.available_volume)} is available",
                    node=node.id,
                )

            # -- mix-ratio fidelity (constraint class 4) ----------------
            if len(inbound) >= 2 and in_total > 0:
                tolerance = self._ratio_tolerance(len(inbound))
                for edge in inbound:
                    ideal = edge.fraction * in_total
                    actual = self.edge_volume[edge.key]
                    if abs(actual - ideal) > tolerance + slack:
                        self.emit(
                            "PLAN-RATIO",
                            f"mix {node.id!r}: input {edge.src!r} "
                            f"contributes {_nl(actual)} against a declared "
                            f"share of {edge.fraction} of {_nl(in_total)} "
                            f"(= {_nl(ideal)}); deviation exceeds the "
                            f"{_nl(tolerance)} rounding tolerance",
                            node=node.id,
                            operand=f"{edge.src}->{edge.dst}",
                        )

    def _ratio_tolerance(self, n_inputs: int) -> Fraction:
        """Largest per-edge deviation least-count rounding can introduce.

        Each rounded edge sits within one least count of its exact value,
        so the node's total shifts by at most ``n`` least counts and the
        ideal share of an edge by at most one more — anything beyond
        ``(n + 1)`` least counts cannot be explained by rounding.
        """
        if self.ratio_tolerance is not None:
            return self.ratio_tolerance
        return (n_inputs + 1) * self.limits.least_count

    def _check_excess_sink(self, node: Node) -> None:
        inbound = self.dag.in_edges(node.id)
        if len(inbound) != 1:
            return  # validate() already flagged the malformed sink
        carried = self.edge_volume[inbound[0].key]
        stored = self.node_volume[node.id]
        if abs(stored - carried) > self.slack:
            self.emit(
                "PLAN-EXCESS",
                f"excess sink {node.id!r} records {_nl(stored)} but its "
                f"edge carries {_nl(carried)}",
                node=node.id,
            )

    # ------------------------------------------------------------------
    def _check_slices(self) -> None:
        """Replication / cascading provenance consistency."""
        for node in self.dag.nodes():
            origin = node.meta.get("replica_of")
            if origin is not None:
                self._check_replica(node, str(origin))
            cascade_of = node.meta.get("cascade_of")
            if cascade_of is not None and node.kind is NodeKind.MIX:
                self._check_cascade_stage(node, str(cascade_of))

    def _recipe(self, node_id: str) -> list[tuple[str, Fraction]]:
        """Inbound (source, share) pairs, sources canonicalised so that a
        replicated predecessor matches its original."""
        recipe = []
        for edge in self._in_edges(node_id):
            src = self.dag.node(edge.src)
            root = str(src.meta.get("replica_of", edge.src))
            recipe.append((root, edge.fraction))
        return sorted(recipe)

    def _check_replica(self, node: Node, origin: str) -> None:
        if origin not in self.dag:
            self.emit(
                "PLAN-SLICE",
                f"replica {node.id!r} refers to missing original "
                f"{origin!r}",
                node=node.id,
            )
            return
        if self._recipe(node.id) != self._recipe(origin):
            self.emit(
                "PLAN-SLICE",
                f"replica {node.id!r} brews a different recipe than its "
                f"original {origin!r}: the copies would not be "
                "interchangeable",
                node=node.id,
            )

    def _check_cascade_stage(self, node: Node, target: str) -> None:
        if target not in self.dag:
            self.emit(
                "PLAN-SLICE",
                f"cascade stage {node.id!r} refers to missing node "
                f"{target!r}",
                node=node.id,
            )
            return
        # A waste-objective compile shares one stage between cascades: its
        # consumers then drink what a private stage would have discarded, so
        # zero excess and multiple successors are legitimate there.
        consumers = int(node.meta.get("cascade_consumers", 1))
        if node.excess_fraction <= 0 and consumers < 2:
            self.emit(
                "PLAN-SLICE",
                f"cascade stage {node.id!r} discards nothing; without an "
                "excess share the stage cannot concentrate the dilution",
                node=node.id,
            )
        successors = [e.dst for e in self._out_edges(node.id)]
        if len(successors) != max(1, consumers):
            self.emit(
                "PLAN-SLICE",
                f"cascade stage {node.id!r} feeds {len(successors)} "
                f"consumers; a stage concentrate flows to exactly "
                f"{max(1, consumers)} next stage(s)",
                node=node.id,
            )
            return
        if consumers > 1:
            # each branch is checked when its own chain's stages come up
            return
        # walk the concentrate chain; it must reach the cascaded node
        current, hops = successors[0], 0
        while current != target and hops <= self.dag.node_count:
            step = self.dag.node(current)
            if step.meta.get("cascade_of") != target:
                break
            nexts = [e.dst for e in self._out_edges(current)]
            if len(nexts) != 1:
                break
            current, hops = nexts[0], hops + 1
        if current != target:
            self.emit(
                "PLAN-SLICE",
                f"cascade stage {node.id!r} never reaches the node "
                f"{target!r} it was derived from",
                node=node.id,
            )

    # ------------------------------------------------------------------
    def _report_waste(self) -> None:
        loaded = Fraction(0)
        for node in self.dag.nodes():
            if node.kind in SOURCE_KINDS:
                loaded += self.node_volume[node.id]
        delivered = Fraction(0)
        for node in self.dag.nodes():
            if (
                self.dag.out_degree(node.id) == 0
                and node.kind not in SOURCE_KINDS
                and node.kind is not NodeKind.EXCESS
            ):
                delivered += self.node_volume[node.id]
        excess = sum(
            (self.node_volume[n.id] for n in self.dag.excess_nodes()),
            Fraction(0),
        )
        try:
            model = reference_model(self.dag, self.limits)
            bound = model.output_bound
        except Exception:  # structurally broken DAG: already reported
            bound = Fraction(0)
        self.metrics = {
            "loaded_nl": float(loaded),
            "delivered_nl": float(delivered),
            "excess_nl": float(excess),
            "unrounded_bound_nl": float(bound),
            "utilisation": float(delivered / loaded) if loaded else 0.0,
            "bound_attainment": float(delivered / bound) if bound else 0.0,
        }
        if bound > 0:
            self.emit(
                "PLAN-WASTE",
                f"plan delivers {_nl(delivered)} of the "
                f"{_nl(bound)} unrounded equal-proportion bound "
                f"({float(delivered / bound) * 100:.1f}%), discarding "
                f"{_nl(excess)} as cascade excess "
                f"({float(loaded):.6g} nl loaded)",
            )


def certify_plan(
    dag: AssayDAG,
    assignment: object,
    limits: HardwareLimits,
    *,
    expect_feasible: bool = True,
    ratio_tolerance: Fraction | None = None,
) -> tuple[list[Diagnostic], dict[str, float]]:
    """Certify a volume assignment against the re-derived constraints.

    Args:
        dag: the final DAG the assignment prices (after transforms).
        assignment: anything exposing ``node_volume``,
            ``node_input_volume``, ``edge_volume`` mappings and an
            optional ``tolerance`` — typically a
            ``repro.core.dagsolve.VolumeAssignment``, accessed duck-typed
            to keep this package independent of the solver stack.
        limits: hardware capacity and least count to check against.
        expect_feasible: ``False`` when the compiler already declared the
            plan infeasible (regeneration fallback); feasibility findings
            then downgrade to warnings while structural inconsistencies
            stay errors.
        ratio_tolerance: override for the per-edge mix-ratio tolerance
            (default: ``(n_inputs + 1)`` least counts).

    Returns:
        ``(findings, metrics)`` — structured diagnostics plus the waste
        accounting used by the certificate report.
    """
    checker = _PlanChecker(
        dag,
        assignment,
        limits,
        expect_feasible=expect_feasible,
        ratio_tolerance=ratio_tolerance,
    )
    return checker.run()
