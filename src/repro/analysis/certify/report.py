"""Certificate assembly: the ``certify()`` / ``certify_program()`` API.

``certify(compiled)`` runs both halves over a compiler result — plan
certification against the final DAG and schedule interference over the
emitted program — and packages the findings as a
:class:`CertificateReport` with the same rendering, JSON schema and
exit-code policy as the lint driver.  ``certify_program`` covers bare AIS
listings (no plan to validate, schedule half only).

The compiled assay is accessed duck-typed (``final_dag``, ``assignment``,
``program``, ``spec``, ``allocation``, ``plan``, ``planner``) so this
package never imports the compiler pipeline or the solver stack it
audits.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fractions import Fraction
from collections.abc import Sequence

from ...compiler.diagnostics import (
    EXIT_CLEAN,
    EXIT_ERRORS,
    EXIT_WARNINGS,
    Diagnostic,
    DiagnosticSink,
    Severity,
    exit_code_for,
    report_payload,
    severity_counts,
)
from ...core.dag import NodeKind
from ...ir.program import AISProgram
from ...machine.spec import AQUACORE_SPEC, MachineSpec
from ...machine.topology import ChannelTopology, bus_topology
from .codes import PLAN_CODES
from .plan import certify_plan
from .schedule import OccupancyRecord, certify_schedule

__all__ = [
    "CertificateReport",
    "certify",
    "certify_program",
    "EXIT_CLEAN",
    "EXIT_WARNINGS",
    "EXIT_ERRORS",
]


@dataclass
class CertificateReport:
    """The outcome of certifying one compiled assay (or bare program)."""

    program: str
    machine: str
    findings: list[Diagnostic] = field(default_factory=list)
    plan_checked: bool = False
    schedule_checked: bool = False
    metrics: dict[str, float] = field(default_factory=dict)
    occupancy: list[OccupancyRecord] = field(default_factory=list)

    @property
    def counts(self) -> dict[str, int]:
        return severity_counts(self.findings)

    @property
    def is_clean(self) -> bool:
        """No warnings or errors (notes are informational)."""
        counts = self.counts
        return counts["error"] == 0 and counts["warning"] == 0

    @property
    def exit_code(self) -> int:
        """Shared severity table (repro.compiler.diagnostics)."""
        return exit_code_for(self.findings)

    def codes(self) -> list[str]:
        return [finding.code for finding in self.findings]

    def sink(self) -> DiagnosticSink:
        sink = DiagnosticSink()
        sink.extend(self.findings)
        return sink

    # ------------------------------------------------------------------
    def render_text(self) -> str:
        counts = self.counts
        lines = [str(finding) for finding in self.findings]
        halves = []
        halves.append("plan" if self.plan_checked else "plan skipped")
        halves.append(
            "schedule" if self.schedule_checked else "schedule skipped"
        )
        verdict = (
            "certified"
            if self.is_clean
            else f"{counts['error']} error(s), {counts['warning']} "
            f"warning(s), {counts['note']} note(s)"
        )
        lines.append(f"{self.program}: {verdict} [{' + '.join(halves)}]")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        return report_payload(
            "certify",
            self.program,
            self.machine,
            self.findings,
            exit_code=self.exit_code,
            extra_summary={
                "plan_checked": self.plan_checked,
                "schedule_checked": self.schedule_checked,
                "metrics": self.metrics,
            },
        )

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def _initial_occupancy(compiled: object) -> dict[str, str]:
    """Constrained inputs start the program already parked in reservoirs
    (a previous partition left them; no ``input`` instruction loads
    them)."""
    initial: dict[str, str] = {}
    allocation = getattr(compiled, "allocation", None)
    final_dag = getattr(compiled, "final_dag", None)
    if allocation is None or final_dag is None:
        return initial
    for node in final_dag.nodes():
        if node.kind is NodeKind.CONSTRAINED_INPUT:
            reservoir = allocation.reservoir_of.get(node.id)
            if reservoir is not None:
                initial[reservoir] = node.id
    return initial


def certify(
    compiled: object,
    *,
    spec: MachineSpec | None = None,
    topology: ChannelTopology | None = None,
    ratio_tolerance: Fraction | None = None,
    slots: Sequence[int] | None = None,
) -> CertificateReport:
    """Certify a compiled assay: validate its plan, then its schedule.

    Args:
        compiled: a ``repro.compiler.CompiledAssay`` (accessed duck-typed:
            ``final_dag``/``assignment``/``plan``/``planner``/``program``/
            ``spec``/``allocation``).
        spec: machine override; defaults to the spec the assay was
            compiled for.
        topology: channel graph for the schedule half; defaults to the
            machine's bus topology.
        ratio_tolerance: override for the plan half's per-edge mix-ratio
            tolerance.
        slots: optional concurrency schedule (see
            :func:`~.schedule.certify_schedule`).
    """
    machine_spec = spec or compiled.spec
    report = CertificateReport(
        program=compiled.program.name, machine=machine_spec.name
    )

    assignment = getattr(compiled, "assignment", None)
    plan = getattr(compiled, "plan", None)
    if assignment is not None:
        expect_feasible = not (
            plan is not None and getattr(plan, "needs_regeneration", False)
        )
        findings, metrics = certify_plan(
            compiled.final_dag,
            assignment,
            machine_spec.limits,
            expect_feasible=expect_feasible,
            ratio_tolerance=ratio_tolerance,
        )
        report.findings.extend(findings)
        report.metrics = metrics
        report.plan_checked = True
    else:
        report.findings.append(
            Diagnostic(
                Severity.NOTE,
                "PLAN-DEFERRED",
                PLAN_CODES["PLAN-DEFERRED"].title,
            )
        )

    schedule_findings, occupancy = certify_schedule(
        compiled.program,
        machine_spec,
        topology=topology or bus_topology(machine_spec),
        initial=_initial_occupancy(compiled),
        slots=slots,
    )
    report.findings.extend(schedule_findings)
    report.occupancy = occupancy
    report.schedule_checked = True
    return report


def certify_program(
    program: AISProgram,
    spec: MachineSpec = AQUACORE_SPEC,
    *,
    topology: ChannelTopology | None = None,
    initial: dict[str, str] | None = None,
    slots: Sequence[int] | None = None,
) -> CertificateReport:
    """Certify a bare AIS listing (schedule interference only).

    Without a volume plan there is nothing for the plan half to validate;
    hand-written listings get the full occupancy/routing analysis.
    """
    report = CertificateReport(program=program.name, machine=spec.name)
    findings, occupancy = certify_schedule(
        program,
        spec,
        topology=topology or bus_topology(spec),
        initial=initial,
        slots=slots,
    )
    report.findings.extend(findings)
    report.occupancy = occupancy
    report.schedule_checked = True
    return report
