"""Plan-certificate verifier: translation validation for volume plans.

The compiler pipeline (DAGSolve -> cascading -> replication -> rounding
-> codegen) is trusted end to end; this package is the independent
auditor.  It re-derives the IVol constraint system from the assay DAG and
machine spec (:mod:`~repro.analysis.certify.constraints`), checks the
emitted volume assignment against it with exact rational arithmetic
(:mod:`~repro.analysis.certify.plan`), and walks the generated
instruction schedule for hardware interference
(:mod:`~repro.analysis.certify.schedule`).  Findings carry the stable
``PLAN-*`` / ``SCHED-*`` codes catalogued in
:mod:`~repro.analysis.certify.codes` and documented in
``docs/ANALYSIS.md``.

By design this package imports **none** of ``repro.core.dagsolve``,
``repro.core.lp`` or ``repro.core.rounding`` — the modules it audits.
The duplicated constraint construction is the point: a solver bug cannot
agree with an independent re-derivation.  A test
(``tests/analysis/test_certify_corpus.py``) enforces the independence.

Entry points::

    from repro.analysis.certify import certify, certify_program
    report = certify(compiled)           # plan + schedule
    report = certify_program(program, spec)   # bare listing, schedule only

The same analysis runs behind ``repro certify`` and as an opt-in pipeline
stage (``compile_assay(..., certify=True)``).
"""

from .codes import ALL_CODES, PLAN_CODES, SCHED_CODES, CodeInfo
from .constraints import ReferenceModel, reference_model
from .plan import certify_plan
from .report import CertificateReport, certify, certify_program
from .schedule import OccupancyRecord, certify_schedule

__all__ = [
    "ALL_CODES",
    "PLAN_CODES",
    "SCHED_CODES",
    "CodeInfo",
    "ReferenceModel",
    "reference_model",
    "certify_plan",
    "certify_schedule",
    "OccupancyRecord",
    "CertificateReport",
    "certify",
    "certify_program",
]
