"""Fluid-safety static analysis over AIS programs.

The paper's central premise is that fluids are **linear resources**: a
use is destructive, so a fluid's volume must cover every direct and
transitive use without violating the machine's max-capacity or
least-count limits.  The seed surfaced violations only late — at
DAGSolve/LP time or when the interpreter raised mid-run.  This package
finds them *statically*, directly on the compiled (or hand-written)
instruction stream:

* :mod:`repro.analysis.state` — the abstract domain: per-location
  ``EMPTY / HOLDS(fluids, volume-interval) / CONSUMED / UNKNOWN``;
* :mod:`repro.analysis.dataflow` — one forward abstract-interpretation
  pass recording pre-states, location accesses, and the value-flow
  (def-use) graph from producers to output/sense sinks;
* :mod:`repro.analysis.checks` — the check registry (use-after-consume,
  double-fill, dead-fluid, static overflow/underflow, storage-less
  operand misuse, dry/wet register clash, operand sanity);
* :mod:`repro.analysis.lint` — the ``repro lint`` driver: text/JSON
  rendering and severity-based exit codes.

Library entry point::

    from repro.analysis import analyze
    diagnostics = analyze(compiled.program, compiled.spec)

The same pass runs as an opt-in pipeline stage
(``compile_assay(..., lint=True)``) and behind ``repro lint file.ais``.

The sibling :mod:`repro.analysis.certify` package audits the compiler's
*output* instead — translation validation of the volume plan plus
schedule-interference analysis — behind ``repro certify`` and
``compile_assay(..., certify=True)``.

The sibling :mod:`repro.analysis.sourceflow` package analyses the
*rolled* program instead of the unrolling: a CFG over the checked AST
and an interval fixpoint with widening, whose SRC-* verdicts hold for
every loop bound — behind ``repro lint --source``.

The sibling :mod:`repro.analysis.races` package is the *concurrency*
oracle: happens-before + lockset interference analysis over one program
or a merged multi-assay schedule, whose RACE-* verdicts hold for every
interleaving the barriers admit — behind ``repro lint --races`` and
``analyze_races([a, b], spec)``.
"""

from .certify import CertificateReport, certify, certify_program
from .checks import AnalysisContext, Check, all_checks, analyze, check_codes, register
from .dataflow import Access, AccessKind, ForwardAnalysis, Place, ValueFlow
from .lint import LintReport, lint_program, lint_text
from .races import RaceReport, analyze_races, race_text
from .sourceflow import SourceReport, verify_program, verify_source
from .state import AbsContent, AbstractState, ContentKind, VolumeInterval

__all__ = [
    "analyze",
    "AnalysisContext",
    "Check",
    "register",
    "all_checks",
    "check_codes",
    "ForwardAnalysis",
    "Access",
    "AccessKind",
    "Place",
    "ValueFlow",
    "LintReport",
    "lint_program",
    "lint_text",
    "RaceReport",
    "analyze_races",
    "race_text",
    "SourceReport",
    "verify_program",
    "verify_source",
    "AbsContent",
    "AbstractState",
    "ContentKind",
    "VolumeInterval",
]
