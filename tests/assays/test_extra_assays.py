"""The extra realistic assays: compile, plan, execute."""

import dataclasses
from fractions import Fraction

import pytest

from repro.compiler import compile_assay
from repro.core.dagsolve import compute_vnorms
from repro.machine.interpreter import Machine
from repro.machine.separation import SpeciesFilter
from repro.machine.spec import AQUACORE_SPEC
from repro.runtime.executor import AssayExecutor
from repro.assays import extra


class TestElisa:
    def test_static_thanks_to_yield_hints(self):
        compiled = compile_assay(extra.ELISA_SOURCE)
        assert compiled.is_static
        assert compiled.plan.status == "dagsolve"

    def test_executes_with_species_filter(self):
        compiled = compile_assay(extra.ELISA_SOURCE)
        spec = dataclasses.replace(
            AQUACORE_SPEC,
            extinction_coefficients={"sample": Fraction(4)},
        )
        machine = Machine(
            spec,
            separation_models={
                "separator1": SpeciesFilter(
                    ["sample", "conjugate"], recovery=Fraction(3, 5)
                ),
            },
        )
        result = AssayExecutor(compiled, machine).run()
        assert result.regenerations == 0
        assert set(result.results) == {
            "Reading[1]",
            "Reading[2]",
            "Reading[3]",
        }

    def test_kinetic_reads_identical_without_chemistry_model(self):
        """Our machine does not model enzymatic development, so the three
        kinetic reads see the same composition — a documented fidelity
        boundary, pinned here."""
        compiled = compile_assay(extra.ELISA_SOURCE)
        machine = Machine(AQUACORE_SPEC)
        result = AssayExecutor(compiled, machine).run()
        readings = [result.results[f"Reading[{i}]"] for i in (1, 2, 3)]
        assert readings[0] == readings[1] == readings[2]


class TestBradford:
    def test_lp_rescues_the_dye_sharing(self):
        """Six 1:50 dye reactions defeat DAGSolve's equal-output constraint
        (the standards' minor shares underflow) but LP balances them."""
        compiled = compile_assay(extra.BRADFORD_SOURCE)
        assert compiled.plan.status == "lp"
        assert compiled.assignment.feasible

    def test_dye_is_the_heavy_reagent(self):
        dag = extra.build_bradford_dag()
        vnorms = compute_vnorms(dag)
        heaviest = max(vnorms.node_vnorm, key=vnorms.node_vnorm.get)
        assert heaviest == "dye"

    def test_compiled_matches_hand_dag(self):
        from repro.ir.builder import build_dag_from_flat
        from repro.lang.parser import parse
        from repro.lang.unroll import unroll

        compiled_dag = build_dag_from_flat(
            unroll(parse(extra.BRADFORD_SOURCE))
        )
        reference = extra.build_bradford_dag()
        got = compute_vnorms(compiled_dag).node_vnorm
        expected = compute_vnorms(reference).node_vnorm
        assert got["dye"] == expected["dye"]
        assert got["standard[5]"] == expected["standard[5]"]

    def test_standard_curve_monotone(self):
        compiled = compile_assay(extra.BRADFORD_SOURCE)
        spec = dataclasses.replace(
            AQUACORE_SPEC,
            extinction_coefficients={
                "bsa": Fraction(100),
                "unknown": Fraction(30),
            },
        )
        result = AssayExecutor(compiled, Machine(spec)).run()
        curve = [float(result.results[f"Curve[{i}]"]) for i in range(1, 6)]
        assert curve == sorted(curve, reverse=True)
        assert result.regenerations == 0


class TestPcrPrep:
    def test_compiles_and_runs(self):
        compiled = compile_assay(extra.PCR_PREP_SOURCE)
        assert compiled.assignment.feasible
        spec = dataclasses.replace(
            AQUACORE_SPEC,
            extinction_coefficients={"template": Fraction(1000)},
        )
        result = AssayExecutor(compiled, Machine(spec)).run()
        assert result.regenerations == 0
        assert len(result.results) == 3

    def test_master_mix_used_three_times(self):
        from repro.ir.builder import build_dag_from_flat
        from repro.lang.parser import parse
        from repro.lang.unroll import unroll

        dag = build_dag_from_flat(unroll(parse(extra.PCR_PREP_SOURCE)))
        assert dag.out_degree("master") == 3

    def test_template_dilution_series(self):
        from repro.ir.builder import build_dag_from_flat
        from repro.lang.parser import parse
        from repro.lang.unroll import unroll

        dag = build_dag_from_flat(unroll(parse(extra.PCR_PREP_SOURCE)))
        ratios = [
            dag.node(f"dilution[{i}]").ratio for i in range(1, 4)
        ]
        assert ratios == [(1, 9), (1, 99), (1, 999)]

    def test_fluorescence_sensor_used(self):
        compiled = compile_assay(extra.PCR_PREP_SOURCE)
        listing = compiled.listing()
        assert "sense.FL sensor1" in listing
