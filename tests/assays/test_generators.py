"""Synthetic-generator tests."""

import pytest

from repro.core.dagsolve import compute_vnorms
from repro.assays import generators


class TestSerialDilution:
    def test_chain_length(self):
        dag = generators.serial_dilution(5)
        mixes = [
            n for n in dag.node_ids() if n.startswith("dil") and n != "diluent"
        ]
        assert len(mixes) == 5

    def test_last_stage_is_output(self):
        dag = generators.serial_dilution(3)
        assert [n.id for n in dag.outputs()] == ["dil3"]

    def test_invalid_steps(self):
        with pytest.raises(ValueError):
            generators.serial_dilution(0)


class TestBinaryMixTree:
    def test_node_counts(self):
        dag = generators.binary_mix_tree(3)
        assert len(dag.inputs()) == 8
        assert len(dag.outputs()) == 1

    def test_balanced_vnorms(self):
        dag = generators.binary_mix_tree(3)
        vnorms = compute_vnorms(dag)
        inputs = [vnorms.node_vnorm[n.id] for n in dag.inputs()]
        assert len(set(inputs)) == 1  # perfectly symmetric


class TestFanoutChain:
    def test_stock_use_count(self):
        dag = generators.fanout_chain(7)
        assert dag.out_degree("stock") == 7

    def test_chain_depth(self):
        dag = generators.fanout_chain(2, chain=3)
        assert "mix0.step2" in dag.node_ids()


class TestLayeredRandom:
    def test_reproducible(self):
        first = generators.layered_random_dag(4, 3, 3, seed=7)
        second = generators.layered_random_dag(4, 3, 3, seed=7)
        assert first.node_ids() == second.node_ids()
        assert [
            (e.src, e.dst, e.fraction) for e in first.edges()
        ] == [(e.src, e.dst, e.fraction) for e in second.edges()]

    def test_different_seeds_differ(self):
        first = generators.layered_random_dag(4, 3, 3, seed=7)
        second = generators.layered_random_dag(4, 3, 3, seed=8)
        assert [
            (e.src, e.dst) for e in first.edges()
        ] != [(e.src, e.dst) for e in second.edges()]

    def test_valid_dags(self):
        for seed in range(5):
            dag = generators.layered_random_dag(
                5, 4, 3, seed=seed, separator_probability=0.2
            )
            dag.validate()
            compute_vnorms(dag)  # must be solvable

    def test_every_input_used(self):
        dag = generators.layered_random_dag(8, 2, 2, seed=3)
        used = {e.src for e in dag.edges()}
        for node in dag.inputs():
            assert node.id in used or dag.out_degree(node.id) > 0

    def test_enzyme_n_alias(self):
        dag = generators.enzyme_n(3)
        assert dag.name == "enzyme3"
