"""Benchmark-assay sanity tests: hand-built DAGs match their documented
expectations and their language sources."""

from fractions import Fraction

import pytest

from repro.core.dagsolve import compute_vnorms, dagsolve
from repro.core.limits import PAPER_LIMITS
from repro.assays import enzyme, glucose, glycomics, paper_example


class TestPaperExample:
    def test_shape(self):
        dag = paper_example.build_dag()
        assert dag.node_count == 7
        assert dag.edge_count == 8

    def test_expected_tables_consistent(self):
        """The module's EXPECTED_* constants are mutually consistent."""
        vnorms = paper_example.EXPECTED_VNORMS
        maximum = max(vnorms.values())
        for node, volume in paper_example.EXPECTED_VOLUMES.items():
            assert volume == Fraction(100) * vnorms[node] / maximum

    def test_source_compiles_to_same_dag(self):
        from repro.lang.parser import parse
        from repro.lang.unroll import unroll
        from repro.ir.builder import build_dag_from_flat

        dag = build_dag_from_flat(unroll(parse(paper_example.SOURCE)))
        reference = paper_example.build_dag()
        assert {n.id for n in dag.nodes()} == {
            n.id for n in reference.nodes()
        }
        for edge in reference.edges():
            assert dag.edge(edge.src, edge.dst).fraction == edge.fraction


class TestGlucose:
    def test_mix_ratios_table(self):
        dag = glucose.build_dag()
        assert dag.node("d").ratio == (1, 8)
        assert dag.node("e").ratio == (1, 1)

    def test_reagent_most_used(self):
        vnorms = compute_vnorms(glucose.build_dag())
        assert max(vnorms.node_vnorm, key=vnorms.node_vnorm.get) == "Reagent"


class TestGlycomics:
    def test_three_unknown_separations(self):
        dag = glycomics.build_dag()
        unknown = [n.id for n in dag.nodes() if n.unknown_volume]
        assert sorted(unknown) == list(glycomics.SEPARATORS)

    def test_buffer3a_used_twice(self):
        dag = glycomics.build_dag()
        assert dag.out_degree("buffer3a") == 2

    def test_three_way_permethylation_mix(self):
        dag = glycomics.build_dag()
        assert dag.node("mix4").ratio == (1, 100, 1)


class TestEnzyme:
    def test_dilution_ratios(self):
        assert enzyme.dilution_ratios(4) == [1, 9, 99, 999]
        assert enzyme.dilution_ratios(6) == [1, 9, 99, 999, 9999, 99999]

    def test_each_dilution_used_16_times(self):
        dag = enzyme.build_dag()
        for reagent in enzyme.REAGENTS:
            for i in range(1, 5):
                assert dag.out_degree(f"{reagent}.dil{i}") == 16

    def test_diluent_used_12_times(self):
        assert enzyme.build_dag().out_degree("diluent") == 12

    def test_combination_count_scales_cubically(self):
        for n in (2, 3):
            dag = enzyme.build_dag(n)
            mixes = [
                node
                for node in dag.nodes()
                if node.id.startswith("combo") and not node.id.endswith(".inc")
            ]
            assert len(mixes) == n ** 3

    def test_expected_constants(self):
        dag = enzyme.build_dag()
        assignment = dagsolve(dag, PAPER_LIMITS)
        assert (
            assignment.vnorms.node_vnorm["diluent"]
            == enzyme.EXPECTED_DILUENT_VNORM
        )
        assert round(float(enzyme.EXPECTED_DILUENT_VNORM), 1) == 54.2
        assert round(float(enzyme.EXPECTED_MIN_VOLUME_NL) * 1000, 1) == 9.8

    def test_min_dilution_count(self):
        with pytest.raises(ValueError):
            enzyme.build_dag(0)
