"""Trace timeline semantics: ordering, stamping, and exact round-trips."""

import json
from fractions import Fraction

from repro.assays import glucose
from repro.compiler import compile_assay
from repro.machine.interpreter import Machine
from repro.machine.trace import (
    ExecutionTrace,
    FaultEvent,
    RecoveryEvent,
    TraceEvent,
)
from repro.runtime.executor import AssayExecutor


def executed_trace():
    compiled = compile_assay(glucose.SOURCE)
    return AssayExecutor(compiled, Machine(compiled.spec)).run().trace


class TestTimeline:
    def test_events_follow_program_order(self):
        trace = executed_trace()
        assert trace.events, "glucose run must produce events"
        indices = [e.index for e in trace.events]
        assert indices == sorted(indices)

    def test_clock_is_monotone_and_cumulative(self):
        trace = executed_trace()
        clock = Fraction(0)
        for event in trace.events:
            clock += event.seconds
            assert event.clock == clock
            assert event.seconds >= 0
        assert trace.total_seconds == clock

    def test_wet_dry_counts_partition_events(self):
        trace = executed_trace()
        assert (
            trace.wet_instruction_count + trace.dry_instruction_count
            == len(trace.events)
        )

    def test_fault_and_recovery_stamping(self):
        trace = ExecutionTrace()
        trace.record(
            TraceEvent(index=0, opcode="move", text="move a, b",
                       seconds=Fraction(3)),
            wet=True,
        )
        fault = trace.record_fault(
            FaultEvent(index=1, kind="metering-drift",
                       magnitude=Fraction(1, 10))
        )
        assert fault.seq == 1          # after one instruction event
        assert fault.clock == Fraction(3)
        trace.record(
            TraceEvent(index=1, opcode="move", text="move b, c",
                       seconds=Fraction(2)),
            wet=True,
        )
        recovery = trace.record_recovery(
            RecoveryEvent(index=1, action="retry", location="b")
        )
        assert recovery.seq == 2
        assert recovery.clock == Fraction(5)
        # the originals are immutable; the stamped copies are stored
        assert trace.faults == [fault]
        assert trace.recoveries == [recovery]


class TestRoundTrip:
    def build(self):
        trace = ExecutionTrace()
        trace.record(
            TraceEvent(
                index=0,
                opcode="input",
                text="input p1, s1, 10",
                volume=Fraction(99, 10),
                seconds=Fraction(3),
            ),
            wet=True,
        )
        trace.record(
            TraceEvent(index=1, opcode="dry-mov", text="mov r1, 2"),
            wet=False,
        )
        trace.record_fault(
            FaultEvent(
                index=2,
                kind="reservoir-depletion",
                location="s1",
                magnitude=Fraction(99, 10),
                note="contents lost to waste",
            )
        )
        trace.record_recovery(
            RecoveryEvent(
                index=2,
                action="regeneration",
                location="s1",
                attempts=1,
                extra_volume=Fraction(33, 7),
            )
        )
        trace.regeneration_count = 1
        return trace

    def test_exact_round_trip(self):
        trace = self.build()
        restored = ExecutionTrace.from_dict(trace.to_dict())
        assert restored == trace

    def test_round_trip_survives_json(self):
        trace = self.build()
        payload = json.dumps(trace.to_dict(), sort_keys=True)
        restored = ExecutionTrace.from_dict(json.loads(payload))
        assert restored == trace
        # fractions stay exact through the "n/d" encoding
        assert restored.recoveries[0].extra_volume == Fraction(33, 7)

    def test_executed_trace_round_trips(self):
        trace = executed_trace()
        assert ExecutionTrace.from_dict(trace.to_dict()) == trace

    def test_measurements_helper(self):
        trace = ExecutionTrace()
        trace.record(
            TraceEvent(index=4, opcode="sense", text="sense ...",
                       measurement=Fraction(7, 2)),
            wet=True,
        )
        assert trace.measurements() == {4: Fraction(7, 2)}
