"""Mixture tests: exact composition tracking."""

from fractions import Fraction

import pytest

from repro.machine.fluids import Mixture


class TestConstruction:
    def test_pure(self):
        mixture = Mixture.pure("Glucose", 50)
        assert mixture.volume == 50
        assert mixture.concentration("Glucose") == 1

    def test_empty(self):
        assert Mixture.empty().is_empty
        assert Mixture.empty().volume == 0

    def test_zero_components_dropped(self):
        mixture = Mixture({"a": Fraction(0), "b": Fraction(5)})
        assert mixture.species() == ("b",)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Mixture({"a": Fraction(-1)})


class TestMerge:
    def test_merge_adds_components(self):
        merged = Mixture.pure("a", 10).merge(Mixture.pure("b", 30))
        assert merged.volume == 40
        assert merged.concentration("a") == Fraction(1, 4)
        assert merged.concentration("b") == Fraction(3, 4)

    def test_merge_same_species(self):
        merged = Mixture.pure("a", 10).merge(Mixture.pure("a", 5))
        assert merged.amount("a") == 15

    def test_merge_does_not_mutate(self):
        left = Mixture.pure("a", 10)
        left.merge(Mixture.pure("b", 1))
        assert left.species() == ("a",)


class TestTake:
    def test_take_proportional(self):
        mixture = Mixture({"a": Fraction(30), "b": Fraction(10)})
        taken = mixture.take(20)
        assert taken.volume == 20
        assert taken.amount("a") == 15
        assert taken.amount("b") == 5
        assert mixture.volume == 20

    def test_take_all(self):
        mixture = Mixture.pure("a", 7)
        taken = mixture.take_all()
        assert taken.volume == 7
        assert mixture.is_empty

    def test_take_too_much_rejected(self):
        with pytest.raises(ValueError):
            Mixture.pure("a", 5).take(6)

    def test_take_negative_rejected(self):
        with pytest.raises(ValueError):
            Mixture.pure("a", 5).take(-1)

    def test_take_zero(self):
        mixture = Mixture.pure("a", 5)
        assert mixture.take(0).is_empty
        assert mixture.volume == 5

    def test_conservation_is_exact(self):
        mixture = Mixture({"a": Fraction(1, 3), "b": Fraction(2, 7)})
        total = mixture.volume
        taken = mixture.take(total / 3)
        assert taken.volume + mixture.volume == total

    def test_split(self):
        mixture = Mixture.pure("a", 10)
        first, second = mixture.split([2, 3])
        assert first.volume == 2 and second.volume == 3
        assert mixture.volume == 5


class TestTransforms:
    def test_scaled(self):
        mixture = Mixture({"a": Fraction(4), "b": Fraction(8)})
        half = mixture.scaled(Fraction(1, 2))
        assert half.amount("a") == 2
        assert mixture.amount("a") == 4  # original untouched

    def test_relabelled(self):
        mixture = Mixture({"a": Fraction(4), "b": Fraction(8)})
        product = mixture.relabelled("digest")
        assert product.volume == 12
        assert product.species() == ("digest",)

    def test_concentration_of_absent_species(self):
        assert Mixture.pure("a", 1).concentration("zz") == 0

    def test_concentration_of_empty(self):
        assert Mixture.empty().concentration("a") == 0

    def test_approx_equal(self):
        mixture = Mixture({"a": Fraction(1), "b": Fraction(2)})
        assert mixture.approx_equal({"a": 1, "b": 2})
        assert not mixture.approx_equal({"a": 1})
        assert mixture.approx_equal({"a": 1, "b": Fraction(21, 10)}, tolerance=Fraction(2, 10))
