"""Channel-topology tests: routing, distances, conflicts, machine wiring."""

from fractions import Fraction

import pytest

from repro.compiler import compile_assay
from repro.machine.errors import ComponentError
from repro.machine.interpreter import Machine
from repro.machine.spec import AQUACORE_SPEC
from repro.machine.topology import ChannelTopology, bus_topology, ring_topology
from repro.runtime.executor import AssayExecutor
from repro.assays import glucose


class TestGraphBasics:
    def test_add_channel_is_symmetric(self):
        topology = ChannelTopology("t")
        topology.add_channel("a", "b")
        assert topology.is_routable("a", "b")
        assert topology.is_routable("b", "a")
        assert topology.channel_count == 1

    def test_self_channel_rejected(self):
        topology = ChannelTopology("t")
        with pytest.raises(ComponentError):
            topology.add_channel("a", "a")

    def test_route_is_shortest(self):
        topology = ChannelTopology("t")
        for a, b in (("a", "b"), ("b", "c"), ("c", "d"), ("a", "d")):
            topology.add_channel(a, b)
        assert topology.hops("a", "c") == 2  # a-b-c or a-d-c
        assert topology.hops("a", "d") == 1

    def test_unroutable_raises(self):
        topology = ChannelTopology("t")
        topology.add_channel("a", "b")
        topology.add_location("island")
        with pytest.raises(ComponentError):
            topology.route("a", "island")

    def test_subwells_route_as_their_unit(self):
        topology = ChannelTopology("t")
        topology.add_channel("mixer1", "separator1")
        assert topology.hops("mixer1", "separator1.matrix") == 1

    def test_same_location_zero_hops(self):
        topology = ChannelTopology("t")
        topology.add_location("a")
        assert topology.hops("a", "a") == 0


class TestBuilders:
    def test_bus_every_pair_two_hops(self):
        topology = bus_topology(AQUACORE_SPEC)
        assert topology.hops("s1", "mixer1") == 2
        assert topology.hops("ip1", "op1") == 2
        assert topology.hops("s1", "s24") == 2

    def test_ring_distances_vary(self):
        topology = ring_topology(AQUACORE_SPEC)
        distances = {
            topology.hops("s1", location)
            for location in ("s2", "mixer1", "op1")
        }
        assert len(distances) > 1  # layout matters on a ring

    def test_ring_is_connected(self):
        topology = ring_topology(AQUACORE_SPEC)
        for location in topology.locations():
            assert topology.is_routable("s1", location)


class TestConflicts:
    def test_bus_transfers_always_conflict(self):
        """Every bus transfer crosses the backbone: no two can overlap —
        exactly why AquaCore executes wet operations serially."""
        topology = bus_topology(AQUACORE_SPEC)
        assert topology.conflicts(("s1", "mixer1"), ("s2", "heater1"))

    def test_ring_allows_disjoint_transfers(self):
        topology = ChannelTopology("mini-ring")
        for a, b in (("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")):
            topology.add_channel(a, b)
        assert not topology.conflicts(("a", "b"), ("c", "d"))
        assert topology.conflicts(("a", "b"), ("b", "c"))

    def test_shared_endpoint_handoff_allowed(self):
        """A -> B then B -> C share only the hand-off point B: with
        ``allow_shared_endpoint`` that deliberate sequential chaining is
        not a conflict."""
        topology = ChannelTopology("mini-ring")
        for a, b in (("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")):
            topology.add_channel(a, b)
        assert topology.conflicts(("a", "b"), ("b", "c"))
        assert not topology.conflicts(
            ("a", "b"), ("b", "c"), allow_shared_endpoint=True
        )

    def test_shared_interior_still_conflicts(self):
        """Relaxing endpoints must not forgive routes crossing through
        a shared *interior* location."""
        topology = ChannelTopology("star")
        for leaf in ("a", "b", "c", "d"):
            topology.add_channel(leaf, "hub")
        # a->b and c->d both route through the hub interior.
        assert topology.conflicts(
            ("a", "b"), ("c", "d"), allow_shared_endpoint=True
        )

    def test_shared_endpoint_canonicalises_subwells(self):
        topology = ChannelTopology("t")
        topology.add_channel("mixer1", "separator1")
        topology.add_channel("separator1", "s1")
        assert not topology.conflicts(
            ("mixer1", "separator1.matrix"),
            ("separator1", "s1"),
            allow_shared_endpoint=True,
        )

    def test_shared_locations_reports_contention_set(self):
        topology = bus_topology(AQUACORE_SPEC)
        shared = topology.shared_locations(("s1", "mixer1"), ("s2", "heater1"))
        assert shared == {"__bus__"}


class TestMachineIntegration:
    def test_bus_machine_runs_glucose(self):
        compiled = compile_assay(glucose.SOURCE)
        machine = Machine(AQUACORE_SPEC, topology=bus_topology(AQUACORE_SPEC))
        result = AssayExecutor(compiled, machine).run()
        assert result.regenerations == 0

    def test_transfer_time_scales_with_hops(self):
        compiled = compile_assay(glucose.SOURCE)
        flat = Machine(AQUACORE_SPEC)
        bus = Machine(AQUACORE_SPEC, topology=bus_topology(AQUACORE_SPEC))
        t_flat = AssayExecutor(compiled, flat).run().trace.total_seconds
        t_bus = AssayExecutor(compiled, bus).run().trace.total_seconds
        # 18 transfers at 2 hops instead of 1 -> +18 s
        assert t_bus == t_flat + 18

    def test_unroutable_move_rejected(self):
        from repro.ir.instructions import input_, move

        topology = ChannelTopology("sparse")
        topology.add_channel("ip1", "s1")  # nothing else connected
        topology.add_location("mixer1")
        machine = Machine(AQUACORE_SPEC, topology=topology)
        machine.bind_port("ip1", "a")
        machine.execute(input_("s1", "ip1", abs_volume=Fraction(10)))
        with pytest.raises(ComponentError):
            machine.execute(move("mixer1", "s1"))
