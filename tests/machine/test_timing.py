"""Simulated fluid-path timing tests (the Section 1/2.1 cost model)."""

from fractions import Fraction

import pytest

from repro.ir.instructions import (
    dry_mov,
    incubate,
    input_,
    mix,
    move,
    move_abs,
    sense,
    separate,
)
from repro.machine.interpreter import Machine
from repro.machine.separation import FractionalYield
from repro.machine.spec import AQUACORE_SPEC


@pytest.fixture
def machine():
    m = Machine(AQUACORE_SPEC)
    m.bind_port("ip1", "a")
    return m


class TestPerInstructionCosts:
    def test_transfer_costs_one_second(self, machine):
        machine.execute(input_("s1", "ip1", abs_volume=Fraction(40)))
        assert machine.trace.total_seconds == 1
        machine.execute(move_abs("mixer1", "s1", Fraction(10)))
        assert machine.trace.total_seconds == 2

    def test_mix_costs_its_duration(self, machine):
        machine.execute(input_("s1", "ip1", abs_volume=Fraction(40)))
        machine.execute(move("mixer1", "s1"))
        machine.execute(mix("mixer1", 10))
        assert machine.trace.total_seconds == 1 + 1 + 10

    def test_incubate_costs_its_duration(self, machine):
        machine.execute(input_("s1", "ip1", abs_volume=Fraction(40)))
        machine.execute(move("heater1", "s1"))
        machine.execute(incubate("heater1", 37, 300))
        assert machine.trace.total_seconds == 302

    def test_separation_costs_its_duration(self):
        m = Machine(
            AQUACORE_SPEC,
            separation_models={"separator2": FractionalYield(Fraction(1, 2))},
        )
        m.bind_port("ip1", "a")
        m.execute(input_("s1", "ip1", abs_volume=Fraction(40)))
        m.execute(move("separator2", "s1"))
        m.execute(separate("separator2", "LC", 2400))
        assert m.trace.total_seconds == 1 + 1 + 2400

    def test_dry_instructions_free(self, machine):
        for __ in range(50):
            machine.execute(dry_mov("r0", 1))
        assert machine.trace.total_seconds == 0

    def test_sense_cost(self, machine):
        machine.execute(input_("s1", "ip1", abs_volume=Fraction(40)))
        machine.execute(move("sensor2", "s1"))
        machine.execute(sense("sensor2", "OD", "r"))
        assert (
            machine.trace.total_seconds
            == 2 * AQUACORE_SPEC.transfer_seconds + AQUACORE_SPEC.sense_seconds
        )


class TestAssayTotals:
    def test_glucose_total_time(self):
        """3 inputs + 15 moves + 5x10s mixes + 5 senses = 73 s."""
        import dataclasses

        from repro.compiler import compile_assay
        from repro.runtime.executor import AssayExecutor
        from repro.assays import glucose

        compiled = compile_assay(glucose.SOURCE)
        result = AssayExecutor(compiled, Machine(AQUACORE_SPEC)).run()
        assert result.trace.total_seconds == 3 + 15 + 5 * 10 + 5

    def test_custom_transfer_cost(self):
        import dataclasses

        spec = dataclasses.replace(AQUACORE_SPEC, transfer_seconds=Fraction(5))
        m = Machine(spec)
        m.bind_port("ip1", "a")
        m.execute(input_("s1", "ip1", abs_volume=Fraction(40)))
        assert m.trace.total_seconds == 5
