"""Component tests: containers and functional units."""

from fractions import Fraction

import pytest

from repro.machine.components import (
    Container,
    Heater,
    Mixer,
    Reservoir,
    Sensor,
    Separator,
)
from repro.machine.errors import CapacityError, ComponentError, EmptyError
from repro.machine.fluids import Mixture
from repro.machine.separation import FractionalYield


class TestContainer:
    def test_deposit_and_draw(self):
        container = Container("c", Fraction(100))
        container.deposit(Mixture.pure("a", 40))
        taken = container.draw(10)
        assert taken.volume == 10
        assert container.volume == 30
        assert container.free == 70

    def test_overflow_raises(self):
        container = Container("c", Fraction(100))
        container.deposit(Mixture.pure("a", 90))
        with pytest.raises(CapacityError) as info:
            container.deposit(Mixture.pure("a", 20))
        assert info.value.component == "c"

    def test_overdraw_raises(self):
        container = Container("c", Fraction(100))
        container.deposit(Mixture.pure("a", 5))
        with pytest.raises(EmptyError):
            container.draw(6)

    def test_drain(self):
        container = Container("c", Fraction(100))
        container.deposit(Mixture.pure("a", 5))
        drained = container.drain()
        assert drained.volume == 5
        assert container.is_empty

    def test_discard(self):
        container = Container("c", Fraction(100))
        container.deposit(Mixture.pure("a", 5))
        assert container.discard() == 5
        assert container.is_empty

    def test_empty_deposit_noop(self):
        container = Container("c", Fraction(100))
        container.deposit(Mixture.empty())
        assert container.is_empty


class TestMixer:
    def test_mix_counts(self):
        mixer = Mixer("mixer1", Fraction(100))
        mixer.deposit(Mixture.pure("a", 10))
        mixer.mix(10)
        mixer.mix(5)
        assert mixer.mix_count == 2
        assert mixer.total_mix_time == 15

    def test_mix_empty_rejected(self):
        with pytest.raises(ComponentError):
            Mixer("mixer1", Fraction(100)).mix(10)

    def test_mix_nonpositive_duration_rejected(self):
        mixer = Mixer("mixer1", Fraction(100))
        mixer.deposit(Mixture.pure("a", 10))
        with pytest.raises(ComponentError):
            mixer.mix(0)


class TestHeater:
    def test_incubate_records_log(self):
        heater = Heater("heater1", Fraction(100))
        heater.deposit(Mixture.pure("a", 10))
        heater.incubate(37, 300)
        assert heater.temperature == 37
        assert heater.incubation_log == [(37, 300)]
        assert heater.volume == 10  # flow conserving

    def test_concentrate_reduces_volume(self):
        heater = Heater("heater1", Fraction(100))
        heater.deposit(Mixture.pure("a", 40))
        lost = heater.concentrate(90, 60, Fraction(1, 4))
        assert heater.volume == 10
        assert lost == 30

    def test_concentrate_bad_fraction(self):
        heater = Heater("heater1", Fraction(100))
        heater.deposit(Mixture.pure("a", 40))
        with pytest.raises(ComponentError):
            heater.concentrate(90, 60, Fraction(3, 2))

    def test_incubate_empty_rejected(self):
        with pytest.raises(ComponentError):
            Heater("heater1", Fraction(100)).incubate(37, 10)


class TestSeparator:
    def make(self, fraction=Fraction(3, 10)):
        return Separator(
            "separator1",
            Fraction(100),
            modes=("AF",),
            model=FractionalYield(fraction),
        )

    def test_separate_splits_to_outlets(self):
        separator = self.make()
        separator.deposit(Mixture.pure("sample", 50))
        effluent, waste = separator.separate("AF", 30)
        assert effluent == 15
        assert waste == 35
        assert separator.out1.volume == 15
        assert separator.out2.volume == 35
        assert separator.is_empty

    def test_mode_check(self):
        separator = self.make()
        separator.deposit(Mixture.pure("sample", 50))
        with pytest.raises(ComponentError):
            separator.separate("LC", 30)

    def test_pusher_and_matrix_consumed(self):
        separator = self.make()
        separator.pusher.deposit(Mixture.pure("buffer", 20))
        separator.matrix.deposit(Mixture.pure("lectin", 30))
        separator.deposit(Mixture.pure("sample", 50))
        separator.separate("AF", 30)
        assert separator.pusher.is_empty
        assert separator.matrix.is_empty

    def test_sub_ports(self):
        separator = self.make()
        assert separator.sub("matrix") is separator.matrix
        assert separator.sub("out2") is separator.out2
        with pytest.raises(ComponentError):
            separator.sub("bogus")

    def test_empty_separation_rejected(self):
        with pytest.raises(ComponentError):
            self.make().separate("AF", 30)


class TestSensor:
    def test_reading_uses_coefficients(self):
        sensor = Sensor(
            "sensor2",
            Fraction(100),
            senses=("OD",),
            coefficients={"Glucose": Fraction(2)},
        )
        sensor.deposit(
            Mixture({"Glucose": Fraction(10), "Reagent": Fraction(30)})
        )
        reading = sensor.read("OD")
        assert reading == Fraction(1, 2)  # 2 * (10/40)
        assert sensor.readings == [reading]

    def test_reading_non_destructive(self):
        sensor = Sensor("sensor2", Fraction(100), coefficients={})
        sensor.deposit(Mixture.pure("a", 10))
        sensor.read("OD")
        assert sensor.volume == 10

    def test_mode_check(self):
        sensor = Sensor("sensor2", Fraction(100), senses=("OD",))
        sensor.deposit(Mixture.pure("a", 10))
        with pytest.raises(ComponentError):
            sensor.read("FL")

    def test_empty_read_rejected(self):
        with pytest.raises(ComponentError):
            Sensor("sensor2", Fraction(100)).read("OD")
