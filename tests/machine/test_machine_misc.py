"""Smaller machine behaviours: port bookkeeping, traces, hinted yields."""

from fractions import Fraction

import pytest

from repro.ir.instructions import input_, move, separate, sense
from repro.machine.errors import UnknownOperandError
from repro.machine.interpreter import Machine
from repro.machine.separation import FractionalYield
from repro.machine.spec import AQUACORE_SPEC


class TestPorts:
    def test_bind_ports_bulk(self):
        machine = Machine(AQUACORE_SPEC)
        machine.bind_ports({"ip1": "a", "ip2": "b"})
        assert machine.ports["ip1"].species == "a"
        assert machine.ports["ip2"].species == "b"

    def test_bad_port_name(self):
        machine = Machine(AQUACORE_SPEC)
        with pytest.raises(UnknownOperandError):
            machine.bind_port("zz9", "a")

    def test_unknown_component(self):
        machine = Machine(AQUACORE_SPEC)
        with pytest.raises(UnknownOperandError):
            machine.component("frobnicator7")

    def test_subport_on_non_separator(self):
        machine = Machine(AQUACORE_SPEC)
        with pytest.raises(UnknownOperandError):
            machine.component("mixer1.out1")


class TestHintedYields:
    def run_separation(self, machine, hint=None):
        machine.bind_port("ip1", "feed")
        machine.execute(input_("s1", "ip1", abs_volume=Fraction(40)))
        machine.execute(move("separator1", "s1"))
        meta = {} if hint is None else {"yield_fraction": hint}
        instruction = separate("separator1", "AF", 30, meta=meta)
        return machine.execute(instruction)

    def test_hint_honoured_without_user_model(self):
        machine = Machine(AQUACORE_SPEC)
        effluent = self.run_separation(machine, hint=Fraction(1, 4))
        assert effluent == 10  # 40 * 1/4

    def test_user_model_wins_over_hint(self):
        machine = Machine(
            AQUACORE_SPEC,
            separation_models={"separator1": FractionalYield(Fraction(3, 4))},
        )
        effluent = self.run_separation(machine, hint=Fraction(1, 4))
        assert effluent == 30  # the installed chemistry, not the hint

    def test_default_model_without_hint(self):
        machine = Machine(AQUACORE_SPEC)
        effluent = self.run_separation(machine)
        assert effluent == 20  # FractionalYield(1/2) default

    def test_hint_does_not_stick(self):
        """The model swap is scoped to the hinted instruction."""
        machine = Machine(AQUACORE_SPEC)
        self.run_separation(machine, hint=Fraction(1, 4))
        separator = machine.component("separator1")
        from repro.machine.separation import FractionalYield as FY

        assert isinstance(separator.model, FY)
        assert separator.model.fraction == Fraction(1, 2)


class TestTraceRendering:
    def test_render_limit(self):
        machine = Machine(AQUACORE_SPEC)
        machine.bind_port("ip1", "a")
        for __ in range(5):
            machine.execute(input_("s1", "ip1", abs_volume=Fraction(1)))
        text = machine.trace.render(limit=2)
        assert "(3 more)" in text

    def test_measurements_map(self):
        machine = Machine(AQUACORE_SPEC)
        machine.bind_port("ip1", "feed")
        machine.execute(input_("s1", "ip1", abs_volume=Fraction(40)))
        machine.execute(move("separator1", "s1"))
        machine.execute(separate("separator1", "AF", 30), index=2)
        assert machine.trace.measurements()[2] == 20
