"""Separation-model tests."""

from fractions import Fraction

import pytest

from repro.machine.fluids import Mixture
from repro.machine.separation import FractionalYield, SpeciesFilter


class TestFractionalYield:
    def test_splits_by_fraction(self):
        model = FractionalYield(Fraction(1, 4))
        effluent, waste = model.separate(Mixture.pure("a", 40))
        assert effluent.volume == 10
        assert waste.volume == 30

    def test_composition_unchanged(self):
        model = FractionalYield(Fraction(1, 2))
        feed = Mixture({"a": Fraction(10), "b": Fraction(30)})
        effluent, __ = model.separate(feed)
        assert effluent.concentration("a") == Fraction(1, 4)

    def test_extremes(self):
        keep_all = FractionalYield(Fraction(1))
        effluent, waste = keep_all.separate(Mixture.pure("a", 5))
        assert effluent.volume == 5 and waste.volume == 0

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            FractionalYield(Fraction(3, 2))


class TestSpeciesFilter:
    def test_keeps_listed_species(self):
        model = SpeciesFilter(["glycan"], recovery=1)
        feed = Mixture({"glycan": Fraction(10), "protein": Fraction(30)})
        effluent, waste = model.separate(feed)
        assert effluent.species() == ("glycan",)
        assert waste.species() == ("protein",)

    def test_recovery_rate(self):
        model = SpeciesFilter(["glycan"], recovery=Fraction(9, 10))
        feed = Mixture.pure("glycan", 10)
        effluent, waste = model.separate(feed)
        assert effluent.volume == 9
        assert waste.volume == 1

    def test_volume_conserved(self):
        model = SpeciesFilter(["a", "b"], recovery=Fraction(7, 11))
        feed = Mixture({"a": Fraction(3), "b": Fraction(5), "c": Fraction(9)})
        effluent, waste = model.separate(feed)
        assert effluent.volume + waste.volume == feed.volume

    def test_invalid_recovery_rejected(self):
        with pytest.raises(ValueError):
            SpeciesFilter(["a"], recovery=2)
