"""Metering-pump tests: the least count lives here."""

from fractions import Fraction

import pytest

from repro.core.limits import PAPER_LIMITS
from repro.machine.errors import MeteringError
from repro.machine.metering import MeteringPump


class TestMeter:
    def test_exact_multiple_passes(self):
        pump = MeteringPump(PAPER_LIMITS)
        assert pump.meter(Fraction(5, 10)) == Fraction(5, 10)

    def test_below_least_count_rejected(self):
        pump = MeteringPump(PAPER_LIMITS)
        with pytest.raises(MeteringError) as info:
            pump.meter(Fraction(5, 100))
        assert info.value.least_count == PAPER_LIMITS.least_count

    def test_non_multiple_quantised_by_default(self):
        pump = MeteringPump(PAPER_LIMITS)
        assert pump.meter(Fraction(123, 1000)) == Fraction(1, 10)

    def test_strict_rejects_non_multiples(self):
        pump = MeteringPump(PAPER_LIMITS, strict=True)
        with pytest.raises(MeteringError):
            pump.meter(Fraction(123, 1000))

    def test_strict_accepts_multiples(self):
        pump = MeteringPump(PAPER_LIMITS, strict=True)
        assert pump.meter(Fraction(3, 10)) == Fraction(3, 10)


class TestStatistics:
    def test_record_accumulates(self):
        pump = MeteringPump(PAPER_LIMITS)
        pump.record(Fraction(10))
        pump.record(Fraction(5))
        assert pump.total_pumped == 15
        assert pump.transfer_count == 2
