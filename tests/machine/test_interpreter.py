"""AIS interpreter tests."""

from fractions import Fraction

import pytest

from repro.ir.instructions import (
    dry_add,
    dry_mov,
    dry_mul,
    dry_sub,
    incubate,
    input_,
    mix,
    move,
    move_abs,
    output,
    sense,
    separate,
)
from repro.machine.errors import (
    EmptyError,
    MeteringError,
    UnknownOperandError,
)
from repro.machine.interpreter import Machine
from repro.machine.separation import FractionalYield
from repro.machine.spec import AQUACORE_SPEC
import dataclasses


@pytest.fixture
def machine():
    spec = dataclasses.replace(
        AQUACORE_SPEC,
        extinction_coefficients={"Glucose": Fraction(2)},
    )
    m = Machine(spec)
    m.bind_port("ip1", "Glucose")
    m.bind_port("ip2", "Reagent")
    return m


def run(machine, instructions):
    for index, instruction in enumerate(instructions):
        machine.execute(instruction, index=index)


class TestInputOutput:
    def test_input_with_volume(self, machine):
        machine.execute(input_("s1", "ip1", abs_volume=Fraction(40)))
        assert machine.component("s1").volume == 40
        assert machine.ports["ip1"].drawn == 40

    def test_input_without_volume_fills_reservoir(self, machine):
        machine.execute(input_("s1", "ip1"))
        assert machine.component("s1").volume == 100

    def test_unbound_port_rejected(self, machine):
        with pytest.raises(UnknownOperandError):
            machine.execute(input_("s1", "ip9"))

    def test_finite_supply_exhausts(self, machine):
        machine.bind_port("ip3", "Rare", supply=30)
        machine.execute(input_("s1", "ip3", abs_volume=Fraction(20)))
        with pytest.raises(EmptyError):
            machine.execute(input_("s2", "ip3", abs_volume=Fraction(20)))

    def test_output_tallies(self, machine):
        run(
            machine,
            [
                input_("s1", "ip1", abs_volume=Fraction(40)),
                output("op1", "s1"),
            ],
        )
        assert machine.output_tally["op1"] == 40
        assert machine.component("s1").is_empty


class TestMove:
    def test_metered_move(self, machine):
        run(
            machine,
            [
                input_("s1", "ip1", abs_volume=Fraction(40)),
                move_abs("mixer1", "s1", Fraction(15)),
            ],
        )
        assert machine.component("mixer1").volume == 15
        assert machine.component("s1").volume == 25

    def test_drain_move(self, machine):
        run(
            machine,
            [
                input_("s1", "ip1", abs_volume=Fraction(40)),
                move("mixer1", "s1"),
            ],
        )
        assert machine.component("s1").is_empty
        assert machine.component("mixer1").volume == 40

    def test_drain_from_empty_raises(self, machine):
        with pytest.raises(EmptyError):
            machine.execute(move("mixer1", "s1"))

    def test_sub_least_count_move_rejected(self, machine):
        machine.execute(input_("s1", "ip1", abs_volume=Fraction(40)))
        with pytest.raises(MeteringError):
            machine.execute(move_abs("mixer1", "s1", Fraction(1, 100)))

    def test_resolver_supplies_volume(self, machine):
        machine.execute(input_("s1", "ip1", abs_volume=Fraction(40)))
        instruction = move("mixer1", "s1", 1, edge=("Glucose", "a"))
        machine.execute(
            instruction, resolver=lambda i: Fraction(12) if i.edge else None
        )
        assert machine.component("mixer1").volume == 12

    def test_sensor_flushes_on_deposit(self, machine):
        run(
            machine,
            [
                input_("s1", "ip1", abs_volume=Fraction(40)),
                move_abs("sensor2", "s1", Fraction(10)),
                move_abs("sensor2", "s1", Fraction(10)),
            ],
        )
        assert machine.component("sensor2").volume == 10  # flushed, not 20


class TestWetOperations:
    def test_mix_and_sense(self, machine):
        run(
            machine,
            [
                input_("s1", "ip1", abs_volume=Fraction(40)),
                input_("s2", "ip2", abs_volume=Fraction(40)),
                move_abs("mixer1", "s1", Fraction(10)),
                move_abs("mixer1", "s2", Fraction(30)),
                mix("mixer1", 10),
                move("sensor2", "mixer1"),
            ],
        )
        reading = machine.execute(sense("sensor2", "OD", "Result[1]"))
        assert reading == Fraction(1, 2)  # 2 * 10/40
        assert machine.results["Result[1]"] == Fraction(1, 2)

    def test_incubate(self, machine):
        run(
            machine,
            [
                input_("s1", "ip1", abs_volume=Fraction(20)),
                move("heater1", "s1"),
                incubate("heater1", 37, 300),
            ],
        )
        heater = machine.component("heater1")
        assert heater.temperature == 37
        assert heater.volume == 20

    def test_separate_reports_measurement(self, machine):
        m = Machine(
            AQUACORE_SPEC,
            separation_models={"separator1": FractionalYield(Fraction(3, 10))},
        )
        m.bind_port("ip1", "sample")
        run(
            m,
            [
                input_("s1", "ip1", abs_volume=Fraction(50)),
                move("separator1", "s1"),
            ],
        )
        measurement = m.execute(separate("separator1", "AF", 30))
        assert measurement == 15
        assert m.component("separator1.out1").volume == 15
        assert m.component("separator1.out2").volume == 35

    def test_wrong_unit_kind_rejected(self, machine):
        machine.execute(input_("s1", "ip1", abs_volume=Fraction(20)))
        machine.execute(move("heater1", "s1"))
        from repro.machine.errors import ComponentError

        with pytest.raises(ComponentError):
            machine.execute(mix("heater1", 10))


class TestDryOps:
    def test_register_arithmetic(self, machine):
        run(
            machine,
            [
                dry_mov("temp", 1),
                dry_mul("temp", 10),
                dry_sub("temp", 1),
                dry_mov("r0", "temp"),
                dry_add("r0", 5),
            ],
        )
        assert machine.registers["temp"] == 9
        assert machine.registers["r0"] == 14

    def test_dry_ops_not_counted_wet(self, machine):
        machine.execute(dry_mov("r0", 1))
        assert machine.trace.dry_instruction_count == 1
        assert machine.trace.wet_instruction_count == 0


class TestConservation:
    def test_on_chip_volume_tracks_inputs_minus_outputs(self, machine):
        run(
            machine,
            [
                input_("s1", "ip1", abs_volume=Fraction(60)),
                input_("s2", "ip2", abs_volume=Fraction(40)),
                move_abs("mixer1", "s1", Fraction(30)),
                move_abs("mixer1", "s2", Fraction(10)),
                mix("mixer1", 10),
                output("op1", "mixer1"),
            ],
        )
        total_in = Fraction(100)
        total_out = machine.output_tally["op1"]
        assert machine.total_onchip_volume() == total_in - total_out

    def test_trace_counts(self, machine):
        run(
            machine,
            [
                input_("s1", "ip1", abs_volume=Fraction(60)),
                move_abs("mixer1", "s1", Fraction(30)),
                mix("mixer1", 10),
            ],
        )
        assert machine.trace.wet_instruction_count == 3
        assert len(machine.trace) == 3
        assert "mix mixer1, 10" in machine.trace.render()
