"""The deterministic fault model: plans, rolls, and injector hooks."""

from fractions import Fraction

import pytest

from repro.machine.faults import (
    ALL_KINDS,
    LOSS_KINDS,
    PERTURBING_KINDS,
    FaultInjector,
    FaultKind,
    FaultPlan,
    ScheduledFault,
    parse_kinds,
)
from repro.machine.trace import ExecutionTrace

LEAST = Fraction(1, 10)


def installed(plan: FaultPlan) -> FaultInjector:
    injector = FaultInjector(plan)
    injector.install(ExecutionTrace(), LEAST)
    return injector


class TestTaxonomy:
    def test_partition(self):
        assert LOSS_KINDS | PERTURBING_KINDS == ALL_KINDS
        assert not LOSS_KINDS & PERTURBING_KINDS

    def test_parse_kinds(self):
        assert parse_kinds(["metering-drift", " sensor-misread "]) == frozenset(
            {FaultKind.METERING_DRIFT, FaultKind.SENSOR_MISREAD}
        )
        assert parse_kinds(["", "  "]) == frozenset()
        with pytest.raises(ValueError, match="unknown fault kind"):
            parse_kinds(["gremlins"])


class TestPlanDeterminism:
    def test_same_seed_same_rolls(self):
        a = FaultPlan.seeded(42, 0.3)
        b = FaultPlan.seeded(42, 0.3)
        rolls_a = [
            a.roll(kind, index, occ)
            for kind in sorted(ALL_KINDS, key=lambda k: k.value)
            for index in range(40)
            for occ in (1, 2)
        ]
        rolls_b = [
            b.roll(kind, index, occ)
            for kind in sorted(ALL_KINDS, key=lambda k: k.value)
            for index in range(40)
            for occ in (1, 2)
        ]
        assert rolls_a == rolls_b
        assert any(r is not None for r in rolls_a)

    def test_different_seeds_differ(self):
        a = FaultPlan.seeded(1, 0.3)
        b = FaultPlan.seeded(2, 0.3)
        rolls = lambda p: [  # noqa: E731
            p.roll(FaultKind.METERING_DRIFT, i, 1) for i in range(60)
        ]
        assert rolls(a) != rolls(b)

    def test_zero_rate_never_fires(self):
        plan = FaultPlan.none()
        for kind in ALL_KINDS:
            for index in range(50):
                assert plan.roll(kind, index, 1) is None

    def test_rate_one_always_fires_enabled_kinds(self):
        plan = FaultPlan.seeded(
            7, 1.0, kinds={FaultKind.TRANSPORT_FAILURE}
        )
        assert plan.roll(FaultKind.TRANSPORT_FAILURE, 3, 1) is not None
        # disabled kinds stay quiet even at rate 1
        assert plan.roll(FaultKind.METERING_DRIFT, 3, 1) is None

    def test_magnitude_ranges(self):
        plan = FaultPlan.seeded(11, 1.0)
        for index in range(30):
            drift = plan.roll(FaultKind.METERING_DRIFT, index, 1)
            assert drift.magnitude in (Fraction(-1), Fraction(1))
            short = plan.roll(FaultKind.DISPENSE_SHORTFALL, index, 1)
            assert 1 <= short.magnitude <= plan.max_shortfall_counts
            misread = plan.roll(FaultKind.SENSOR_MISREAD, index, 1)
            assert abs(misread.magnitude) == plan.misread_relative

    def test_explicit_schedule_overrides_rate(self):
        plan = FaultPlan(
            schedule=(
                ScheduledFault(5, FaultKind.TRANSPORT_FAILURE, occurrence=2),
            )
        )
        assert plan.rate == 0.0
        assert plan.roll(FaultKind.TRANSPORT_FAILURE, 5, 1) is None
        assert plan.roll(FaultKind.TRANSPORT_FAILURE, 5, 2) is not None
        assert plan.roll(FaultKind.TRANSPORT_FAILURE, 6, 2) is None


class TestInjectorHooks:
    def test_occurrence_counting(self):
        injector = installed(FaultPlan.none())
        injector.begin(3)
        injector.begin(3)
        injector.begin(4)
        injector.begin(3)
        assert injector._attempts == {3: 3, 4: 1}

    def test_zero_fault_injector_is_a_no_op(self):
        injector = installed(FaultPlan.none())
        injector.begin(0)
        assert not injector.transport_blocked("s1")
        assert not injector.depleted("s1")
        volume = Fraction(5)
        assert injector.metering_drift(volume) == volume
        assert injector.dispense_shortfall(volume) == volume
        assert injector.misread(Fraction(3, 2), "sensor1") == Fraction(3, 2)
        assert injector.injected == {}
        assert injector.trace.faults == []

    def scheduled(self, kind, index=0, occurrence=1, magnitude=None):
        return installed(
            FaultPlan(
                schedule=(
                    ScheduledFault(index, kind, occurrence, magnitude),
                )
            )
        )

    def test_metering_drift_applies_and_records(self):
        injector = self.scheduled(
            FaultKind.METERING_DRIFT, magnitude=Fraction(1)
        )
        injector.begin(0)
        assert injector.metering_drift(Fraction(5)) == Fraction(5) + LEAST
        assert injector.injected == {"metering-drift": 1}
        [event] = injector.trace.faults
        assert event.kind == "metering-drift"
        assert event.magnitude == LEAST

    def test_metering_drift_clamps_to_headroom(self):
        injector = self.scheduled(
            FaultKind.METERING_DRIFT, magnitude=Fraction(1)
        )
        injector.begin(0)
        # no headroom for +1 count: the drift clamps into a no-op and
        # records nothing (nothing observable happened)
        volume = Fraction(5)
        assert injector.metering_drift(volume, headroom=volume) == volume
        assert injector.injected == {}

    def test_metering_drift_floor_is_least_count(self):
        injector = self.scheduled(
            FaultKind.METERING_DRIFT, magnitude=Fraction(-1)
        )
        injector.begin(0)
        assert injector.metering_drift(LEAST) == LEAST  # clamped no-op
        assert injector.injected == {}

    def test_dispense_shortfall(self):
        injector = self.scheduled(
            FaultKind.DISPENSE_SHORTFALL, magnitude=Fraction(2)
        )
        injector.begin(0)
        assert injector.dispense_shortfall(Fraction(5)) == Fraction(5) - 2 * LEAST
        assert injector.injected == {"dispense-shortfall": 1}

    def test_misread_is_relative(self):
        injector = self.scheduled(
            FaultKind.SENSOR_MISREAD, magnitude=Fraction(1, 20)
        )
        injector.begin(0)
        reading = Fraction(2)
        assert injector.misread(reading, "sensor1") == reading * Fraction(21, 20)
        [event] = injector.trace.faults
        assert event.location == "sensor1"

    def test_depletion_decision_and_record_are_separate(self):
        injector = self.scheduled(FaultKind.RESERVOIR_DEPLETION)
        injector.begin(0)
        assert injector.depleted("s2")
        assert injector.injected == {}  # decision alone records nothing
        injector.record_depletion("s2", Fraction(9))
        assert injector.injected == {"reservoir-depletion": 1}
        [event] = injector.trace.faults
        assert event.location == "s2"
        assert event.magnitude == Fraction(9)

    def test_transport_blocked_records(self):
        injector = self.scheduled(FaultKind.TRANSPORT_FAILURE)
        injector.begin(0)
        assert injector.transport_blocked("mixer1")
        assert injector.injected == {"transport-failure": 1}
