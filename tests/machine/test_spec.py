"""Machine-spec tests."""

from fractions import Fraction

import pytest

from repro.core.limits import HardwareLimits
from repro.machine.spec import (
    AQUACORE_SPEC,
    AQUACORE_XL_SPEC,
    FunctionalUnitSpec,
    MachineSpec,
)


class TestAquacoreSpec:
    def test_paper_units_present(self):
        names = {u.name for u in AQUACORE_SPEC.functional_units}
        assert {"mixer1", "heater1", "separator1", "separator2", "sensor2"} <= names

    def test_mode_routing(self):
        assert AQUACORE_SPEC.separator_for_mode("AF").name == "separator1"
        assert AQUACORE_SPEC.separator_for_mode("LC").name == "separator2"
        assert AQUACORE_SPEC.sensor_for_mode("OD").name == "sensor2"
        assert AQUACORE_SPEC.sensor_for_mode("FL").name == "sensor1"

    def test_unknown_mode_raises(self):
        with pytest.raises(KeyError):
            AQUACORE_SPEC.separator_for_mode("XYZ")

    def test_naming_schemes(self):
        assert AQUACORE_SPEC.reservoir_names()[0] == "s1"
        assert AQUACORE_SPEC.input_port_names()[0] == "ip1"
        assert AQUACORE_SPEC.output_port_names()[-1].startswith("op")

    def test_xl_is_larger(self):
        assert AQUACORE_XL_SPEC.n_reservoirs > AQUACORE_SPEC.n_reservoirs


class TestValidation:
    def test_duplicate_unit_names_rejected(self):
        with pytest.raises(ValueError):
            MachineSpec(
                name="bad",
                limits=AQUACORE_SPEC.limits,
                n_reservoirs=4,
                n_input_ports=4,
                n_output_ports=1,
                functional_units=(
                    FunctionalUnitSpec("mixer1", "mixer"),
                    FunctionalUnitSpec("mixer1", "mixer"),
                ),
            )

    def test_unknown_unit_kind_rejected(self):
        with pytest.raises(ValueError):
            FunctionalUnitSpec("frobnicator1", "frobnicator")

    def test_zero_reservoirs_rejected(self):
        with pytest.raises(ValueError):
            MachineSpec(
                name="bad",
                limits=AQUACORE_SPEC.limits,
                n_reservoirs=0,
                n_input_ports=1,
                n_output_ports=1,
                functional_units=(),
            )


class TestDerived:
    def test_capacity_defaults_to_machine_limit(self):
        unit = AQUACORE_SPEC.unit("mixer1")
        assert AQUACORE_SPEC.capacity_of(unit) == AQUACORE_SPEC.limits.max_capacity

    def test_capacity_override(self):
        unit = FunctionalUnitSpec("mixer9", "mixer", capacity=Fraction(42))
        assert AQUACORE_SPEC.capacity_of(unit) == 42

    def test_with_limits(self):
        coarse = HardwareLimits(max_capacity=10, least_count=1)
        spec = AQUACORE_SPEC.with_limits(coarse)
        assert spec.limits is coarse
        assert spec.n_reservoirs == AQUACORE_SPEC.n_reservoirs
