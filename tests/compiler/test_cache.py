"""The content-addressed plan cache: LRU, disk level, namespaces."""

import threading

import pytest

from repro.assays import enzyme, glycomics, paper_example
from repro.compiler.cache import PlanCache, entry_from_plan, plan_from_entry
from repro.compiler.pipeline import compile_dag, static_fingerprint
from repro.core.hierarchy import VolumeManager
from repro.core.limits import PAPER_LIMITS
from repro.core.rounding import round_assignment
from repro.core.serde import dumps_canonical
from repro.machine.spec import AQUACORE_SPEC


def planned(dag):
    plan = VolumeManager(PAPER_LIMITS).plan(dag)
    rounded = round_assignment(plan.assignment)
    return plan, rounded


class TestStore:
    def test_lru_eviction(self):
        cache = PlanCache(max_entries=2)
        cache.put("plan-a", {"v": 1})
        cache.put("plan-b", {"v": 2})
        cache.put("plan-c", {"v": 3})
        assert len(cache) == 2
        assert cache.get("plan-a") is None
        assert cache.get("plan-c") == {"v": 3}
        assert cache.stats.evictions == 1

    def test_lru_order_updated_on_get(self):
        cache = PlanCache(max_entries=2)
        cache.put("plan-a", {"v": 1})
        cache.put("plan-b", {"v": 2})
        cache.get("plan-a")             # a becomes most recent
        cache.put("plan-c", {"v": 3})   # evicts b
        assert cache.get("plan-a") == {"v": 1}
        assert cache.get("plan-b") is None

    def test_disk_persistence_across_instances(self, tmp_path):
        directory = str(tmp_path / "cache")
        PlanCache(directory=directory).put("plan-x", {"v": 42})
        fresh = PlanCache(directory=directory)
        assert fresh.get("plan-x") == {"v": 42}
        assert fresh.stats.disk_hits == 1

    def test_disk_survives_memory_clear(self, tmp_path):
        cache = PlanCache(directory=str(tmp_path))
        cache.put("plan-x", {"v": 1})
        cache.clear_memory()
        assert len(cache) == 0
        assert cache.get("plan-x") == {"v": 1}

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = PlanCache(directory=str(tmp_path))
        (tmp_path / "plan-bad.json").write_text("{not json")
        assert cache.get("plan-bad") is None
        assert cache.stats.misses == 1

    def test_contains_does_not_touch_stats(self, tmp_path):
        cache = PlanCache(directory=str(tmp_path))
        cache.put("plan-x", {"v": 1})
        assert cache.contains("plan-x")
        assert not cache.contains("plan-y")
        assert cache.stats.hits == 0
        assert cache.stats.misses == 0

    def test_stats_by_namespace(self):
        cache = PlanCache()
        cache.put("plan-a", {})
        cache.get("plan-a")
        cache.get("vnorms-zzz")
        stats = cache.stats.to_dict()
        assert stats["by_namespace"]["plan"] == {"hits": 1, "misses": 0}
        assert stats["by_namespace"]["vnorms"] == {"hits": 0, "misses": 1}


class TestPlanNamespace:
    def test_round_trip(self):
        dag = paper_example.build_dag()
        plan, rounded = planned(dag)
        cache = PlanCache()
        assert cache.put_plan("f" * 64, plan, rounded)
        restored_plan, restored_rounded = cache.get_plan("f" * 64)
        assert restored_plan.status == plan.status
        assert restored_plan.assignment.node_volume == (
            plan.assignment.node_volume
        )
        assert restored_rounded.node_volume == rounded.node_volume
        assert restored_rounded.dag is restored_plan.dag

    def test_uncacheable_plan_reports_false(self):
        dag = paper_example.build_dag()
        dag.node("A").meta["guard"] = object()   # not serializable
        plan, rounded = planned(dag)
        cache = PlanCache()
        assert not cache.put_plan("f" * 64, plan, rounded)
        assert cache.stats.uncacheable == 1
        assert cache.get_plan("f" * 64) is None

    def test_entry_bytes_stable(self):
        """The same plan serializes to the same canonical bytes twice."""
        dag = enzyme.build_dag()
        plan, rounded = planned(dag)
        a = dumps_canonical(entry_from_plan(plan, rounded))
        b = dumps_canonical(entry_from_plan(*plan_from_entry(
            entry_from_plan(plan, rounded)
        )))
        assert a == b


class TestPipelineIntegration:
    def test_warm_compile_listing_identical(self):
        cache = PlanCache()
        dag = paper_example.build_dag()
        cold = compile_dag(dag, cache=cache)
        warm = compile_dag(paper_example.build_dag(), cache=cache)
        assert warm.listing() == cold.listing()
        assert any(
            d.code == "plan-cache" for d in warm.diagnostics.items
        )
        assert not any(
            d.code == "plan-cache" for d in cold.diagnostics.items
        )

    def test_warm_plan_volumes_exact(self):
        cache = PlanCache()
        dag = enzyme.build_dag()
        cold = compile_dag(dag, cache=cache)
        warm = compile_dag(enzyme.build_dag(), cache=cache)
        assert warm.plan.assignment.node_volume == (
            cold.plan.assignment.node_volume
        )
        assert warm.assignment.node_volume == cold.assignment.node_volume

    def test_cached_plan_certifies(self):
        from repro.analysis.certify import certify

        cache = PlanCache()
        compile_dag(enzyme.build_dag(), cache=cache)
        warm = compile_dag(enzyme.build_dag(), cache=cache)
        report = certify(warm)
        assert report.counts["error"] == 0, report.render_text()
        assert report.counts["warning"] == 0, report.render_text()

    def test_option_delta_misses(self):
        cache = PlanCache()
        dag = paper_example.build_dag()
        compile_dag(dag, cache=cache)
        manager = VolumeManager(PAPER_LIMITS, use_lp=False)
        recompiled = compile_dag(
            paper_example.build_dag(), manager=manager, cache=cache
        )
        assert not any(
            d.code == "plan-cache" for d in recompiled.diagnostics.items
        )

    def test_static_fingerprint_matches_manual(self):
        from repro.core.fingerprint import compile_fingerprint

        dag = paper_example.build_dag()
        manager = VolumeManager(PAPER_LIMITS)
        assert static_fingerprint(dag, AQUACORE_SPEC, manager) == (
            compile_fingerprint(
                dag, AQUACORE_SPEC.limits, AQUACORE_SPEC,
                manager.options_dict(),
            )
        )

    def test_runtime_partition_vnorms_memoized(self):
        cache = PlanCache()
        compile_dag(glycomics.build_dag(), cache=cache)
        misses = cache.stats.to_dict()["by_namespace"]["vnorms"]["misses"]
        compile_dag(glycomics.build_dag(), cache=cache)
        stats = cache.stats.to_dict()["by_namespace"]["vnorms"]
        assert misses > 0
        assert stats["hits"] >= misses      # second compile all served
        assert stats["misses"] == misses

    def test_disk_cache_serves_new_process_state(self, tmp_path):
        """A fresh PlanCache over the same directory restores the plan."""
        directory = str(tmp_path)
        cold = compile_dag(
            enzyme.build_dag(), cache=PlanCache(directory=directory)
        )
        fresh = PlanCache(directory=directory)
        warm = compile_dag(enzyme.build_dag(), cache=fresh)
        assert fresh.stats.disk_hits >= 1
        assert warm.listing() == cold.listing()


class TestVnormMemo:
    def test_memo_returns_equal_result(self):
        from repro.core.dagsolve import compute_vnorms

        cache = PlanCache()
        dag = paper_example.build_dag()
        memo = cache.memo_vnorms(dag)
        direct = compute_vnorms(dag)
        assert memo.node_vnorm == direct.node_vnorm

    def test_second_call_hits(self):
        cache = PlanCache()
        dag = paper_example.build_dag()
        first = cache.memo_vnorms(dag)
        second = cache.memo_vnorms(paper_example.build_dag())
        assert second is first      # live-object side table
        assert cache.stats.hits == 1


class TestTenantNamespaces:
    def test_tenant_keys_do_not_collide(self):
        cache = PlanCache()
        alice = cache.for_tenant("alice")
        bob = cache.for_tenant("bob")
        alice.put("plan-x", {"who": "alice"})
        bob.put("plan-x", {"who": "bob"})
        assert alice.get("plan-x") == {"who": "alice"}
        assert bob.get("plan-x") == {"who": "bob"}
        assert cache.get("plan-x") is None      # base namespace untouched

    def test_tenant_views_share_storage_and_stats(self):
        cache = PlanCache(max_entries=2)
        alice = cache.for_tenant("alice")
        bob = cache.for_tenant("bob")
        alice.put("plan-a", {"v": 1})
        bob.put("plan-b", {"v": 2})
        bob.put("plan-c", {"v": 3})     # evicts alice's LRU entry
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert alice.get("plan-a") is None

    def test_per_tenant_stats_are_disjoint(self):
        cache = PlanCache()
        alice = cache.for_tenant("alice")
        bob = cache.for_tenant("bob")
        alice.put("plan-a", {"v": 1})
        alice.get("plan-a")
        bob.get("plan-a")
        assert alice.tenant_stats.hits == 1
        assert alice.tenant_stats.misses == 0
        assert bob.tenant_stats.hits == 0
        assert bob.tenant_stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_tenant_disk_entries_namespaced(self, tmp_path):
        cache = PlanCache(directory=str(tmp_path))
        cache.for_tenant("alice").put("plan-x", {"v": 1})
        fresh = PlanCache(directory=str(tmp_path))
        assert fresh.for_tenant("alice").get("plan-x") == {"v": 1}
        assert fresh.for_tenant("bob").get("plan-x") is None
        assert fresh.get("plan-x") is None

    def test_bad_tenant_slug_rejected(self):
        cache = PlanCache()
        for bad in ("", "~oops", "a b", "x" * 65, "-lead"):
            with pytest.raises(ValueError):
                cache.for_tenant(bad)

    def test_nested_views_share_one_base(self):
        cache = PlanCache()
        alice = cache.for_tenant("alice")
        again = alice.for_tenant("alice")
        again.put("plan-x", {"v": 1})
        assert alice.get("plan-x") == {"v": 1}


class TestTTL:
    def test_memory_entry_expires(self):
        now = [0.0]
        cache = PlanCache(ttl_seconds=10, clock=lambda: now[0])
        cache.put("plan-x", {"v": 1})
        assert cache.get("plan-x") == {"v": 1}
        now[0] = 11.0
        assert cache.get("plan-x") is None
        assert cache.stats.expired == 1

    def test_put_refreshes_stamp(self):
        now = [0.0]
        cache = PlanCache(ttl_seconds=10, clock=lambda: now[0])
        cache.put("plan-x", {"v": 1})
        now[0] = 8.0
        cache.put("plan-x", {"v": 2})
        now[0] = 15.0                   # 7s after refresh, 15s after first
        assert cache.get("plan-x") == {"v": 2}

    def test_disk_entry_expires_and_unlinks(self, tmp_path):
        cache = PlanCache(directory=str(tmp_path), ttl_seconds=604800)
        cache.put("plan-x", {"v": 1})
        cache.clear_memory()
        path = tmp_path / "plan-x.json"
        assert path.exists()
        import os as os_module

        old = path.stat().st_mtime - 999999
        os_module.utime(path, (old, old))
        assert cache.get("plan-x") is None
        assert not path.exists()
        assert cache.stats.expired >= 1

    def test_contains_respects_ttl(self):
        now = [0.0]
        cache = PlanCache(ttl_seconds=5, clock=lambda: now[0])
        cache.put("plan-x", {"v": 1})
        assert cache.contains("plan-x")
        now[0] = 6.0
        assert not cache.contains("plan-x")

    def test_no_ttl_means_immortal(self):
        now = [0.0]
        cache = PlanCache(clock=lambda: now[0])
        cache.put("plan-x", {"v": 1})
        now[0] = 1e12
        assert cache.get("plan-x") == {"v": 1}


class TestConcurrency:
    def test_concurrent_mixed_mutation_is_safe(self, tmp_path):
        """Regression: stats/disk writes raced before the single lock."""
        cache = PlanCache(max_entries=64, directory=str(tmp_path))
        errors = []

        def hammer(tenant):
            try:
                view = cache.for_tenant(tenant)
                for i in range(200):
                    key = f"plan-{i % 40:02d}"
                    view.put(key, {"v": i})
                    view.get(key)
                    view.contains(key)
                    cache.stats.to_dict()
            except Exception as error:  # pragma: no cover - the regression
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(t,))
            for t in ("alice", "bob", "carol", "dave")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = cache.stats.to_dict()
        # every get was preceded by a put of the same key: no misses
        # beyond those injected by LRU eviction racing the get
        assert stats["puts"] == 4 * 200
        assert stats["hits"] + stats["misses"] == 4 * 200


class TestErrors:
    def test_bad_max_entries(self):
        with pytest.raises(ValueError):
            PlanCache(max_entries=0)

    def test_unwritable_directory_degrades(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("")      # a file where the dir should be
        cache = PlanCache(directory=str(blocker / "sub"))
        try:
            cache.put("plan-x", {"v": 1})
        except OSError:
            pytest.fail("disk failure must not raise")
        assert cache.get("plan-x") == {"v": 1}   # memory level still works
