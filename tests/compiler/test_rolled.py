"""Rolled (loop-preserving) codegen tests against Figure 11(b)'s shapes."""

import pytest

from repro.compiler.rolled import render_rolled_source
from repro.assays import enzyme, glucose, glycomics


class TestEnzymeFigure11b:
    @pytest.fixture(scope="class")
    def listing(self):
        return render_rolled_source(enzyme.SOURCE)

    def test_six_loops(self, listing):
        assert listing.loop_count == 6  # 3 dilution + 3 combination loops

    def test_loop_headers(self, listing):
        text = listing.render()
        assert "loop0: index i: 1->4" in text
        assert "loop5: index k: 1->4" in text

    def test_register_relative_volume(self, listing):
        """The paper's signature line: a move whose relative volume is a
        dry register updated by the loop body."""
        text = listing.render()
        assert "move mixer1, s3, inhi_dilu" in text
        assert "dry-mov inhi_dilu, " in text

    def test_indexed_reservoir_banks(self, listing):
        text = listing.render()
        assert "move s5(i), mixer1" in text
        assert "move mixer1, s5(i), 1" in text

    def test_dry_arithmetic_chain(self, listing):
        """temp = temp * 10 compiles through a temp register like
        Figure 11(b)'s dry-mov/dry-mul/dry-mov."""
        lines = listing.lines
        i = lines.index("dry-mov r0, temp")
        assert lines[i + 1] == "dry-mul r0, 10"
        assert lines[i + 2] == "dry-mov temp, r0"

    def test_sense_linearisation(self, listing):
        """RESULT[i][j][k] -> row-major dry arithmetic into a register."""
        text = listing.render()
        assert "dry-mul r6, 4" in text
        assert "dry-add r6, j" in text
        assert "sense.OD sensor2, RESULT(r6)" in text

    def test_wet_count_matches_unrolled(self, listing):
        """The rolled body executed 4 (or 4^3) times must perform exactly
        the wet work of the unrolled program (minus parks/discards, which
        only the executable generator schedules)."""
        # dilution loops: 3 loops x 4 iters x (2 moves + mix + park) = 48
        # combination loops: 64 x (3 moves + mix + heater move + incubate
        #                          + sensor move + sense) = 512
        # inputs: 4
        per_dilution_iter = 4
        per_combo_iter = 8
        expected = 4 + 3 * 4 * per_dilution_iter + 64 * per_combo_iter
        rolled_dynamic = (
            4  # inputs
            + 3 * 4 * per_dilution_iter
            + 64 * per_combo_iter
        )
        assert expected == rolled_dynamic  # sanity of the arithmetic
        # statically the rolled listing is tiny:
        assert listing.wet_instruction_count < 40

    def test_register_aliases_are_short(self, listing):
        """Long variable names get paper-style short register aliases."""
        text = listing.render()
        assert "inhibitor_diluent" not in text
        assert "inhi_dilu" in text


class TestOtherAssays:
    def test_glucose_straight_line(self):
        listing = render_rolled_source(glucose.SOURCE)
        assert listing.loop_count == 0
        text = listing.render()
        assert "move mixer1, s2, 8" in text
        assert "sense.OD sensor2, Result(5)" in text

    def test_glycomics_separators(self):
        listing = render_rolled_source(glycomics.SOURCE)
        text = listing.render()
        assert "separate.AF separator1, 30" in text
        assert "separate.LC separator2, 2400" in text
        assert "move separator1.matrix, " in text

    def test_while_and_if_render(self):
        source = """\
ASSAY w
START
fluid a, b;
VAR r;
MIX a AND b FOR 10;
SENSE OPTICAL it INTO r;
WHILE r < 3 HINT 5 START
MIX a AND b FOR 10;
ENDWHILE
IF r > 1 THEN
MIX a AND b FOR 20;
ELSE
MIX a AND b FOR 30;
ENDIF
END
"""
        listing = render_rolled_source(source)
        text = listing.render()
        assert "loop0: while r < 3" in text
        assert "if r > 1" in text
        assert "else" in text
        assert "endif" in text

    def test_compact_vs_unrolled_size(self):
        """The point of rolled output: the enzyme listing is an order of
        magnitude shorter than the unrolled program."""
        from repro.compiler import compile_assay

        rolled = render_rolled_source(enzyme.SOURCE)
        unrolled = compile_assay(enzyme.SOURCE)
        assert len(rolled.lines) * 5 < len(unrolled.program)
