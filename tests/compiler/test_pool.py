"""The persistent worker pool: reuse, byte-identity, graceful degradation."""

import os

from concurrent.futures.process import BrokenProcessPool

from repro.assays import generators, glucose, paper_example
from repro.compiler import pool as pool_module
from repro.compiler.batch import BatchJob, compile_many, default_workers
from repro.compiler.cache import PlanCache
from repro.compiler.pool import get_pool, pool_map, pool_stats, shutdown_pool


def fleet():
    return [
        BatchJob("fig2", source=paper_example.SOURCE),
        BatchJob("glucose", source=glucose.SOURCE),
        BatchJob("dilution", dag=generators.serial_dilution(5)),
    ]


class TestWarmReuse:
    def test_pool_survives_across_batches(self):
        shutdown_pool()
        before = pool_stats()
        compile_many(fleet(), cache=PlanCache(), max_workers=2)
        compile_many(fleet(), cache=PlanCache(), max_workers=2)
        after = pool_stats()
        assert after["created"] == before["created"] + 1
        assert after["reused"] >= before["reused"] + 1
        shutdown_pool()

    def test_shape_change_recreates(self):
        shutdown_pool()
        before = pool_stats()["created"]
        first = get_pool(2)
        assert get_pool(2) is first
        second = get_pool(3)
        assert second is not first
        assert pool_stats()["created"] == before + 2
        shutdown_pool()

    def test_opt_out_uses_fresh_executor(self):
        shutdown_pool()
        before = pool_stats()
        report = compile_many(
            fleet(), cache=PlanCache(), max_workers=2, persistent_pool=False
        )
        assert report.failed == 0
        assert pool_stats() == before

    def test_pooled_cache_entries_byte_identical(self, tmp_path):
        """Disk entries written through pool workers equal inline ones."""
        shutdown_pool()
        inline_dir = tmp_path / "inline"
        pooled_dir = tmp_path / "pooled"
        compile_many(
            fleet(), cache=PlanCache(directory=str(inline_dir)), max_workers=1
        )
        compile_many(
            fleet(), cache=PlanCache(directory=str(pooled_dir)), max_workers=2
        )
        shutdown_pool()

        def artifacts(directory):
            # workers may additionally persist vnorms memo entries that the
            # inline path keeps in memory; the compiled artifacts are the
            # byte-identity claim
            return sorted(
                name
                for name in os.listdir(directory)
                if name.startswith(("plan-", "src-"))
            )

        inline = artifacts(inline_dir)
        pooled = artifacts(pooled_dir)
        assert inline == pooled
        for name in inline:
            assert (inline_dir / name).read_bytes() == (
                pooled_dir / name
            ).read_bytes(), f"cache entry {name} differs"


class _BrokenExecutor:
    def map(self, fn, items):
        raise BrokenProcessPool("worker died")


class TestDegradation:
    def test_broken_pool_falls_back_inline(self, monkeypatch):
        shutdown_pool()
        monkeypatch.setattr(
            pool_module, "get_pool", lambda workers, cache_dir=None: (
                _BrokenExecutor()
            )
        )
        before = pool_stats()["broken"]
        assert pool_map(str, [1, 2, 3], max_workers=2) == ["1", "2", "3"]
        assert pool_stats()["broken"] == before + 1


class TestSubmit:
    def test_submit_counts_and_completes(self):
        shutdown_pool()
        before = pool_stats()
        future = pool_module.submit(str, 41, max_workers=2)
        assert future.result(timeout=120) == "41"
        after = pool_stats()
        assert after["submitted"] == before["submitted"] + 1
        assert after["completed"] == before["completed"] + 1
        assert after["inflight"] == 0
        shutdown_pool()

    def test_cancelled_future_counted(self):
        import threading
        import time

        shutdown_pool()
        before = pool_stats()["cancelled"]
        gate = threading.Event()
        # saturate the single worker so the second submit stays queued
        blocker = pool_module.submit(time.sleep, 5, max_workers=1)
        victim = pool_module.submit(str, 1, max_workers=1)
        cancelled = victim.cancel()
        gate.set()
        if cancelled:
            assert pool_stats()["cancelled"] == before + 1
        else:  # the worker grabbed it first: it must then complete
            assert victim.result(timeout=120) == "1"
        blocker.cancel()
        shutdown_pool(wait=False)

    def test_shutdown_from_event_loop_does_not_block(self):
        import asyncio
        import time

        shutdown_pool()
        get_pool(1)

        async def closer():
            start = time.monotonic()
            shutdown_pool()            # wait=None -> detects the loop
            return time.monotonic() - start

        elapsed = asyncio.run(closer())
        assert elapsed < 2.0
        assert pool_stats()["created"] >= 1

    def test_default_workers_safe_in_event_loop(self):
        import asyncio

        async def probe():
            return default_workers()

        assert asyncio.run(probe()) >= 1


class TestDefaultWorkers:
    def test_respects_affinity_mask(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1}, raising=False)
        assert default_workers() == 2

    def test_unreadable_mask_falls_back_to_cpu_count(self, monkeypatch):
        def boom(pid):
            raise OSError("mask unreadable")

        monkeypatch.setattr(os, "sched_getaffinity", boom, raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 3)
        assert default_workers() == 3

    def test_never_below_one(self, monkeypatch):
        def boom(pid):
            raise OSError

        monkeypatch.setattr(os, "sched_getaffinity", boom, raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert default_workers() == 1
