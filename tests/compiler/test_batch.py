"""The compile_many batch driver: dedupe, warm hits, fan-out, failures."""

import pytest

from repro.assays import generators, glucose, glycomics, paper_example
from repro.compiler.batch import BatchJob, BatchReport, compile_many
from repro.compiler.cache import PlanCache
from repro.compiler.pipeline import compile_assay


def source_jobs():
    return [
        BatchJob("fig2", source=paper_example.SOURCE),
        BatchJob("glucose", source=glucose.SOURCE),
    ]


class TestBatchJob:
    def test_requires_exactly_one_input(self):
        with pytest.raises(ValueError):
            BatchJob("both", source="x", dag=generators.serial_dilution(3))
        with pytest.raises(ValueError):
            BatchJob("neither")


class TestCold:
    def test_all_compiled(self):
        report = compile_many(source_jobs(), cache=PlanCache())
        assert report.compiled == 2
        assert report.failed == 0
        assert all(r.fingerprint for r in report.results)

    def test_duplicates_deduped(self):
        jobs = [
            BatchJob(f"ladder-{i}", dag=generators.serial_dilution(5))
            for i in range(4)
        ]
        report = compile_many(jobs, cache=PlanCache())
        assert report.compiled == 1
        assert report.deduped == 3
        fingerprints = {r.fingerprint for r in report.results}
        assert len(fingerprints) == 1

    def test_dedupe_across_byte_different_sources(self):
        """Byte-different sources building the same DAG share a compile."""
        jobs = [
            BatchJob("verbatim", source=paper_example.SOURCE),
            BatchJob("reformatted", source=paper_example.SOURCE + "\n\n"),
        ]
        report = compile_many(jobs, cache=PlanCache())
        assert {r.status for r in report.results} == {"compiled", "deduped"}

    def test_failures_isolated(self):
        jobs = source_jobs() + [BatchJob("bad", source="assay nope {")]
        report = compile_many(jobs, cache=PlanCache())
        assert report.failed == 1
        assert report.compiled == 2
        failed = next(r for r in report.results if r.status == "failed")
        assert failed.name == "bad"
        assert failed.detail

    def test_runtime_assays_compile_but_do_not_cache_a_plan(self):
        cache = PlanCache()
        jobs = [BatchJob("glycomics", source=glycomics.SOURCE)]
        cold = compile_many(jobs, cache=cache)
        warm = compile_many(jobs, cache=cache)
        assert cold.results[0].plan_status == "runtime"
        assert not cold.results[0].cacheable
        assert warm.results[0].status == "compiled"   # legitimately re-runs


class TestWarm:
    def test_second_run_all_hits(self):
        cache = PlanCache()
        compile_many(source_jobs(), cache=cache)
        warm = compile_many(source_jobs(), cache=cache)
        assert warm.hits == 2
        assert warm.compiled == 0

    def test_source_fast_path_skips_frontend(self, monkeypatch):
        cache = PlanCache()
        compile_many(source_jobs(), cache=cache)

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("frontend ran on a warm source job")

        monkeypatch.setattr("repro.compiler.passes.stages.parse", boom)
        warm = compile_many(source_jobs(), cache=cache)
        assert warm.hits == 2

    def test_materialized_hits_match_fresh_compiles(self):
        cache = PlanCache()
        compile_many(source_jobs(), cache=cache)
        warm = compile_many(
            source_jobs(), cache=cache, certify=True, lint=True
        )
        assert warm.hits == 2
        for result in warm.results:
            assert result.certified_clean is True
            assert result.errors == 0
        fresh = compile_assay(paper_example.SOURCE)
        warm_single = compile_assay(paper_example.SOURCE, cache=cache)
        assert warm_single.listing() == fresh.listing()

    def test_spec_delta_misses(self):
        from repro.machine.spec import AQUACORE_XL_SPEC

        cache = PlanCache()
        compile_many(source_jobs(), cache=cache)
        other = compile_many(
            source_jobs(), cache=cache, spec=AQUACORE_XL_SPEC
        )
        assert other.hits == 0
        assert other.compiled == 2

    def test_option_delta_misses(self):
        cache = PlanCache()
        compile_many(source_jobs(), cache=cache)
        other = compile_many(
            source_jobs(), cache=cache, manager_options={"use_lp": False}
        )
        assert other.hits == 0

    def test_partial_options_normalized(self):
        """Explicit defaults and omitted defaults share fingerprints."""
        cache = PlanCache()
        compile_many(source_jobs(), cache=cache)
        warm = compile_many(
            source_jobs(),
            cache=cache,
            manager_options={"use_lp": True},   # == the default
        )
        assert warm.hits == 2


class TestWorkers:
    def test_process_pool_matches_in_process(self):
        jobs = source_jobs() + [
            BatchJob("dilution", dag=generators.serial_dilution(6)),
            BatchJob("bad", source="assay nope {"),
        ]
        seq = compile_many(jobs, cache=PlanCache(), max_workers=1)
        par = compile_many(jobs, cache=PlanCache(), max_workers=2)
        assert par.workers == 2
        for a, b in zip(seq.results, par.results):
            assert a.name == b.name
            assert a.status == b.status
            assert a.fingerprint == b.fingerprint
            assert a.plan_status == b.plan_status

    def test_pool_populates_shared_cache(self):
        cache = PlanCache()
        compile_many(source_jobs(), cache=cache, max_workers=2)
        warm = compile_many(source_jobs(), cache=cache)
        assert warm.hits == 2

    def test_auto_workers(self):
        report = compile_many(source_jobs(), cache=PlanCache(), max_workers=0)
        assert report.workers >= 1

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            compile_many(source_jobs(), max_workers=-1)


class TestReport:
    def test_to_dict_shape(self):
        report = compile_many(source_jobs(), cache=PlanCache())
        data = report.to_dict()
        assert data["jobs"] == 2
        assert set(data) >= {
            "hits", "compiled", "deduped", "failed",
            "wall_s", "throughput_per_s", "latency_ms", "cache", "results",
        }
        assert data["latency_ms"]["max"] >= data["latency_ms"]["mean"] > 0

    def test_render_mentions_every_job(self):
        report = compile_many(source_jobs(), cache=PlanCache())
        text = report.render()
        assert "fig2" in text and "glucose" in text

    def test_empty_batch(self):
        report = compile_many([], cache=PlanCache())
        assert isinstance(report, BatchReport)
        assert report.to_dict()["jobs"] == 0
