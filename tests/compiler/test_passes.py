"""The instrumented pass manager: golden equivalence + event contract.

Two suites:

* **Golden equivalence** — the deprecated shims (``compile_assay`` /
  ``compile_dag``) must produce byte-identical AIS listings and identical
  volume-plan summaries to driving :func:`repro.compiler.passes.run_compile`
  directly, across the whole assay corpus.
* **Event contract** — every executed pass emits exactly one
  :class:`PassEvent`; a warm plan cache skips exactly the volume-management
  prefix (restore-plan ``cached``/``hit``, hierarchy + round ``skipped``)
  while codegen still runs and the listing stays byte-identical.
"""

import pytest

from repro.assays import extra, generators, glucose, glycomics, paper_example
from repro.compiler import compile_assay, compile_dag
from repro.compiler.cache import PlanCache
from repro.compiler.passes import (
    PASS_EVENT_SCHEMA_VERSION,
    PassEventBus,
    events_payload,
    render_timing_table,
    run_compile,
)

SOURCES = {
    "paper_example": paper_example.SOURCE,
    "glucose": glucose.SOURCE,
    "glycomics": glycomics.SOURCE,
    "elisa": extra.ELISA_SOURCE,
    "bradford": extra.BRADFORD_SOURCE,
    "pcr_prep": extra.PCR_PREP_SOURCE,
}

DAGS = {
    "paper_example": paper_example.build_dag,
    "enzyme_4": lambda: generators.enzyme_n(4),
    "serial_dilution": lambda: generators.serial_dilution(5),
    "mix_tree": lambda: generators.binary_mix_tree(3),
    "fanout": lambda: generators.fanout_chain(4, 3),
    "bradford_dag": extra.build_bradford_dag,
}


def plan_summary(compiled):
    if compiled.plan is None:
        return None
    return compiled.plan.summary()


class TestGoldenEquivalence:
    @pytest.mark.parametrize("name", sorted(SOURCES))
    def test_compile_assay_shim_matches_pass_manager(self, name):
        source = SOURCES[name]
        legacy = compile_assay(source)
        ctx = run_compile(source=source)
        assert legacy.listing() == ctx.compiled.listing()
        assert plan_summary(legacy) == plan_summary(ctx.compiled)
        assert [str(d) for d in legacy.diagnostics] == [
            str(d) for d in ctx.compiled.diagnostics
        ]

    @pytest.mark.parametrize("name", sorted(DAGS))
    def test_compile_dag_shim_matches_pass_manager(self, name):
        legacy = compile_dag(DAGS[name]())
        ctx = run_compile(dag=DAGS[name]())
        assert legacy.listing() == ctx.compiled.listing()
        assert plan_summary(legacy) == plan_summary(ctx.compiled)

    def test_lint_and_certify_ride_the_same_compile(self):
        legacy = compile_assay(glucose.SOURCE, lint=True, certify=True)
        ctx = run_compile(source=glucose.SOURCE, lint=True, certify=True)
        assert legacy.listing() == ctx.compiled.listing()
        assert [str(d) for d in legacy.diagnostics] == [
            str(d) for d in ctx.compiled.diagnostics
        ]


class TestEventContract:
    def compile_with_bus(self, source=None, dag=None, cache=None):
        bus = PassEventBus(fingerprints=True)
        ctx = run_compile(source=source, dag=dag, cache=cache, bus=bus)
        return ctx, bus

    def event(self, bus, name):
        found = [e for e in bus.events if e.name == name]
        assert found, f"no event named {name!r} in {[e.name for e in bus.events]}"
        return found[-1]

    def test_cold_compile_emits_one_event_per_pass(self):
        __, bus = self.compile_with_bus(source=glucose.SOURCE)
        names = [e.name for e in bus.events]
        # one event per top-level pass, plus round-stamped hierarchy stages
        for expected in (
            "parse", "unroll", "build-dag", "partition", "restore-plan",
            "dagsolve", "hierarchy", "round", "plan-report", "codegen",
            "lint", "assemble", "certify",
        ):
            assert expected in names
        assert self.event(bus, "parse").status == "ok"
        assert self.event(bus, "hierarchy").status == "ok"
        assert self.event(bus, "dagsolve").round == 1
        assert self.event(bus, "lint").status == "skipped"

    def test_events_carry_timing_and_fingerprints(self):
        __, bus = self.compile_with_bus(source=glucose.SOURCE)
        for event in bus.ran():
            assert event.wall_s >= 0.0
            assert event.cpu_s >= 0.0
        assert self.event(bus, "build-dag").fingerprint_out is not None
        payload = events_payload(bus)
        assert payload["version"] == PASS_EVENT_SCHEMA_VERSION
        assert len(payload["passes"]) == len(bus.events)
        table = render_timing_table(bus)
        assert "codegen" in table and "total:" in table

    def test_warm_cache_skips_exactly_the_plan_prefix(self):
        cache = PlanCache()
        cold_ctx, cold_bus = self.compile_with_bus(
            source=glucose.SOURCE, cache=cache
        )
        warm_ctx, warm_bus = self.compile_with_bus(
            source=glucose.SOURCE, cache=cache
        )
        assert self.event(cold_bus, "restore-plan").cache == "miss"
        assert self.event(cold_bus, "round").cache == "store"

        restore = self.event(warm_bus, "restore-plan")
        assert restore.status == "cached"
        assert restore.cache == "hit"
        assert self.event(warm_bus, "hierarchy").status == "skipped"
        assert self.event(warm_bus, "round").status == "skipped"
        # downstream passes still run on the restored plan
        assert self.event(warm_bus, "codegen").status == "ok"
        assert warm_ctx.compiled.listing() == cold_ctx.compiled.listing()
        assert (
            self.event(warm_bus, "codegen").fingerprint_out
            == self.event(cold_bus, "codegen").fingerprint_out
        )

    def test_failed_pass_emits_failed_event_and_reraises(self):
        bus = PassEventBus(fingerprints=False)
        with pytest.raises(Exception):
            run_compile(source="assay bad { this is not fluid }", bus=bus)
        assert bus.events, "the failing pass should still emit its event"
        assert bus.events[-1].status == "failed"

    def test_explain_names_the_winning_attempt(self):
        ctx, __ = self.compile_with_bus(source=glucose.SOURCE)
        text = ctx.pass_manager.explain(ctx)
        assert "pass plan:" in text
        assert "hierarchy" in text
        assert "dagsolve" in text


class TestProfileMode:
    """``profile=True``: leaf passes carry cProfile hotspots on their
    events; composite passes never nest a profiler."""

    def test_leaf_events_carry_hotspots(self):
        bus = PassEventBus()
        run_compile(source=glucose.SOURCE, bus=bus, profile=True)
        profiled = [e for e in bus.events if e.profile]
        assert profiled, "no pass carried profile hotspots"
        for event in profiled:
            assert event.name != "hierarchy"  # composite: stages only
            for spot in event.profile:
                assert {"func", "calls", "tottime_ms", "cumtime_ms"} <= set(
                    spot
                )
        # the hierarchy loop's stages are profiled individually
        assert any(e.round is not None for e in profiled)

    def test_profile_off_leaves_events_clean(self):
        bus = PassEventBus()
        run_compile(source=glucose.SOURCE, bus=bus)
        assert all(not e.profile for e in bus.events)

    def test_payload_and_table_render(self):
        from repro.compiler.passes.events import (
            profile_payload,
            render_profile_table,
        )

        bus = PassEventBus()
        run_compile(source=glucose.SOURCE, bus=bus, profile=True)
        payload = profile_payload(bus)
        assert payload and all(
            {"pass", "hotspots"} <= set(entry) for entry in payload
        )
        table = render_profile_table(bus)
        assert "cProfile hotspots" in table
        assert "ms cum" in table

    def test_profiled_compile_matches_unprofiled(self):
        plain = run_compile(source=glucose.SOURCE)
        profiled = run_compile(source=glucose.SOURCE, profile=True)
        assert profiled.compiled.listing() == plain.compiled.listing()
