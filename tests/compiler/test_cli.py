"""CLI tests (``python -m repro``)."""

import pytest

from repro.cli import main
from repro.assays import glucose, glycomics


@pytest.fixture
def glucose_file(tmp_path):
    path = tmp_path / "glucose.fluid"
    path.write_text(glucose.SOURCE)
    return str(path)


@pytest.fixture
def glycomics_file(tmp_path):
    path = tmp_path / "glycomics.fluid"
    path.write_text(glycomics.SOURCE)
    return str(path)


class TestCheck:
    def test_valid_assay(self, glucose_file, capsys):
        assert main(["check", glucose_file]) == 0
        out = capsys.readouterr().out
        assert "glucose: OK" in out
        assert "10 wet operations" in out

    def test_syntax_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.fluid"
        bad.write_text("ASSAY x\nSTART\nfluid a\nEND\n")  # missing ';'
        assert main(["check", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["check", "/no/such/file.fluid"]) == 2


class TestDag:
    def test_listing(self, glucose_file, capsys):
        assert main(["dag", glucose_file]) == 0
        out = capsys.readouterr().out
        assert "8 nodes" in out
        assert "Glucose" in out

    def test_dot(self, glucose_file, capsys):
        assert main(["dag", glucose_file, "--dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")


class TestPlan:
    def test_static_plan(self, glucose_file, capsys):
        assert main(["plan", glucose_file]) == 0
        out = capsys.readouterr().out
        assert "dagsolve" in out
        assert "Reagent: 100" in out

    def test_runtime_plan(self, glycomics_file, capsys):
        assert main(["plan", glycomics_file]) == 0
        out = capsys.readouterr().out
        assert "4 partitions" in out
        assert "share 1/2, 50 nl" in out

    def test_hierarchy_toggles(self, glucose_file, capsys):
        assert main(["plan", glucose_file, "--no-lp", "--no-cascade"]) == 0


class TestCompile:
    def test_listing_emitted(self, glucose_file, capsys):
        assert main(["compile", glucose_file]) == 0
        out = capsys.readouterr().out
        assert "glucose{" in out
        assert "sense.OD sensor2, Result[5]" in out

    def test_machine_selection(self, glucose_file, capsys):
        assert main(["compile", glucose_file, "--machine", "aquacore-xl"]) == 0

    def test_rolled_listing(self, tmp_path, capsys):
        from repro.assays import enzyme

        path = tmp_path / "enzyme.fluid"
        path.write_text(enzyme.SOURCE)
        assert main(["compile", str(path), "--rolled"]) == 0
        out = capsys.readouterr().out
        assert "loop0: index i: 1->4" in out
        assert "move s5(i), mixer1" in out

    def test_objective_default_is_noop(self, glucose_file, capsys):
        assert main(["compile", glucose_file]) == 0
        plain = capsys.readouterr().out
        assert main(["compile", glucose_file, "--objective", "default"]) == 0
        assert capsys.readouterr().out == plain

    def test_objective_waste_compiles(self, glucose_file, capsys):
        assert main(["compile", glucose_file, "--objective", "waste"]) == 0
        out = capsys.readouterr().out
        assert "glucose{" in out

    def test_unknown_objective_rejected(self, glucose_file):
        with pytest.raises(SystemExit):
            main(["compile", glucose_file, "--objective", "speed"])

    def test_plan_command_takes_objective(self, glucose_file, capsys):
        assert main(["plan", glucose_file, "--objective", "waste"]) == 0
        assert "dagsolve" in capsys.readouterr().out


class TestRun:
    def test_readings(self, glucose_file, capsys):
        code = main(["run", glucose_file, "--coeff", "Glucose=2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "regenerations: 0" in out
        assert "Result[1] = 1" in out

    def test_separation_models(self, glycomics_file, capsys):
        code = main(
            [
                "run",
                glycomics_file,
                "--sep-yield",
                "separator1=0.4",
                "--sep-yield",
                "separator2=0.5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "measured volumes:" in out

    def test_trace_flag(self, glucose_file, capsys):
        assert main(["run", glucose_file, "--trace", "5"]) == 0
        out = capsys.readouterr().out
        assert "input s1, ip1" in out

    def test_bad_coeff_syntax(self, glucose_file):
        with pytest.raises(SystemExit):
            main(["run", glucose_file, "--coeff", "Glucose"])


class TestBenchRegen:
    def test_glucose_count(self, glucose_file, capsys):
        assert main(["bench-regen", glucose_file]) == 0
        out = capsys.readouterr().out
        assert "regenerations without volume management: 2" in out
        assert "Reagent: 2" in out


class TestCompileAnalyzers:
    def test_lint_and_certify_on_one_compile(self, glucose_file, capsys):
        assert main(["compile", glucose_file, "--lint", "--certify"]) == 0
        captured = capsys.readouterr()
        assert "input s1" in captured.out          # the listing still prints
        assert "PLAN-WASTE" in captured.err        # certify note reported

    def test_single_file_with_cache_dir(self, glucose_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(
            ["compile", glucose_file, "--cache-dir", cache_dir]
        ) == 0
        cold = capsys.readouterr().out
        assert main(
            ["compile", glucose_file, "--cache-dir", cache_dir]
        ) == 0
        warm = capsys.readouterr().out
        assert warm.splitlines()[0] == cold.splitlines()[0]
        import os

        assert any(
            name.startswith("plan-") for name in os.listdir(cache_dir)
        )


class TestCompileInstrumentation:
    def test_time_passes_table(self, glucose_file, capsys):
        assert main(["compile", glucose_file, "--time-passes"]) == 0
        captured = capsys.readouterr()
        assert "input s1" in captured.out           # listing untouched
        assert "wall ms" in captured.err            # table on stderr
        assert "codegen" in captured.err
        assert "total:" in captured.err

    def test_explain_pass_plan(self, glucose_file, capsys):
        assert main(["compile", glucose_file, "--explain"]) == 0
        err = capsys.readouterr().err
        assert "pass plan:" in err
        assert "hierarchy" in err
        assert "won at round 1" in err

    def test_single_compile_stats_json(self, glucose_file, tmp_path, capsys):
        import json

        stats_path = tmp_path / "passes.json"
        assert main(
            ["compile", glucose_file, "--stats-json", str(stats_path)]
        ) == 0
        data = json.loads(stats_path.read_text())
        assert data["program"] == "glucose"
        names = [entry["name"] for entry in data["passes"]]
        assert "parse" in names and "codegen" in names
        assert all("wall_ms" in entry for entry in data["passes"])

    def test_stats_json_plan_payload_warm_equals_cold(
        self, glucose_file, tmp_path, capsys
    ):
        import json

        cache_dir = str(tmp_path / "cache")
        cold_path = tmp_path / "cold.json"
        warm_path = tmp_path / "warm.json"
        argv = ["compile", glucose_file, "--cache-dir", cache_dir,
                "--stats-json"]
        assert main(argv + [str(cold_path)]) == 0
        assert main(argv + [str(warm_path)]) == 0
        cold = json.loads(cold_path.read_text())["plan"]
        warm = json.loads(warm_path.read_text())["plan"]
        # the warm hit restores the plan, so the winning attempt and
        # transform metadata match the cold compile exactly
        assert warm == cold
        assert cold["status"] in ("dagsolve", "lp")
        assert any(a["succeeded"] for a in cold["attempts"])
        assert all(a["objective"] == "default" for a in cold["attempts"])

    def test_warm_cache_shows_prefix_skip(self, glucose_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        argv = ["compile", glucose_file, "--cache-dir", cache_dir,
                "--time-passes"]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert "cached" in err and "hit" in err

    def test_profile_hotspot_table(self, glucose_file, capsys):
        assert main(["compile", glucose_file, "--profile"]) == 0
        captured = capsys.readouterr()
        assert "input s1" in captured.out           # listing untouched
        assert "cProfile hotspots" in captured.err  # report on stderr
        assert "ms cum" in captured.err

    def test_profile_stats_json(self, glucose_file, tmp_path):
        import json

        stats_path = tmp_path / "stats.json"
        assert main(
            ["compile", glucose_file, "--profile",
             "--stats-json", str(stats_path)]
        ) == 0
        data = json.loads(stats_path.read_text())
        assert data["profile"], "stats JSON should carry hotspot entries"
        entry = data["profile"][0]
        assert {"pass", "hotspots"} <= set(entry)
        assert {"func", "calls", "tottime_ms", "cumtime_ms"} <= set(
            entry["hotspots"][0]
        )

    def test_instrumentation_rejected_in_batch(self, glucose_file):
        with pytest.raises(SystemExit):
            main(["compile", glucose_file, "--batch", "--time-passes"])
        with pytest.raises(SystemExit):
            main(["compile", glucose_file, "--batch", "--explain"])
        with pytest.raises(SystemExit):
            main(["compile", glucose_file, "--batch", "--profile"])


class TestCompileBatch:
    def test_batch_reports_statuses(self, glucose_file, tmp_path, capsys):
        other = tmp_path / "glucose2.fluid"
        other.write_text(glucose.SOURCE)
        assert main(
            ["compile", glucose_file, str(other), "--batch"]
        ) == 0
        out = capsys.readouterr().out
        assert "compiled" in out and "deduped" in out
        assert "cache:" in out

    def test_batch_warm_run_hits(self, glucose_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        argv = ["compile", glucose_file, "--batch", "--cache-dir", cache_dir]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        assert " hit " in capsys.readouterr().out

    def test_batch_stats_json(self, glucose_file, tmp_path, capsys):
        import json

        stats_path = tmp_path / "stats.json"
        assert main(
            [
                "compile", glucose_file, "--batch",
                "--stats-json", str(stats_path),
            ]
        ) == 0
        data = json.loads(stats_path.read_text())
        assert data["jobs"] == 1
        assert data["results"][0]["status"] == "compiled"

    def test_batch_failure_exit_code(self, glucose_file, tmp_path, capsys):
        bad = tmp_path / "bad.fluid"
        bad.write_text("assay nope {")
        assert main(
            ["compile", glucose_file, str(bad), "--batch"]
        ) == 1
        assert "failed" in capsys.readouterr().out

    def test_batch_certify_flag(self, glucose_file, capsys):
        assert main(
            ["compile", glucose_file, "--batch", "--certify"]
        ) == 0
        assert "certified" in capsys.readouterr().out

    def test_rolled_rejected_in_batch(self, glucose_file):
        with pytest.raises(SystemExit):
            main(["compile", glucose_file, "--batch", "--rolled"])
