"""CLI tests (``python -m repro``)."""

import pytest

from repro.cli import main
from repro.assays import glucose, glycomics


@pytest.fixture
def glucose_file(tmp_path):
    path = tmp_path / "glucose.fluid"
    path.write_text(glucose.SOURCE)
    return str(path)


@pytest.fixture
def glycomics_file(tmp_path):
    path = tmp_path / "glycomics.fluid"
    path.write_text(glycomics.SOURCE)
    return str(path)


class TestCheck:
    def test_valid_assay(self, glucose_file, capsys):
        assert main(["check", glucose_file]) == 0
        out = capsys.readouterr().out
        assert "glucose: OK" in out
        assert "10 wet operations" in out

    def test_syntax_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.fluid"
        bad.write_text("ASSAY x\nSTART\nfluid a\nEND\n")  # missing ';'
        assert main(["check", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["check", "/no/such/file.fluid"]) == 2


class TestDag:
    def test_listing(self, glucose_file, capsys):
        assert main(["dag", glucose_file]) == 0
        out = capsys.readouterr().out
        assert "8 nodes" in out
        assert "Glucose" in out

    def test_dot(self, glucose_file, capsys):
        assert main(["dag", glucose_file, "--dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")


class TestPlan:
    def test_static_plan(self, glucose_file, capsys):
        assert main(["plan", glucose_file]) == 0
        out = capsys.readouterr().out
        assert "dagsolve" in out
        assert "Reagent: 100" in out

    def test_runtime_plan(self, glycomics_file, capsys):
        assert main(["plan", glycomics_file]) == 0
        out = capsys.readouterr().out
        assert "4 partitions" in out
        assert "share 1/2, 50 nl" in out

    def test_hierarchy_toggles(self, glucose_file, capsys):
        assert main(["plan", glucose_file, "--no-lp", "--no-cascade"]) == 0


class TestCompile:
    def test_listing_emitted(self, glucose_file, capsys):
        assert main(["compile", glucose_file]) == 0
        out = capsys.readouterr().out
        assert "glucose{" in out
        assert "sense.OD sensor2, Result[5]" in out

    def test_machine_selection(self, glucose_file, capsys):
        assert main(["compile", glucose_file, "--machine", "aquacore-xl"]) == 0

    def test_rolled_listing(self, tmp_path, capsys):
        from repro.assays import enzyme

        path = tmp_path / "enzyme.fluid"
        path.write_text(enzyme.SOURCE)
        assert main(["compile", str(path), "--rolled"]) == 0
        out = capsys.readouterr().out
        assert "loop0: index i: 1->4" in out
        assert "move s5(i), mixer1" in out


class TestRun:
    def test_readings(self, glucose_file, capsys):
        code = main(["run", glucose_file, "--coeff", "Glucose=2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "regenerations: 0" in out
        assert "Result[1] = 1" in out

    def test_separation_models(self, glycomics_file, capsys):
        code = main(
            [
                "run",
                glycomics_file,
                "--sep-yield",
                "separator1=0.4",
                "--sep-yield",
                "separator2=0.5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "measured volumes:" in out

    def test_trace_flag(self, glucose_file, capsys):
        assert main(["run", glucose_file, "--trace", "5"]) == 0
        out = capsys.readouterr().out
        assert "input s1, ip1" in out

    def test_bad_coeff_syntax(self, glucose_file):
        with pytest.raises(SystemExit):
            main(["run", glucose_file, "--coeff", "Glucose"])


class TestBenchRegen:
    def test_glucose_count(self, glucose_file, capsys):
        assert main(["bench-regen", glucose_file]) == 0
        out = capsys.readouterr().out
        assert "regenerations without volume management: 2" in out
        assert "Reagent: 2" in out
