"""Diagnostic-sink tests."""

from repro.compiler.diagnostics import Diagnostic, DiagnosticSink, Severity


class TestSink:
    def test_levels(self):
        sink = DiagnosticSink()
        sink.note("a", "note text")
        sink.warning("b", "warning text", node="K")
        assert len(sink) == 2
        assert not sink.has_errors
        sink.error("c", "error text")
        assert sink.has_errors

    def test_render(self):
        sink = DiagnosticSink()
        sink.warning("underflow-risk", "tiny Vnorm", node="X2")
        text = sink.render()
        assert "warning: underflow-risk" in text
        assert "[X2]" in text

    def test_iteration_order(self):
        sink = DiagnosticSink()
        sink.note("one", "1")
        sink.note("two", "2")
        assert [d.code for d in sink] == ["one", "two"]

    def test_diagnostic_str_without_node(self):
        diagnostic = Diagnostic(Severity.NOTE, "x", "message")
        assert str(diagnostic) == "note: x: message"
