"""Regression pin for the one severity / exit-code table.

``repro lint``, ``repro certify``, the compiler's diagnostic sink, and
the pass-manager drivers all map findings to process exit codes through
``repro.compiler.diagnostics``.  These tests pin the mapping so a change
to any one consumer cannot silently fork the policy.
"""

import pytest

from repro.analysis import lint as lint_mod
from repro.analysis.certify import report as certify_mod
from repro.compiler.diagnostics import (
    EXIT_CLEAN,
    EXIT_ERRORS,
    EXIT_FATAL,
    EXIT_WARNINGS,
    SEVERITY_EXIT_CODES,
    Diagnostic,
    DiagnosticSink,
    Severity,
    exit_code_for,
    report_payload,
    severity_counts,
)


def diag(severity, code="x"):
    return Diagnostic(severity, code, "message")


class TestTable:
    def test_exit_code_values_are_pinned(self):
        assert EXIT_CLEAN == 0
        assert EXIT_WARNINGS == 1
        assert EXIT_ERRORS == 2
        # parse/compile failure deliberately shares the error code:
        # callers gate on "nonzero means not clean".
        assert EXIT_FATAL == EXIT_ERRORS

    def test_severity_to_exit_code_mapping_is_pinned(self):
        assert SEVERITY_EXIT_CODES == {
            None: 0,
            Severity.NOTE: 0,
            Severity.WARNING: 1,
            Severity.ERROR: 2,
        }

    def test_severity_ordering(self):
        assert Severity.NOTE.rank < Severity.WARNING.rank < Severity.ERROR.rank
        ranks = sorted(severity.rank for severity in Severity)
        assert ranks == [0, 1, 2]

    def test_exit_code_for_takes_the_worst_finding(self):
        assert exit_code_for([]) == EXIT_CLEAN
        assert exit_code_for([diag(Severity.NOTE)]) == EXIT_CLEAN
        assert (
            exit_code_for([diag(Severity.NOTE), diag(Severity.WARNING)])
            == EXIT_WARNINGS
        )
        assert (
            exit_code_for(
                [diag(Severity.WARNING), diag(Severity.ERROR), diag(Severity.NOTE)]
            )
            == EXIT_ERRORS
        )

    def test_exit_code_matches_sink_max_severity(self):
        sink = DiagnosticSink()
        assert SEVERITY_EXIT_CODES[sink.max_severity] == EXIT_CLEAN
        sink.note("a", "m")
        assert SEVERITY_EXIT_CODES[sink.max_severity] == EXIT_CLEAN
        sink.warning("b", "m")
        assert SEVERITY_EXIT_CODES[sink.max_severity] == EXIT_WARNINGS
        sink.error("c", "m")
        assert SEVERITY_EXIT_CODES[sink.max_severity] == EXIT_ERRORS


class TestConsumersShareTheTable:
    """Lint and certify re-export the table rather than defining their own."""

    @pytest.mark.parametrize("module", [lint_mod, certify_mod])
    def test_reexported_constants_are_the_same_objects(self, module):
        assert module.EXIT_CLEAN == EXIT_CLEAN
        assert module.EXIT_WARNINGS == EXIT_WARNINGS
        assert module.EXIT_ERRORS == EXIT_ERRORS

    @pytest.mark.parametrize(
        "findings, expected",
        [
            ([], EXIT_CLEAN),
            ([diag(Severity.NOTE)], EXIT_CLEAN),
            ([diag(Severity.WARNING)], EXIT_WARNINGS),
            ([diag(Severity.ERROR), diag(Severity.NOTE)], EXIT_ERRORS),
        ],
    )
    def test_lint_and_certify_reports_agree(self, findings, expected):
        lint_report = lint_mod.LintReport(
            program="p", machine="m", findings=list(findings)
        )
        certify_report = certify_mod.CertificateReport(
            program="p", machine="m", findings=list(findings)
        )
        assert lint_report.exit_code == expected
        assert certify_report.exit_code == expected
        assert lint_report.exit_code == exit_code_for(findings)
        assert certify_report.exit_code == exit_code_for(findings)

    def test_report_payload_embeds_the_shared_exit_code(self):
        findings = [diag(Severity.WARNING)]
        payload = report_payload(
            "lint", "p", "m", findings, exit_code=exit_code_for(findings)
        )
        counts = severity_counts(findings)
        assert payload["summary"]["exit_code"] == EXIT_WARNINGS
        assert payload["summary"]["errors"] == counts["error"]
        assert payload["summary"]["warnings"] == counts["warning"]
        assert payload["summary"]["notes"] == counts["note"]
