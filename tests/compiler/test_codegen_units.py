"""Unit-management edge cases in the code generator."""

from fractions import Fraction

import pytest

from repro.compiler.codegen import CodegenError, generate
from repro.core.dag import AssayDAG
from repro.ir.instructions import Opcode
from repro.machine.spec import AQUACORE_SPEC, FunctionalUnitSpec, MachineSpec


def single_mixer_spec():
    return MachineSpec(
        name="one-mixer",
        limits=AQUACORE_SPEC.limits,
        n_reservoirs=12,
        n_input_ports=12,
        n_output_ports=2,
        functional_units=(
            FunctionalUnitSpec("mixer1", "mixer"),
            FunctionalUnitSpec("heater1", "heater"),
            FunctionalUnitSpec("sensor2", "sensor", senses=("OD",)),
        ),
    )


class TestSpentOccupantDiscard:
    def test_consecutive_leaf_mixes_on_one_mixer(self):
        """Two final products competing for a single mixer: the first
        (never sensed, never consumed) is discarded to make room."""
        dag = AssayDAG("two-leaves")
        dag.add_input("A")
        dag.add_input("B")
        dag.add_mix("m1", {"A": 1, "B": 1})
        dag.add_mix("m2", {"A": 1, "B": 2})
        program, __ = generate(dag, single_mixer_spec())
        discards = [
            i for i in program.instructions if i.meta.get("discard") == "m1"
        ]
        assert len(discards) == 1
        assert discards[0].opcode is Opcode.OUTPUT

    def test_sensed_leaves_not_discarded(self):
        """With sensing, the product leaves the mixer into the sensor cell,
        so no discard is needed (the glucose pattern)."""
        dag = AssayDAG("sensed")
        dag.add_input("A")
        dag.add_input("B")
        m1 = dag.add_mix("m1", {"A": 1, "B": 1})
        m1.meta["senses"] = [{"mode": "OD", "result": "r1"}]
        m2 = dag.add_mix("m2", {"A": 1, "B": 2})
        m2.meta["senses"] = [{"mode": "OD", "result": "r2"}]
        program, __ = generate(dag, single_mixer_spec())
        assert not any("discard" in i.meta for i in program.instructions)


class TestResidueDiscard:
    def test_unit_resident_mix_ingredient_flushes_residue(self):
        """A mix consuming a unit-resident fluid uses a metered move and
        flushes the source unit afterwards."""
        dag = AssayDAG("chain")
        dag.add_input("A")
        dag.add_input("B")
        dag.add_input("C")
        dag.add_mix("m1", {"A": 1, "B": 1})
        dag.add_mix("m2", {"m1": 1, "C": 1})
        program, __ = generate(dag, AQUACORE_SPEC)
        residues = [
            i for i in program.instructions if i.meta.get("residue") == "m1"
        ]
        moves = program.moves_for_edge(("m1", "m2"))
        assert len(moves) == 1  # metered, not in place
        assert len(residues) == 1

    def test_unary_in_place_consumption_no_move(self):
        """A heat step consuming the mixer's product in the heater... the
        other way round: heat-to-heat chains stay in the heater with no
        intervening move."""
        dag = AssayDAG("heatchain")
        dag.add_input("A")
        dag.add_input("B")
        dag.add_mix("m", {"A": 1, "B": 1})
        dag.add_unary("h1", "m")
        dag.add_unary("h2", "h1")
        program, __ = generate(dag, AQUACORE_SPEC)
        # h2 consumes h1 in place: no move carries the (h1, h2) edge
        assert program.moves_for_edge(("h1", "h2")) == []
        assert program.moves_for_edge(("m", "h1")) != []


class TestUnitExhaustion:
    def test_all_units_live_raises(self):
        """Two live unit-resident fluids with interleaved consumption on a
        one-mixer machine cannot be scheduled."""
        dag = AssayDAG("clash")
        dag.add_input("A")
        dag.add_input("B")
        # m1 is used TWICE with its uses far apart, so it cannot be
        # storage-less; but give the allocator no reservoirs to park it.
        tiny = MachineSpec(
            name="tiny",
            limits=AQUACORE_SPEC.limits,
            n_reservoirs=2,  # both taken by the inputs
            n_input_ports=4,
            n_output_ports=1,
            functional_units=(
                FunctionalUnitSpec("mixer1", "mixer"),
                FunctionalUnitSpec("heater1", "heater"),
            ),
        )
        dag.add_mix("m1", {"A": 1, "B": 1})
        dag.add_mix("m2", {"m1": 1, "A": 1})
        dag.add_mix("m3", {"m1": 1, "B": 1})
        from repro.ir.regalloc import AllocationError

        with pytest.raises((AllocationError, CodegenError)):
            generate(dag, tiny)


class TestAuxRefills:
    def test_each_reuse_emits_refill(self):
        dag = AssayDAG("sep2x")
        dag.add_input("A")
        dag.add_input("B")
        from repro.core.dag import NodeKind

        s1 = dag.add_unary(
            "s1",
            "A",
            kind=NodeKind.SEPARATE,
            output_fraction=Fraction(1, 2),
        )
        s1.meta.update({"mode": "LC", "matrix": "C18", "pusher": "buf"})
        s2 = dag.add_unary(
            "s2",
            "B",
            kind=NodeKind.SEPARATE,
            output_fraction=Fraction(1, 2),
        )
        s2.meta.update({"mode": "LC", "matrix": "C18", "pusher": "buf"})
        program, __ = generate(dag, AQUACORE_SPEC, aux_fluids=["C18", "buf"])
        refills = [
            i
            for i in program.instructions
            if i.opcode is Opcode.INPUT and "refill" in (i.comment or "")
        ]
        assert len(refills) == 2  # one per fluid for the second separation
