"""Code-generation tests: instruction shapes of paper Figures 9b-11b."""

from fractions import Fraction

import pytest

from repro.compiler.codegen import CodegenError, execution_order, generate
from repro.core.dag import AssayDAG
from repro.ir.instructions import Opcode
from repro.machine.spec import AQUACORE_SPEC
from repro.assays import glucose, paper_example


class TestExecutionOrder:
    def test_topological(self, enzyme_dag):
        order = execution_order(enzyme_dag)
        position = {n: i for i, n in enumerate(order)}
        for edge in enzyme_dag.edges():
            assert position[edge.src] < position[edge.dst]

    def test_sequence_stable_for_compiled_dags(self):
        from repro.ir.builder import build_dag_from_flat
        from repro.lang.parser import parse
        from repro.lang.unroll import unroll

        dag = build_dag_from_flat(unroll(parse(glucose.SOURCE)))
        order = execution_order(dag)
        mixes = [n for n in order if n in "abcde"]
        assert mixes == ["a", "b", "c", "d", "e"]  # program order kept


class TestGlucoseListing:
    """The structure of paper Figure 9(b)."""

    @pytest.fixture
    def program(self):
        from repro.compiler import compile_assay

        return compile_assay(glucose.SOURCE).program

    def test_inputs_first(self, program):
        first_three = [i.opcode for i in program.instructions[:3]]
        assert first_three == [Opcode.INPUT] * 3

    def test_move_prints_ratio_parts(self, program):
        listing = program.render()
        assert "move mixer1, s2, 8" in listing  # the 1:8 mix's reagent move
        assert "move mixer1, s1, 1" in listing

    def test_each_mix_pattern(self, program):
        """move, move, mix, move-to-sensor, sense — five times."""
        ops = [i.opcode for i in program.instructions if i.opcode is not Opcode.INPUT]
        expected_block = [
            Opcode.MOVE,
            Opcode.MOVE,
            Opcode.MIX,
            Opcode.MOVE,
            Opcode.SENSE,
        ]
        assert ops == expected_block * 5

    def test_sense_targets(self, program):
        senses = [i for i in program.instructions if i.opcode is Opcode.SENSE]
        assert [s.result for s in senses] == [
            f"Result[{i}]" for i in range(1, 6)
        ]

    def test_edge_provenance_complete(self, program):
        """Every ratio-bearing move maps to a DAG edge."""
        moves = [
            i
            for i in program.instructions
            if i.opcode is Opcode.MOVE and i.rel_volume is not None
        ]
        assert all(m.edge is not None for m in moves)
        assert len(moves) == 10  # two per mix


class TestFigure2Codegen:
    def test_parked_intermediates_move_to_reservoirs(self, fig2_dag):
        program, allocation = generate(fig2_dag, AQUACORE_SPEC)
        assert "K" in allocation.reservoir_of
        park_moves = [
            i for i in program.instructions if i.meta.get("park") == "K"
        ]
        assert len(park_moves) == 1

    def test_mix_consumes_parked_fluid_by_edge(self, fig2_dag):
        program, __ = generate(fig2_dag, AQUACORE_SPEC)
        moves = program.moves_for_edge(("K", "M"))
        assert len(moves) == 1

    def test_two_mixers_used_for_adjacent_outputs(self, fig2_dag):
        program, __ = generate(fig2_dag, AQUACORE_SPEC)
        mix_units = {
            str(i.dst) for i in program.instructions if i.opcode is Opcode.MIX
        }
        assert mix_units == {"mixer1", "mixer2"}


class TestCascadeCodegen:
    def test_excess_discarded_through_output(self, limits):
        from repro.core.cascading import cascade_mix, stage_factors

        dag = AssayDAG("skew")
        dag.add_input("A")
        dag.add_input("B")
        dag.add_mix("M", {"A": 1, "B": 99})
        cascaded, __ = cascade_mix(dag, "M", stage_factors(Fraction(100), 2))
        program, __ = generate(cascaded, AQUACORE_SPEC)
        discards = [
            i for i in program.instructions if i.opcode is Opcode.OUTPUT
        ]
        assert len(discards) == 1
        assert discards[0].meta.get("excess") == "M.cascade1"
        assert "excess" in discards[0].comment

    def test_cascade_stages_alternate_mixers(self, limits):
        from repro.core.cascading import cascade_mix, stage_factors

        dag = AssayDAG("skew")
        dag.add_input("A")
        dag.add_input("B")
        dag.add_mix("M", {"A": 1, "B": 999})
        cascaded, __ = cascade_mix(
            dag, "M", stage_factors(Fraction(1000), 3)
        )
        program, __ = generate(cascaded, AQUACORE_SPEC)
        mix_units = [
            str(i.dst) for i in program.instructions if i.opcode is Opcode.MIX
        ]
        # consecutive cascade stages cannot share a mixer
        for first, second in zip(mix_units, mix_units[1:]):
            assert first != second


class TestSeparatorCodegen:
    def test_matrix_and_pusher_loaded(self):
        from repro.compiler import compile_assay
        from repro.assays import glycomics

        program = compile_assay(glycomics.SOURCE).program
        listing = program.render()
        assert "move separator1.matrix, s" in listing
        assert "move separator1.pusher, s" in listing
        assert "separate.AF separator1, 30" in listing
        assert "separate.LC separator2, 2400" in listing

    def test_refill_before_reuse(self):
        from repro.compiler import compile_assay
        from repro.assays import glycomics

        program = compile_assay(glycomics.SOURCE).program
        refills = [
            i
            for i in program.instructions
            if i.opcode is Opcode.INPUT and "refill" in (i.comment or "")
        ]
        # C_18 and buffer3b are used by two LC separations each.
        assert len(refills) == 2

    def test_effluent_consumed_from_out1(self):
        from repro.compiler import compile_assay
        from repro.assays import glycomics

        listing = compile_assay(glycomics.SOURCE).program.render()
        assert "separator2.out1" in listing


class TestErrors:
    def test_missing_source_location(self):
        dag = AssayDAG("broken")
        dag.add_input("A")
        with pytest.raises(KeyError):
            # sensor mode that no unit supports
            from repro.core.dag import NodeKind, Node

            dag.node("A").meta["senses"] = [{"mode": "XX", "result": "r"}]
            generate(dag, AQUACORE_SPEC)
