"""End-to-end compiler-driver tests."""

import pytest

from repro.compiler import compile_assay, compile_dag
from repro.core.hierarchy import VolumeManager
from repro.machine.spec import AQUACORE_SPEC
from repro.assays import enzyme, glucose, glycomics, paper_example


class TestStaticCompilation:
    def test_glucose(self):
        compiled = compile_assay(glucose.SOURCE)
        assert compiled.is_static
        assert compiled.plan.status == "dagsolve"
        assert compiled.assignment is not None
        assert not compiled.needs_regeneration
        assert compiled.planner is None

    def test_assignment_is_rounded(self):
        compiled = compile_assay(glucose.SOURCE)
        least = compiled.spec.limits.least_count
        for volume in compiled.assignment.edge_volume.values():
            assert (volume / least).denominator == 1

    def test_rounding_note_emitted(self):
        compiled = compile_assay(glucose.SOURCE)
        codes = {d.code for d in compiled.diagnostics}
        assert "rounding-error" in codes

    def test_enzyme_transform_notes(self):
        compiled = compile_assay(enzyme.SOURCE)
        codes = [d.code for d in compiled.diagnostics]
        assert codes.count("transform") >= 3  # the three 1:999 cascades
        assert compiled.final_dag.node_count > compiled.dag.node_count

    def test_custom_manager_respected(self):
        manager = VolumeManager(
            AQUACORE_SPEC.limits,
            allow_cascading=False,
            allow_replication=False,
        )
        compiled = compile_assay(enzyme.SOURCE, manager=manager)
        assert compiled.needs_regeneration
        codes = {d.code for d in compiled.diagnostics}
        assert "regeneration-fallback" in codes


class TestRuntimeCompilation:
    def test_glycomics(self):
        compiled = compile_assay(glycomics.SOURCE)
        assert not compiled.is_static
        assert compiled.planner.n_partitions == 4
        assert compiled.assignment is None

    def test_underflow_risk_warning(self):
        compiled = compile_assay(glycomics.SOURCE)
        warnings = [d for d in compiled.diagnostics if d.code == "underflow-risk"]
        assert len(warnings) == 1  # the X2 = 1/204 constrained input

    def test_yield_hints_make_assay_static(self):
        source = glycomics.SOURCE.replace(
            "SEPARATE it MATRIX lectin USING buffer1b FOR 30",
            "SEPARATE it MATRIX lectin USING buffer1b YIELD 1 : 2 FOR 30",
        ).replace(
            "LCSEPARATE it MATRIX C_18 USING buffer3b FOR 30",
            "LCSEPARATE it MATRIX C_18 USING buffer3b YIELD 1 : 2 FOR 30",
        ).replace(
            "LCSEPARATE it MATRIX C_18 USING buffer3b FOR 2400",
            "LCSEPARATE it MATRIX C_18 USING buffer3b YIELD 1 : 2 FOR 2400",
        )
        compiled = compile_assay(source)
        assert compiled.is_static  # hints removed all unknown volumes


class TestCompileDag:
    def test_hand_built_dag(self, fig2_dag):
        compiled = compile_dag(fig2_dag)
        assert compiled.is_static
        assert compiled.listing().startswith("figure2{")

    def test_listing_contains_ratio_moves(self, fig2_dag):
        listing = compile_dag(fig2_dag).listing()
        assert "move mixer1, s2, 4" in listing  # B's share of the 1:4 mix


class TestFigure9Listing:
    def test_glucose_matches_paper_shape(self):
        """Figure 9(b): same instruction multiset (modulo column layout)."""
        listing = compile_assay(glucose.SOURCE).listing()
        for line in (
            "input s1, ip1 ;Glucose",
            "input s2, ip2 ;Reagent",
            "input s3, ip3 ;Sample",
            "move mixer1, s1, 1",
            "move mixer1, s2, 2",
            "move mixer1, s2, 4",
            "move mixer1, s2, 8",
            "move mixer1, s3, 1",
            "mix mixer1, 10",
            "move sensor2, mixer1",
            "sense.OD sensor2, Result[5]",
        ):
            assert line in listing, line

    def test_glucose_instruction_count_close_to_paper(self):
        """Figure 9(b) lists 28 instructions (3 inputs + 5 x 5)."""
        program = compile_assay(glucose.SOURCE).program
        assert len(program) == 28
