"""Shared fixtures: the paper's hardware limits and benchmark DAGs."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.limits import PAPER_LIMITS, HardwareLimits
from repro.assays import enzyme, glucose, glycomics, paper_example


@pytest.fixture
def limits() -> HardwareLimits:
    """The paper's evaluation configuration: 100 nl max, 100 pl least count."""
    return PAPER_LIMITS


@pytest.fixture
def coarse_limits() -> HardwareLimits:
    """A deliberately coarse machine (max 100, least count 1) matching the
    introductory 1:399 example."""
    return HardwareLimits(max_capacity=Fraction(100), least_count=Fraction(1))


@pytest.fixture
def fig2_dag():
    return paper_example.build_dag()


@pytest.fixture
def glucose_dag():
    return glucose.build_dag()


@pytest.fixture
def glycomics_dag():
    return glycomics.build_dag()


@pytest.fixture
def enzyme_dag():
    return enzyme.build_dag()
