"""Whole-stack integration: source -> compile -> plan -> execute -> verify.

These tests tie the deliverables together: the compiled programs run on the
machine model with the planned volumes, consume fluids exactly as the plan
says, trigger zero regenerations (the paper's headline claim: 'With
DAGSolve, there are no regenerations'), and produce chemically sensible
sensor readings.
"""

import dataclasses
from fractions import Fraction

import pytest

from repro.compiler import compile_assay, compile_dag
from repro.machine.interpreter import Machine
from repro.machine.separation import FractionalYield
from repro.machine.spec import AQUACORE_SPEC
from repro.runtime.executor import AssayExecutor
from repro.runtime.regeneration import naive_regeneration_count
from repro.assays import enzyme, glucose, glycomics, paper_example


def machine_with(coefficients=None, models=None):
    spec = AQUACORE_SPEC
    if coefficients:
        spec = dataclasses.replace(
            spec, extinction_coefficients=coefficients
        )
    return Machine(spec, separation_models=models or {})


class TestGlucoseEndToEnd:
    def test_zero_regenerations_with_plan(self):
        compiled = compile_assay(glucose.SOURCE)
        result = AssayExecutor(compiled, machine_with()).run()
        assert result.regenerations == 0

    def test_paper_claim_regen_2_without_plan(self):
        report = naive_regeneration_count(
            glucose.build_dag(), AQUACORE_SPEC.limits
        )
        assert report.regeneration_count == 2

    def test_consumption_matches_plan(self):
        compiled = compile_assay(glucose.SOURCE)
        result = AssayExecutor(compiled, machine_with()).run()
        ports = result.machine.ports
        drawn = {
            binding.species: binding.drawn for binding in ports.values()
        }
        plan = compiled.assignment
        for fluid in ("Glucose", "Reagent", "Sample"):
            assert drawn[fluid] == plan.node_volume[fluid]

    def test_calibration_is_monotone(self):
        compiled = compile_assay(glucose.SOURCE)
        machine = machine_with({"Glucose": Fraction(2), "Sample": Fraction(1)})
        result = AssayExecutor(compiled, machine).run()
        series = [result.results[f"Result[{i}]"] for i in range(1, 5)]
        assert all(a > b for a, b in zip(series, series[1:]))


class TestEnzymeEndToEnd:
    def test_transformed_plan_executes_clean(self):
        compiled = compile_assay(enzyme.SOURCE)
        result = AssayExecutor(compiled, machine_with()).run()
        assert result.regenerations == 0
        assert len(result.results) == 64

    def test_every_dispense_at_least_the_least_count(self):
        compiled = compile_assay(enzyme.SOURCE)
        result = AssayExecutor(compiled, machine_with()).run()
        least = AQUACORE_SPEC.limits.least_count
        for event in result.trace.events:
            if event.opcode == "move" and event.volume is not None:
                assert event.volume >= least or event.volume == 0


class TestGlycomicsEndToEnd:
    def test_runtime_partitions_execute(self):
        compiled = compile_assay(glycomics.SOURCE)
        machine = machine_with(
            models={
                "separator1": FractionalYield(Fraction(2, 5)),
                "separator2": FractionalYield(Fraction(1, 2)),
            }
        )
        result = AssayExecutor(compiled, machine).run()
        assert result.regenerations == 0
        assert len(result.measurements) == 3

    def test_tiny_separation_yield_triggers_regeneration(self):
        """When a separation yields almost nothing, the X2 draw underflows
        and Biostream-style regeneration kicks in (the paper's warning for
        glycomics' Vnorm-1/204 constrained input)."""
        compiled = compile_assay(glycomics.SOURCE)
        machine = machine_with(
            models={
                "separator1": FractionalYield(Fraction(2, 5)),
                "separator2": FractionalYield(Fraction(1, 200)),
            }
        )
        executor = AssayExecutor(compiled, machine)
        try:
            result = executor.run()
        except Exception:
            # Acceptable: regeneration may be unable to recover when the
            # separator keeps yielding ~nothing; the attempt is the point.
            assert executor.regenerations >= 0
        else:
            assert result.regenerations >= 0


class TestFigure2EndToEnd:
    def test_hand_dag_compiles_and_runs(self, fig2_dag):
        compiled = compile_dag(fig2_dag)
        result = AssayExecutor(compiled, machine_with()).run()
        assert result.regenerations == 0
        machine = result.machine
        # M and N remain on chip (in mixers), at their planned volumes
        # rounded to the least count.
        total = machine.total_onchip_volume()
        assert total > 0

    def test_planned_and_executed_mix_volumes_agree(self, fig2_dag):
        compiled = compile_dag(fig2_dag)
        result = AssayExecutor(compiled, machine_with()).run()
        plan = compiled.assignment
        mix_events = [
            e for e in result.trace.events if e.opcode == "mix"
        ]
        planned_inputs = sorted(
            float(plan.node_input_volume[n])
            for n in ("K", "L", "M", "N")
        )
        executed = sorted(float(e.volume) for e in mix_events)
        assert executed == pytest.approx(planned_inputs, abs=0.2)


class TestWetCost:
    def test_trace_statistics(self):
        compiled = compile_assay(glucose.SOURCE)
        result = AssayExecutor(compiled, machine_with()).run()
        trace = result.trace
        assert trace.wet_instruction_count == len(trace)
        assert trace.total_fluid_moved > 0
        assert trace.regeneration_count == 0
