"""Every shipped example must run to completion (examples never rot)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def load_and_run(name: str) -> None:
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)


def test_example_inventory():
    """The README promises at least these five."""
    assert {
        "quickstart",
        "glucose_calibration",
        "enzyme_kinetics",
        "glycomics_runtime",
        "custom_assay",
    } <= set(EXAMPLES)


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    load_and_run(name)
    out = capsys.readouterr().out
    assert len(out.splitlines()) > 5  # examples narrate what they do
