"""Rounded plans must survive strict metering.

The whole point of the IVol rounding step is that every planned transfer is
an exact integer multiple of the least count — so a machine whose pump
*rejects* non-multiples (instead of quantising them) must execute the
compiled assays without a single metering error.
"""

import pytest

from repro.compiler import compile_assay, compile_dag
from repro.machine.interpreter import Machine
from repro.machine.separation import FractionalYield
from repro.machine.spec import AQUACORE_SPEC, AQUACORE_XL_SPEC
from repro.runtime.executor import AssayExecutor
from repro.assays import enzyme, generators, glucose, glycomics, paper_example
from fractions import Fraction


class TestStrictMetering:
    @pytest.mark.parametrize(
        "source",
        [glucose.SOURCE, enzyme.SOURCE, paper_example.SOURCE],
        ids=["glucose", "enzyme", "figure2"],
    )
    def test_static_assays(self, source):
        compiled = compile_assay(source)
        machine = Machine(AQUACORE_SPEC, strict_metering=True)
        result = AssayExecutor(compiled, machine).run()
        assert result.regenerations == 0

    def test_random_dags(self):
        for seed in range(8):
            dag = generators.layered_random_dag(4, 3, 2, seed=seed, max_ratio=9)
            compiled = compile_dag(dag, spec=AQUACORE_XL_SPEC)
            machine = Machine(AQUACORE_XL_SPEC, strict_metering=True)
            AssayExecutor(compiled, machine).run()

    def test_glycomics_runtime_case(self):
        """Run-time dispensing quantises per-partition volumes, so even the
        measured-volume path stays strict-metering clean... provided the
        separation yields are themselves least-count multiples."""
        compiled = compile_assay(glycomics.SOURCE)
        machine = Machine(
            AQUACORE_SPEC,
            strict_metering=True,
            separation_models={
                "separator1": FractionalYield(Fraction(1, 2)),
                "separator2": FractionalYield(Fraction(1, 2)),
            },
        )
        result = AssayExecutor(compiled, machine).run()
        assert result.regenerations == 0
