"""Documentation-to-code consistency guards.

DESIGN.md promises a bench target per experiment and a module per system;
these tests keep those promises true as the code evolves.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]
DESIGN = (ROOT / "DESIGN.md").read_text()
EXPERIMENTS = (ROOT / "EXPERIMENTS.md").read_text()
README = (ROOT / "README.md").read_text()


class TestDesignPromises:
    def test_every_bench_target_exists(self):
        targets = set(re.findall(r"benchmarks/(bench_\w+\.py)", DESIGN))
        assert targets, "DESIGN.md must list bench targets"
        for target in targets:
            assert (ROOT / "benchmarks" / target).exists(), target

    def test_every_named_module_imports(self):
        modules = set(re.findall(r"`(repro\.[a-z_.]+)`", DESIGN))
        import importlib

        for module in sorted(modules):
            # entries may name attributes (repro.core.rounding.func): try
            # the module first, then its parent
            try:
                importlib.import_module(module)
            except ImportError:
                parent, __, attribute = module.rpartition(".")
                imported = importlib.import_module(parent)
                assert hasattr(imported, attribute), module

    def test_experiments_reference_real_benches(self):
        targets = set(re.findall(r"benchmarks/(bench_\w+\.py)", EXPERIMENTS))
        for target in targets:
            assert (ROOT / "benchmarks" / target).exists(), target

    def test_every_bench_module_is_documented(self):
        """No orphan benchmarks: each bench file appears in EXPERIMENTS.md
        or DESIGN.md."""
        documented = DESIGN + EXPERIMENTS
        for path in (ROOT / "benchmarks").glob("bench_*.py"):
            assert path.name in documented, path.name

    def test_readme_examples_exist(self):
        examples = set(re.findall(r"examples/(\w+\.py)", README))
        assert examples
        for example in examples:
            assert (ROOT / "examples" / example).exists(), example

    def test_docs_exist(self):
        for path in ("docs/LANGUAGE.md", "docs/AIS.md"):
            assert (ROOT / path).exists(), path
