"""The complete Figure 14 reproduction: every number in paper Section 4.2's
enzyme-assay walkthrough, following the authors' manual procedure exactly.

Paper claims checked here (100 nl maximum, 100 pl least count):

1. dilutions have Vnorm 16/3 ~ 5.3; the diluent has Vnorm ~54 (maximum);
2. DAGSolve dispenses 9.8 nl per dilution and 9.8 pl for the enzyme share
   of the 1:999 mix -> underflow; LP fails too;
3. cascading each 1:999 mix into three 1:9 stages gives every intermediate
   Vnorm 16/3, raises diluent uses from 12 to 18 and its Vnorm to ~81;
   the new minimum sits at the 1:99 mixes: 65.6 pl -> still underflow;
4. replicating the diluent three ways drops each replica to Vnorm 27 and
   triples the minimum to ~197 pl -> no underflow;
5. replication *without* cascading only reaches 29.5 pl (3 x 9.8).
"""

from fractions import Fraction

import pytest

from repro.assays import enzyme
from repro.core.cascading import cascade_mix, stage_factors
from repro.core.dagsolve import compute_vnorms, dagsolve
from repro.core.errors import InfeasibleError
from repro.core.limits import PAPER_LIMITS
from repro.core.lp import lp_solve
from repro.core.replication import replicate_node


@pytest.fixture(scope="module")
def baseline():
    return enzyme.build_dag()


@pytest.fixture(scope="module")
def cascaded(baseline):
    dag = baseline
    for reagent in enzyme.REAGENTS:
        dag, __ = cascade_mix(
            dag, f"{reagent}.dil4", stage_factors(Fraction(1000), 3)
        )
    return dag


@pytest.fixture(scope="module")
def cascaded_replicated(cascaded):
    vnorms = compute_vnorms(cascaded)
    weights = {
        e.key: vnorms.edge_vnorm[e.key]
        for e in cascaded.out_edges("diluent")
    }
    dag, __ = replicate_node(cascaded, "diluent", 3, weights=weights)
    return dag


class TestStep1Baseline:
    def test_dilution_vnorm_16_3(self, baseline):
        vnorms = compute_vnorms(baseline)
        for reagent in enzyme.REAGENTS:
            for i in range(1, 5):
                assert vnorms.node_vnorm[f"{reagent}.dil{i}"] == Fraction(16, 3)

    def test_diluent_vnorm_54(self, baseline):
        vnorms = compute_vnorms(baseline)
        assert vnorms.node_vnorm["diluent"] == Fraction(6778, 125)
        assert round(float(vnorms.node_vnorm["diluent"])) == 54
        assert vnorms.max_vnorm() == vnorms.node_vnorm["diluent"]

    def test_dilutions_dispense_9_8_nl(self, baseline):
        assignment = dagsolve(baseline, PAPER_LIMITS)
        volume = assignment.node_volume["enzyme.dil1"]
        assert round(float(volume), 1) == 9.8

    def test_min_is_9_8_pl_underflow(self, baseline):
        assignment = dagsolve(baseline, PAPER_LIMITS)
        key, volume = assignment.min_edge()
        assert key[1].endswith(".dil4")  # the 1:999 mixes
        assert round(float(volume) * 1000, 1) == 9.8  # picoliters
        assert not assignment.feasible

    def test_lp_also_fails(self, baseline):
        """Paper: 'we found that LP also fails to avoid this underflow.'"""
        with pytest.raises(InfeasibleError):
            lp_solve(baseline, PAPER_LIMITS)


class TestStep2Cascading:
    def test_intermediates_at_16_3(self, cascaded):
        vnorms = compute_vnorms(cascaded)
        for reagent in enzyme.REAGENTS:
            for stage in (1, 2):
                node = f"{reagent}.dil4.cascade{stage}"
                assert vnorms.node_vnorm[node] == Fraction(16, 3)

    def test_diluent_uses_grow_12_to_18(self, baseline, cascaded):
        assert baseline.out_degree("diluent") == 12
        assert cascaded.out_degree("diluent") == 18

    def test_diluent_vnorm_81(self, cascaded):
        vnorms = compute_vnorms(cascaded)
        assert round(float(vnorms.node_vnorm["diluent"])) == 81

    def test_new_min_65_6_pl_at_1_99(self, cascaded):
        assignment = dagsolve(cascaded, PAPER_LIMITS)
        key, volume = assignment.min_edge()
        assert key[1].endswith(".dil3")  # the 1:99 mixes now bind
        # exactly 100/1527 nl = 65.49 pl; the paper prints 65.6 pl
        assert volume == Fraction(100, 1527)
        assert 65 <= float(volume) * 1000 <= 66
        assert not assignment.feasible

    def test_cascade_stage_volume(self, cascaded):
        """Our computed volume for the first cascade stage's reagent share.

        The paper prints 123 pl here; recomputing from its own quantities
        (edge Vnorm (1/10)(16/3), diluent Vnorm ~81) gives ~655 pl — see
        EXPERIMENTS.md for the discrepancy note.  Either way the stage is
        comfortably above the least count, which is the claim that matters.
        """
        assignment = dagsolve(cascaded, PAPER_LIMITS)
        volume = assignment.edge_volume[("enzyme", "enzyme.dil4.cascade1")]
        assert volume > PAPER_LIMITS.least_count
        assert round(float(volume) * 1000) == 655


class TestStep3Replication:
    def test_replicas_at_27(self, cascaded_replicated):
        vnorms = compute_vnorms(cascaded_replicated)
        replicas = [
            n.id
            for n in cascaded_replicated.nodes()
            if n.id == "diluent" or n.id.startswith("diluent.rep")
        ]
        assert len(replicas) == 3
        for replica in replicas:
            assert round(float(vnorms.node_vnorm[replica])) == 27

    def test_min_rises_to_197_pl_feasible(self, cascaded_replicated):
        """Paper: 65.5 pl x 3 ~ 196 pl, 'eliminating all underflow'."""
        assignment = dagsolve(cascaded_replicated, PAPER_LIMITS)
        key, volume = assignment.min_edge()
        picoliters = float(volume) * 1000
        assert 190 <= picoliters <= 200
        assert assignment.feasible

    def test_volumes_exactly_triple(self, cascaded, cascaded_replicated):
        before = dagsolve(cascaded, PAPER_LIMITS)
        after = dagsolve(cascaded_replicated, PAPER_LIMITS)
        assert after.min_edge()[1] == 3 * before.min_edge()[1]


class TestStep4ReplicationAlone:
    def test_replication_only_reaches_29_5_pl(self, baseline):
        """Paper: 'using replication without cascading ... resulted in
        underflow with the minimum dispensed volume of 29.5 pl.'"""
        vnorms = compute_vnorms(baseline)
        weights = {
            e.key: vnorms.edge_vnorm[e.key]
            for e in baseline.out_edges("diluent")
        }
        replicated, __ = replicate_node(baseline, "diluent", 3, weights=weights)
        assignment = dagsolve(replicated, PAPER_LIMITS)
        key, volume = assignment.min_edge()
        assert round(float(volume) * 1000, 1) == 29.5
        assert not assignment.feasible
