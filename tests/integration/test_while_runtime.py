"""Run-time WHILE semantics: the serial-dilution-until-threshold pattern.

A dynamic WHILE (condition reads a sensed value) is provisioned for all
HINT iterations (paper Section 3.5, option 1 — conservative volume) but
executes only until the condition turns false on chip, via the same guard
machinery as dynamic IF.
"""

import dataclasses
from fractions import Fraction

import pytest

from repro.compiler import compile_assay
from repro.machine.interpreter import Machine
from repro.machine.spec import AQUACORE_SPEC
from repro.runtime.executor import AssayExecutor

SOURCE = """\
ASSAY dilute_until
START
fluid stock, diluent;
VAR od;
MIX stock AND diluent IN RATIOS 1 : 1 FOR 10;
SENSE OPTICAL it INTO od;
WHILE od > 25 HINT 6 START
MIX it AND diluent IN RATIOS 1 : 1 FOR 10;
SENSE OPTICAL it INTO od;
ENDWHILE
END
"""


def machine_with_stock_od(coefficient):
    spec = dataclasses.replace(
        AQUACORE_SPEC,
        extinction_coefficients={"stock": Fraction(coefficient)},
    )
    return Machine(spec)


class TestDynamicWhile:
    def test_loop_stops_when_condition_clears(self):
        """OD starts at 50 (stock coeff 100, half concentration) and halves
        per dilution: 50 -> 25 stops the loop after exactly one iteration."""
        compiled = compile_assay(SOURCE)
        result = AssayExecutor(compiled, machine_with_stock_od(100)).run()
        mixes = [e for e in result.trace.events if e.opcode == "mix"]
        # initial mix + 1 in-loop dilution (50 -> 25, then 25 > 25 is False)
        assert len(mixes) == 2
        assert float(result.results["od"]) == 25.0
        assert result.skipped_guarded > 0

    def test_loop_runs_longer_with_stronger_stock(self):
        """OD 200 halves as 100, 50, 25: three in-loop dilutions."""
        compiled = compile_assay(SOURCE)
        result = AssayExecutor(compiled, machine_with_stock_od(400)).run()
        mixes = [e for e in result.trace.events if e.opcode == "mix"]
        assert len(mixes) == 1 + 3
        # least-count rounding perturbs the 1:1 draws slightly (~1%)
        assert float(result.results["od"]) == pytest.approx(25.0, rel=0.02)

    def test_hint_bounds_the_loop(self):
        """A stock so strong the threshold is never reached runs all HINT
        iterations and no more."""
        compiled = compile_assay(SOURCE)
        result = AssayExecutor(
            compiled, machine_with_stock_od(100000)
        ).run()
        mixes = [e for e in result.trace.events if e.opcode == "mix"]
        assert len(mixes) == 1 + 6

    def test_all_iterations_provisioned(self):
        """The volume plan covers the worst case: 7 mixes' worth of
        diluent is planned even when fewer run."""
        compiled = compile_assay(SOURCE)
        planned_mixes = [
            n
            for n in compiled.final_dag.nodes()
            if n.kind.value == "mix"
        ]
        assert len(planned_mixes) == 7

    def test_nested_dynamic_loops_rejected(self):
        from repro.lang.errors import SemanticError

        nested = SOURCE.replace(
            "ENDWHILE",
            "WHILE od > 1 HINT 2 START\nMIX it AND diluent FOR 5;\nENDWHILE\nENDWHILE",
        )
        with pytest.raises(SemanticError):
            compile_assay(nested)
