"""Content-addressed compile fingerprints: stability and sensitivity."""

import dataclasses
from fractions import Fraction

from repro.assays import paper_example
from repro.core.dag import AssayDAG
from repro.core.fingerprint import (
    compile_fingerprint,
    fingerprint_dag,
    plan_key,
    source_fingerprint,
    source_key,
    structural_fingerprint,
    vnorm_key,
)
from repro.core.limits import PAPER_LIMITS, HardwareLimits
from repro.machine.spec import AQUACORE_SPEC, AQUACORE_XL_SPEC

OPTIONS = {"use_lp": True, "max_rounds": 4}


def small_dag(order="ab") -> AssayDAG:
    """The same two-input mix built in either insertion order."""
    dag = AssayDAG("small")
    for name in (("A", "B") if order == "ab" else ("B", "A")):
        dag.add_input(name)
    dag.add_mix("M", {"A": 1, "B": 3})
    return dag


class TestStability:
    def test_same_dag_same_fingerprint(self):
        a = paper_example.build_dag()
        b = paper_example.build_dag()
        assert fingerprint_dag(a) == fingerprint_dag(b)

    def test_insertion_order_irrelevant(self):
        assert fingerprint_dag(small_dag("ab")) == fingerprint_dag(
            small_dag("ba")
        )
        assert compile_fingerprint(
            small_dag("ab"), PAPER_LIMITS, AQUACORE_SPEC, OPTIONS
        ) == compile_fingerprint(
            small_dag("ba"), PAPER_LIMITS, AQUACORE_SPEC, OPTIONS
        )

    def test_dag_name_irrelevant(self):
        a = small_dag()
        b = small_dag()
        b.name = "renamed"
        assert fingerprint_dag(a) == fingerprint_dag(b)

    def test_deterministic_across_calls(self):
        dag = paper_example.build_dag()
        fp = compile_fingerprint(dag, PAPER_LIMITS, AQUACORE_SPEC, OPTIONS)
        assert fp == compile_fingerprint(
            dag, PAPER_LIMITS, AQUACORE_SPEC, OPTIONS
        )


class TestSensitivity:
    """Any delta in the compile request must change the fingerprint."""

    def base(self):
        return compile_fingerprint(
            small_dag(), PAPER_LIMITS, AQUACORE_SPEC, OPTIONS
        )

    def test_ratio_delta(self):
        dag = AssayDAG("small")
        dag.add_input("A")
        dag.add_input("B")
        dag.add_mix("M", {"A": 1, "B": 4})
        assert (
            compile_fingerprint(dag, PAPER_LIMITS, AQUACORE_SPEC, OPTIONS)
            != self.base()
        )

    def test_structure_delta(self):
        dag = small_dag()
        dag.add_mix("M2", {"M": 1})
        assert (
            compile_fingerprint(dag, PAPER_LIMITS, AQUACORE_SPEC, OPTIONS)
            != self.base()
        )

    def test_output_fraction_delta(self):
        dag = small_dag()
        dag.node("M").output_fraction = Fraction(1, 2)
        assert (
            compile_fingerprint(dag, PAPER_LIMITS, AQUACORE_SPEC, OPTIONS)
            != self.base()
        )

    def test_limits_delta(self):
        limits = HardwareLimits(
            max_capacity=PAPER_LIMITS.max_capacity * 2,
            least_count=PAPER_LIMITS.least_count,
        )
        assert (
            compile_fingerprint(small_dag(), limits, AQUACORE_SPEC, OPTIONS)
            != self.base()
        )

    def test_spec_delta(self):
        assert (
            compile_fingerprint(
                small_dag(), PAPER_LIMITS, AQUACORE_XL_SPEC, OPTIONS
            )
            != self.base()
        )
        tweaked = dataclasses.replace(AQUACORE_SPEC, n_reservoirs=7)
        assert (
            compile_fingerprint(
                small_dag(), PAPER_LIMITS, tweaked, OPTIONS
            )
            != self.base()
        )

    def test_options_delta(self):
        for delta in (
            {"use_lp": False, "max_rounds": 4},
            {"use_lp": True, "max_rounds": 5},
            {"use_lp": True, "max_rounds": 4, "allow_cascading": False},
        ):
            assert (
                compile_fingerprint(
                    small_dag(), PAPER_LIMITS, AQUACORE_SPEC, delta
                )
                != self.base()
            ), delta


class TestStructuralFingerprint:
    def test_ignores_labels_and_availability(self):
        a = small_dag()
        b = small_dag()
        b.node("A").label = "renamed input"
        b.node("A").available_volume = Fraction(50)
        assert structural_fingerprint(a) == structural_fingerprint(b)

    def test_sees_structure(self):
        b = small_dag()
        b.add_mix("M2", {"M": 2})
        assert structural_fingerprint(small_dag()) != structural_fingerprint(
            b
        )


class TestKeys:
    def test_namespaces_disjoint(self):
        dag = small_dag()
        fp = compile_fingerprint(dag, PAPER_LIMITS, AQUACORE_SPEC, OPTIONS)
        assert plan_key(fp).startswith("plan-")
        assert vnorm_key(dag).startswith("vnorms-")
        assert source_key("abc").startswith("src-")

    def test_vnorm_key_depends_on_targets(self):
        dag = small_dag()
        assert vnorm_key(dag) != vnorm_key(dag, {"M": Fraction(10)})

    def test_source_fingerprint_sensitivity(self):
        base = source_fingerprint("assay x {}", AQUACORE_SPEC, OPTIONS)
        assert base == source_fingerprint("assay x {}", AQUACORE_SPEC, OPTIONS)
        assert base != source_fingerprint("assay y {}", AQUACORE_SPEC, OPTIONS)
        assert base != source_fingerprint(
            "assay x {}", AQUACORE_XL_SPEC, OPTIONS
        )
        assert base != source_fingerprint(
            "assay x {}", AQUACORE_SPEC, {"use_lp": False}
        )
