"""Interplay of the DAG transforms with the statically-unknown machinery:
cascaded (excess-bearing) DAGs must partition and dispense cleanly."""

from fractions import Fraction

import pytest

from repro.core.cascading import cascade_mix, stage_factors
from repro.core.dag import AssayDAG, NodeKind
from repro.core.limits import PAPER_LIMITS
from repro.core.partition import partition_unknown_volumes
from repro.core.runtime_assign import RuntimePlanner


@pytest.fixture
def cascaded_then_separated():
    """An extreme mix cascaded upstream of an unknown-volume separation."""
    dag = AssayDAG("interplay")
    dag.add_input("A")
    dag.add_input("B")
    dag.add_mix("M", {"A": 1, "B": 999})
    dag.add_unary(
        "S", "M", kind=NodeKind.SEPARATE, unknown_volume=True
    )
    dag.add_input("C")
    dag.add_mix("final", {"S": 1, "C": 1})
    cascaded, __ = cascade_mix(dag, "M", stage_factors(Fraction(1000), 3))
    cascaded.validate()
    return cascaded


class TestCascadedPartitioning:
    def test_partitions_cleanly(self, cascaded_then_separated):
        result = partition_unknown_volumes(
            cascaded_then_separated, PAPER_LIMITS
        )
        assert result.n_partitions == 2
        # excess nodes ride along with their producer's partition
        first = result.partitions[0]
        excess_members = [
            m for m in first.members if "excess" in m
        ]
        assert len(excess_members) == 2  # two cascade intermediates

    def test_runtime_walk_with_excess(self, cascaded_then_separated):
        planner = RuntimePlanner(cascaded_then_separated, PAPER_LIMITS)
        session = planner.session()
        first = session.assign(0)
        assert first.feasible
        session.record_measurement("S", Fraction(20))
        second = session.assign(1)
        assert second.feasible
        # the final 1:1 mix draws the measured effluent's share
        (draw,) = [
            volume
            for (src, dst), volume in second.edge_volume.items()
            if dst == "final" and src.startswith("S")
        ]
        assert draw == 20

    def test_vnorms_include_excess_discard(self, cascaded_then_separated):
        planner = RuntimePlanner(cascaded_then_separated, PAPER_LIMITS)
        vnorms = planner.vnorms[0]
        intermediates = [
            n
            for n in planner.partitions[0].members
            if "cascade" in n and "excess" not in n
        ]
        for intermediate in intermediates:
            assert vnorms.node_vnorm[intermediate] == vnorms.node_vnorm["M"]


class TestReplicatedPartitioning:
    def test_replicated_input_feeding_unknown(self):
        """Replicas and splits coexist: a replicated stock whose consumers
        straddle a measurement barrier."""
        from repro.core.replication import replicate_node

        dag = AssayDAG("rep-part")
        dag.add_input("stock")
        for i in range(4):
            dag.add_input(f"r{i}")
            dag.add_mix(f"m{i}", {"stock": 1, f"r{i}": 1})
        dag.add_unary(
            "S", "m0", kind=NodeKind.SEPARATE, unknown_volume=True
        )
        dag.add_mix("late", {"S": 1, "m1": 1})
        replicated, __ = replicate_node(dag, "stock", 2)
        result = partition_unknown_volumes(replicated, PAPER_LIMITS)
        assert result.n_partitions >= 2
        planner = RuntimePlanner(replicated, PAPER_LIMITS)
        session = planner.session()
        # all epoch-0 partitions dispense immediately
        for partition in planner.partitions:
            if session.ready(partition.index):
                assert session.assign(partition.index) is not None
