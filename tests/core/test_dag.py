"""Unit tests for the assay DAG IR (paper Section 3.1, Figure 2)."""

from fractions import Fraction

import pytest

from repro.core.dag import AssayDAG, Edge, Node, NodeKind, fractions_from_ratio
from repro.core.errors import CycleError, DagError, RatioError
from repro.assays import paper_example


class TestFractionsFromRatio:
    def test_one_to_four(self):
        assert fractions_from_ratio((1, 4)) == [Fraction(1, 5), Fraction(4, 5)]

    def test_three_way(self):
        assert fractions_from_ratio((1, 100, 1)) == [
            Fraction(1, 102),
            Fraction(100, 102),
            Fraction(1, 102),
        ]

    def test_fractions_sum_to_one(self):
        fractions = fractions_from_ratio((3, 5, 7, 11))
        assert sum(fractions) == 1

    def test_rejects_empty(self):
        with pytest.raises(RatioError):
            fractions_from_ratio(())

    def test_rejects_nonpositive(self):
        with pytest.raises(RatioError):
            fractions_from_ratio((1, 0))
        with pytest.raises(RatioError):
            fractions_from_ratio((1, -2))


class TestConstruction:
    def test_duplicate_node_rejected(self):
        dag = AssayDAG()
        dag.add_input("A")
        with pytest.raises(DagError):
            dag.add_input("A")

    def test_edge_to_unknown_node_rejected(self):
        dag = AssayDAG()
        dag.add_input("A")
        with pytest.raises(DagError):
            dag.add_edge(Edge("A", "missing"))

    def test_self_loop_rejected(self):
        dag = AssayDAG()
        dag.add_input("A")
        with pytest.raises(DagError):
            dag.add_edge(Edge("A", "A"))

    def test_parallel_edge_rejected(self):
        dag = AssayDAG()
        dag.add_input("A")
        dag.add_mix("M", {"A": 1})
        with pytest.raises(DagError):
            dag.add_edge(Edge("A", "M", Fraction(1, 2)))

    def test_add_mix_sets_ratio_and_fractions(self):
        dag = AssayDAG()
        dag.add_input("A")
        dag.add_input("B")
        node = dag.add_mix("K", {"A": 1, "B": 4})
        assert node.ratio == (1, 4)
        assert dag.edge("A", "K").fraction == Fraction(1, 5)
        assert dag.edge("B", "K").fraction == Fraction(4, 5)

    def test_add_unary_separator(self):
        dag = AssayDAG()
        dag.add_input("A")
        node = dag.add_unary(
            "S", "A", kind=NodeKind.SEPARATE, unknown_volume=True
        )
        assert node.unknown_volume
        assert node.output_fraction is None

    def test_remove_node_removes_incident_edges(self):
        dag = paper_example.build_dag()
        dag.remove_node("L")
        assert not dag.has_edge("B", "L")
        assert not dag.has_edge("L", "M")
        dag_ids = dag.node_ids()
        assert "L" not in dag_ids


class TestQueries:
    def test_figure2_shape(self, fig2_dag):
        assert fig2_dag.node_count == 7
        assert fig2_dag.edge_count == 8
        assert {n.id for n in fig2_dag.inputs()} == {"A", "B", "C"}
        assert {n.id for n in fig2_dag.outputs()} == {"M", "N"}

    def test_degrees(self, fig2_dag):
        assert fig2_dag.out_degree("B") == 2
        assert fig2_dag.in_degree("M") == 2
        assert fig2_dag.predecessors("M") == ["K", "L"]
        assert set(fig2_dag.successors("B")) == {"K", "L"}

    def test_ancestors_is_backward_slice(self, fig2_dag):
        assert set(fig2_dag.ancestors("M")) == {"A", "B", "C", "K", "L"}
        assert set(fig2_dag.ancestors("K")) == {"A", "B"}
        assert fig2_dag.ancestors("A") == []

    def test_descendants(self, fig2_dag):
        assert set(fig2_dag.descendants("B")) == {"K", "L", "M", "N"}
        assert fig2_dag.descendants("N") == []

    def test_contains_and_len(self, fig2_dag):
        assert "K" in fig2_dag
        assert "Z" not in fig2_dag
        assert len(fig2_dag) == 7


class TestTopologicalOrder:
    def test_respects_edges(self, fig2_dag):
        order = fig2_dag.topological_order()
        position = {node_id: i for i, node_id in enumerate(order)}
        for edge in fig2_dag.edges():
            assert position[edge.src] < position[edge.dst]

    def test_deterministic(self, fig2_dag):
        assert fig2_dag.topological_order() == fig2_dag.topological_order()

    def test_cycle_detection(self):
        dag = AssayDAG()
        dag.add_node(Node("a", NodeKind.MIX))
        dag.add_node(Node("b", NodeKind.MIX))
        dag.add_edge(Edge("a", "b"))
        dag.add_edge(Edge("b", "a"))
        with pytest.raises(CycleError):
            dag.topological_order()

    def test_reverse_order(self, fig2_dag):
        forward = fig2_dag.topological_order()
        assert fig2_dag.reverse_topological_order() == list(reversed(forward))


class TestValidate:
    def test_figure2_validates(self, fig2_dag):
        fig2_dag.validate()  # no exception

    def test_fractions_must_sum_to_one(self):
        dag = AssayDAG()
        dag.add_input("A")
        dag.add_input("B")
        dag.add_node(Node("M", NodeKind.MIX))
        dag.add_edge(Edge("A", "M", Fraction(1, 2)))
        dag.add_edge(Edge("B", "M", Fraction(1, 3)))
        with pytest.raises(RatioError):
            dag.validate()

    def test_excess_node_must_be_sink(self):
        dag = AssayDAG()
        dag.add_input("A")
        dag.add_node(Node("X", NodeKind.EXCESS))
        dag.add_node(Node("M", NodeKind.MIX))
        dag.add_edge(Edge("A", "X", is_excess=False))
        with pytest.raises(DagError):
            dag.validate()

    def test_excess_edge_requires_excess_fraction(self):
        dag = AssayDAG()
        dag.add_node(Node("P", NodeKind.MIX))  # excess_fraction defaults to 0
        dag.add_input("A")
        dag.add_edge(Edge("A", "P"))
        dag.add_node(Node("X", NodeKind.EXCESS))
        dag.add_edge(Edge("P", "X", is_excess=True))
        with pytest.raises(DagError):
            dag.validate()

    def test_unknown_volume_must_not_have_output_fraction(self):
        with pytest.raises(RatioError):
            # excess fraction out of range also trips the Node constructor
            Node("n", NodeKind.MIX, excess_fraction=Fraction(3, 2))
        dag = AssayDAG()
        dag.add_input("A")
        node = dag.add_unary("S", "A", kind=NodeKind.SEPARATE)
        node.unknown_volume = True  # inconsistent: fraction still set
        with pytest.raises(DagError):
            dag.validate()


class TestCopySubgraph:
    def test_copy_is_deep_for_structure(self, fig2_dag):
        clone = fig2_dag.copy()
        clone.remove_node("N")
        assert "N" in fig2_dag
        assert "N" not in clone

    def test_copy_preserves_meta_independently(self, fig2_dag):
        clone = fig2_dag.copy()
        clone.node("K").meta["tag"] = 1
        assert "tag" not in fig2_dag.node("K").meta

    def test_subgraph_inner_edges_only(self, fig2_dag):
        sub = fig2_dag.subgraph(["A", "B", "K"])
        assert sub.node_count == 3
        assert sub.edge_count == 2
        assert sub.has_edge("A", "K")
        assert not sub.has_edge("B", "L")

    def test_subgraph_unknown_node_rejected(self, fig2_dag):
        with pytest.raises(DagError):
            fig2_dag.subgraph(["A", "nope"])


class TestDot:
    def test_to_dot_mentions_every_node_and_edge(self, fig2_dag):
        dot = fig2_dag.to_dot()
        for node in fig2_dag.nodes():
            assert f'"{node.id}"' in dot
        assert '"A" -> "K"' in dot
        assert dot.startswith("digraph")


class TestTopologicalOrderCache:
    def test_repeated_calls_return_equal_fresh_lists(self):
        dag = paper_example.build_dag()
        first = dag.topological_order()
        second = dag.topological_order()
        assert first == second
        assert first is not second          # callers may mutate their copy
        first.reverse()
        assert dag.topological_order() == second

    def test_add_node_invalidates(self):
        dag = paper_example.build_dag()
        before = dag.topological_order()
        dag.add_mix("tail", {"M": 1})
        after = dag.topological_order()
        assert "tail" in after
        assert "tail" not in before

    def test_add_edge_invalidates(self):
        dag = AssayDAG()
        dag.add_input("A")
        dag.add_input("B")
        dag.add_node(Node("M", NodeKind.MIX, ratio=(1, 1)))
        dag.add_edge(Edge("A", "M", Fraction(1, 2)))
        order = dag.topological_order()
        assert order.index("A") < order.index("M")
        dag.add_edge(Edge("B", "M", Fraction(1, 2)))
        order = dag.topological_order()
        assert order.index("B") < order.index("M")

    def test_remove_invalidates(self):
        dag = AssayDAG()
        dag.add_input("A")
        dag.add_mix("M", {"A": 1})
        dag.topological_order()
        dag.remove_edge("A", "M")
        dag.remove_node("M")
        assert dag.topological_order() == ["A"]

    def test_copy_and_subgraph_not_poisoned(self):
        dag = paper_example.build_dag()
        dag.topological_order()
        clone = dag.copy()
        clone.add_mix("extra", {"M": 1})
        assert "extra" in clone.topological_order()
        assert "extra" not in dag.topological_order()
