"""Tests for the ratio-preserving rounding strategy (the paper's deferred
"more sophisticated rounding technique")."""

from fractions import Fraction

import pytest

from repro.core.dag import AssayDAG
from repro.core.dagsolve import dagsolve
from repro.core.limits import HardwareLimits, PAPER_LIMITS
from repro.core.rounding import (
    max_ratio_error,
    mean_ratio_error,
    ratio_errors,
    round_assignment,
    round_assignment_ratio_preserving,
)
from repro.assays import generators, glucose


class TestBasics:
    def test_edges_are_least_count_multiples(self, glucose_dag, limits):
        rounded = round_assignment_ratio_preserving(
            dagsolve(glucose_dag, limits)
        )
        for volume in rounded.edge_volume.values():
            assert (volume / limits.least_count).denominator == 1

    def test_method_tag(self, glucose_dag, limits):
        rounded = round_assignment_ratio_preserving(
            dagsolve(glucose_dag, limits)
        )
        assert rounded.method.endswith("+rounded-lr")

    def test_every_edge_within_one_step(self, glucose_dag, limits):
        exact = dagsolve(glucose_dag, limits)
        rounded = round_assignment_ratio_preserving(exact)
        for key, volume in rounded.edge_volume.items():
            if glucose_dag.edge(*key).is_excess:
                continue
            assert abs(volume - exact.edge_volume[key]) <= limits.least_count

    def test_feasible_on_glucose(self, glucose_dag, limits):
        rounded = round_assignment_ratio_preserving(
            dagsolve(glucose_dag, limits)
        )
        assert rounded.feasible


class TestRatioFidelity:
    def test_symmetric_mix_rounds_without_error(self):
        """A 1:1:1 mix whose exact shares are equal must keep the exact
        ratio — the case naive total-quantisation gets wrong."""
        limits = HardwareLimits(max_capacity=100, least_count=Fraction(1, 10))
        dag = AssayDAG()
        for name in "ABC":
            dag.add_input(name)
        dag.add_mix("M", {"A": 1, "B": 1, "C": 1})
        # scale so each share is a non-multiple (e.g. 33.33.. nl)
        rounded = round_assignment_ratio_preserving(dagsolve(dag, limits))
        errors = [e for e in ratio_errors(rounded) if e.node == "M"]
        assert errors == []

    def test_beats_simple_rounding_on_glucose(self, glucose_dag, limits):
        exact = dagsolve(glucose_dag, limits)
        simple = round_assignment(exact)
        smart = round_assignment_ratio_preserving(exact)
        assert max_ratio_error(smart) <= max_ratio_error(simple)
        assert mean_ratio_error(smart) <= mean_ratio_error(simple)

    def test_skewed_mix_prefers_ratio_over_volume(self):
        """1:99 with a fractional minor share: the strategy may shift the
        total a step to land closer to the declared ratio."""
        limits = HardwareLimits(max_capacity=100, least_count=Fraction(1, 10))
        dag = AssayDAG()
        dag.add_input("A")
        dag.add_input("B")
        dag.add_input("C")
        # two consumers of A keep its volume off the grid
        dag.add_mix("skew", {"A": 1, "B": 99})
        dag.add_mix("other", {"A": 3, "C": 1})
        exact = dagsolve(dag, limits)
        simple = round_assignment(exact)
        smart = round_assignment_ratio_preserving(exact)
        skew_err = lambda a: max(
            (e.relative_error for e in ratio_errors(a) if e.node == "skew"),
            default=Fraction(0),
        )
        assert skew_err(smart) <= skew_err(simple)

    def test_never_much_worse_on_random_dags(self, limits):
        worse = 0
        for seed in range(25):
            dag = generators.layered_random_dag(
                5, 3, 3, seed=seed, max_ratio=30
            )
            exact = dagsolve(dag, limits)
            simple = round_assignment(exact)
            smart = round_assignment_ratio_preserving(exact)
            if max_ratio_error(smart) > max_ratio_error(simple):
                worse += 1
        assert worse <= 6  # wins or ties in the vast majority of cases


class TestRepairs:
    def test_sources_never_over_capacity(self, limits):
        for seed in range(10):
            dag = generators.layered_random_dag(4, 3, 3, seed=seed)
            rounded = round_assignment_ratio_preserving(
                dagsolve(dag, limits)
            )
            overflow = [
                v for v in rounded.violations() if v.kind == "overflow"
            ]
            assert overflow == [], (seed, overflow)

    def test_non_deficit_after_rounding(self, limits):
        for seed in range(10):
            dag = generators.layered_random_dag(4, 3, 3, seed=seed)
            rounded = round_assignment_ratio_preserving(
                dagsolve(dag, limits)
            )
            for node in dag.nodes():
                inbound = [
                    e for e in dag.in_edges(node.id) if not e.is_excess
                ]
                outbound = [
                    e for e in dag.out_edges(node.id) if not e.is_excess
                ]
                if not inbound or not outbound:
                    continue
                fraction_out = node.output_fraction or Fraction(1)
                production = fraction_out * sum(
                    rounded.edge_volume[e.key] for e in inbound
                )
                used = sum(rounded.edge_volume[e.key] for e in outbound)
                assert used <= production, node.id


class TestMeanRatioError:
    def test_zero_for_exact(self, fig2_dag, limits):
        assert mean_ratio_error(dagsolve(fig2_dag, limits)) == 0

    def test_mean_at_most_max(self, glucose_dag, limits):
        rounded = round_assignment(dagsolve(glucose_dag, limits))
        assert mean_ratio_error(rounded) <= max_ratio_error(rounded)
