"""Partitioning tests for the statically-unknown case (Section 3.5,
Figure 13 for glycomics, Figure 8 for cross-epoch exports)."""

from fractions import Fraction

import pytest

from repro.core.dag import AssayDAG, NodeKind
from repro.core.limits import PAPER_LIMITS
from repro.core.partition import (
    measurement_epochs,
    partition_unknown_volumes,
)
from repro.assays import glycomics


class TestEpochs:
    def test_static_dag_all_zero(self, fig2_dag):
        epochs = measurement_epochs(fig2_dag)
        assert set(epochs.values()) == {0}

    def test_glycomics_epochs(self, glycomics_dag):
        epochs = measurement_epochs(glycomics_dag)
        assert epochs["mix1"] == 0
        assert epochs["sep1"] == 0
        assert epochs["mix2"] == 1
        assert epochs["mix3"] == 1
        assert epochs["sep2"] == 1
        assert epochs["mix4"] == 2
        assert epochs["sep3"] == 2
        assert epochs["mix6"] == 3

    def test_merge_takes_max(self):
        dag = AssayDAG()
        dag.add_input("A")
        dag.add_input("B")
        dag.add_unary("S", "A", kind=NodeKind.SEPARATE, unknown_volume=True)
        dag.add_mix("M", {"S": 1, "B": 1})
        epochs = measurement_epochs(dag)
        assert epochs["M"] == 1


class TestStaticCase:
    def test_single_partition(self, glucose_dag, limits):
        result = partition_unknown_volumes(glucose_dag, limits)
        assert result.n_partitions == 1
        partition = result.partitions[0]
        assert partition.constrained == []
        assert partition.is_static
        assert set(partition.members) == set(glucose_dag.node_ids())


class TestGlycomicsFigure13:
    @pytest.fixture
    def result(self, glycomics_dag, limits):
        return partition_unknown_volumes(glycomics_dag, limits)

    def test_four_partitions(self, result):
        assert result.n_partitions == glycomics.EXPECTED_PARTITIONS == 4

    def test_partition_membership(self, result):
        members = {
            p.index: set(p.members) for p in result.partitions
        }
        assert members[0] == {"buffer1a", "sample", "mix1", "sep1"}
        assert members[1] == {"buffer2", "mix2", "inc1", "mix3", "sep2"}
        assert members[2] == {"buffer4", "NaOH", "mix4", "mix5", "sep3"}
        assert members[3] == {"buffer5", "mix6"}

    def test_buffer3a_split_50_50(self, result):
        """'Buffer 3a ... is split into two constrained-input nodes each of
        which gets half the default maximum (i.e., 50 nl).'"""
        splits = [
            spec
            for partition in result.partitions
            for spec in partition.constrained
            if spec.source == "buffer3a"
        ]
        assert len(splits) == 2
        for spec in splits:
            assert spec.share == Fraction(1, 2)
            assert spec.static_available == 50
            assert not spec.needs_measurement

    def test_separator_stubs_need_measurement(self, result):
        measured = {
            spec.source
            for partition in result.partitions
            for spec in partition.constrained
            if spec.needs_measurement
        }
        assert measured == {"sep1", "sep2", "sep3"}
        assert set(result.measured_sources) == measured

    def test_partition_order_respects_epochs(self, result):
        epochs = [p.epoch for p in result.partitions]
        assert epochs == sorted(epochs) == [0, 1, 2, 3]

    def test_partition_dags_validate(self, result):
        for partition in result.partitions:
            partition.dag.validate()


class TestFigure8CrossEpochExport:
    """A known-volume node with uses on both sides of a barrier: all of its
    uses are cut and conservatively split into equal portions."""

    @pytest.fixture
    def dag(self):
        dag = AssayDAG()
        dag.add_input("A")
        dag.add_input("B")
        dag.add_mix("X", {"A": 1, "B": 1})        # the Figure 8 node X
        dag.add_unary("Y", "X")                   # early use
        dag.add_unary("U", "Y", kind=NodeKind.SEPARATE, unknown_volume=True)
        # X's later use mixes with U's (unknown-volume) effluent, so it
        # cannot be sized until U has run — the Figure 8 situation.
        dag.add_mix("Z", {"X": 1, "U": 1})
        return dag

    def test_x_is_cut_with_half_shares(self, dag, limits):
        result = partition_unknown_volumes(dag, limits)
        x_specs = [
            spec
            for partition in result.partitions
            for spec in partition.constrained
            if spec.source == "X"
        ]
        # X has 2 uses in 2 different epochs -> two constrained inputs of
        # one half each (Figure 8(b)'s X' and X'').
        assert len(x_specs) == 2
        assert all(spec.share == Fraction(1, 2) for spec in x_specs)
        # X is an internal node: its production is known only at run time.
        assert all(spec.needs_measurement for spec in x_specs)
        assert "X" in result.measured_sources

    def test_m_over_n_refinement(self, limits):
        """m uses landing in one epoch merge into a single m/N input."""
        dag = AssayDAG()
        dag.add_input("A")
        dag.add_input("B")
        dag.add_mix("X", {"A": 1, "B": 1})
        dag.add_unary("u1", "X")
        dag.add_unary("u2", "X")
        dag.add_unary("S", "u1", kind=NodeKind.SEPARATE, unknown_volume=True)
        dag.add_mix("late", {"X": 1, "S": 1})
        result = partition_unknown_volumes(dag, limits)
        x_specs = sorted(
            (
                spec
                for partition in result.partitions
                for spec in partition.constrained
                if spec.source == "X"
            ),
            key=lambda s: s.share,
        )
        assert [spec.share for spec in x_specs] == [
            Fraction(1, 3),
            Fraction(2, 3),
        ]


class TestInputSplitOnly:
    def test_shared_input_without_unknown_nodes_not_split(self, fig2_dag, limits):
        result = partition_unknown_volumes(fig2_dag, limits)
        assert result.n_partitions == 1
        assert result.partitions[0].constrained == []
