"""Run-time volume assignment tests (paper Section 3.5)."""

from fractions import Fraction

import pytest

from repro.core.errors import PartitionError
from repro.core.runtime_assign import RuntimePlanner
from repro.assays import glycomics


@pytest.fixture
def planner(glycomics_dag, limits):
    return RuntimePlanner(glycomics_dag, limits)


class TestPlanner:
    def test_vnorms_precomputed_per_partition(self, planner):
        assert set(planner.vnorms) == {0, 1, 2, 3}

    def test_x2_vnorm_is_1_over_204(self, planner):
        """Figure 13's flagged value."""
        partition = planner.partitions[2]
        (x2,) = [s for s in partition.constrained if s.source == "sep2"]
        assert (
            planner.vnorms[2].node_vnorm[x2.node_id]
            == glycomics.EXPECTED_X2_VNORM
        )

    def test_static_partition_vnorms(self, planner):
        vnorms = planner.vnorms[0]
        assert vnorms.node_input_vnorm["sep1"] == 1
        assert vnorms.node_vnorm["buffer1a"] == Fraction(1, 2)


class TestSession:
    def test_partition0_needs_no_measurement(self, planner):
        session = planner.session()
        assert session.ready(0)
        assignment = session.assign(0)
        assert assignment.node_input_volume["sep1"] == 100
        assert assignment.edge_volume[("buffer1a", "mix1")] == 50

    def test_partition1_waits_for_sep1(self, planner):
        session = planner.session()
        session.assign(0)
        assert not session.ready(1)
        assert session.missing_measurements(1) == ["sep1"]
        with pytest.raises(PartitionError):
            session.assign(1)

    def test_min_ratio_scaling(self, planner):
        """The constrained input caps the scale at available/Vnorm."""
        session = planner.session()
        session.assign(0)
        session.record_measurement("sep1", 30)
        assignment = session.assign(1)
        # X1's Vnorm is 1/22; capacity scale would be 100; the measured 30
        # caps it at 30 * 22 = 660 > 100, so capacity still binds... check
        # the actual arithmetic instead of assuming:
        x1_stub = [
            s for s in planner.partitions[1].constrained if s.source == "sep1"
        ][0]
        drawn = sum(
            volume
            for (src, __), volume in assignment.edge_volume.items()
            if src == x1_stub.node_id
        )
        assert drawn <= 30

    def test_small_measurement_scales_partition_down(self, planner):
        session = planner.session()
        session.assign(0)
        session.record_measurement("sep1", Fraction(1, 2))
        assignment = session.assign(1)
        # scale = available / Vnorm = (1/2) / (1/22) = 11 < capacity scale
        assert assignment.scale == 11
        assert assignment.node_input_volume["mix3"] == 11

    def test_full_walk(self, planner):
        session = planner.session()
        assignments = session.assign_all(
            {"sep1": 40, "sep2": 20, "sep3": 15}
        )
        assert set(assignments) == {0, 1, 2, 3}
        final = assignments[3]
        assert final.node_volume["mix6"] == 30  # 15 effluent + 15 buffer5

    def test_measurement_for_unknown_source_only(self, planner):
        session = planner.session()
        with pytest.raises(PartitionError):
            session.record_measurement("buffer3a", 10)

    def test_negative_measurement_rejected(self, planner):
        session = planner.session()
        with pytest.raises(PartitionError):
            session.record_measurement("sep1", -1)

    def test_unknown_partition_index(self, planner):
        session = planner.session()
        with pytest.raises(PartitionError):
            session.assign(9)


class TestStaticAssayThroughPlanner:
    def test_single_static_partition_assigns_immediately(
        self, glucose_dag, limits
    ):
        planner = RuntimePlanner(glucose_dag, limits)
        session = planner.session()
        assignment = session.assign(0)
        assert assignment.feasible
        assert assignment.node_volume["Reagent"] == 100


class TestExporterRecording:
    def test_known_volume_exports_recorded(self, limits):
        from repro.core.dag import AssayDAG, NodeKind

        dag = AssayDAG()
        dag.add_input("A")
        dag.add_input("B")
        dag.add_mix("X", {"A": 1, "B": 1})
        dag.add_unary("Y", "X")
        dag.add_unary("U", "Y", kind=NodeKind.SEPARATE, unknown_volume=True)
        dag.add_mix("Z", {"X": 1, "U": 1})
        planner = RuntimePlanner(dag, limits)
        session = planner.session()
        # Assign partitions in order until X's home partition is done.
        x_partition = planner.partitioned.partition_of("X").index
        session.assign(x_partition)
        assert "X" in session.productions  # recorded automatically
