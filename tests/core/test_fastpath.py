"""The float fast path must mirror the exact DAGSolve bit-for-bit in
structure; these tests pin it against the exact solver."""

import pytest

from repro.core.dagsolve import dagsolve
from repro.core.fastpath import fast_dagsolve, fast_vnorms
from repro.core.limits import PAPER_LIMITS
from repro.assays import enzyme, generators, glucose, paper_example


def agree(exact, fast, rel=1e-9):
    return abs(float(exact) - fast) <= rel * max(1.0, abs(float(exact)))


class TestAgainstExactSolver:
    @pytest.mark.parametrize(
        "dag_builder",
        [
            paper_example.build_dag,
            glucose.build_dag,
            enzyme.build_dag,
            lambda: generators.binary_mix_tree(4),
            lambda: generators.fanout_chain(6),
            lambda: generators.layered_random_dag(5, 3, 3, seed=11),
            lambda: generators.layered_random_dag(
                5, 3, 3, seed=12, separator_probability=0.3
            ),
        ],
    )
    def test_volumes_agree(self, dag_builder):
        dag = dag_builder()
        exact = dagsolve(dag, PAPER_LIMITS)
        fast = fast_dagsolve(dag, PAPER_LIMITS)
        for node_id, volume in exact.node_volume.items():
            assert agree(volume, fast.node_volume[node_id]), node_id
        for key, volume in exact.edge_volume.items():
            assert agree(volume, fast.edge_volume[key]), key

    def test_feasibility_verdicts_agree(self):
        for builder in (paper_example.build_dag, glucose.build_dag, enzyme.build_dag):
            dag = builder()
            exact = dagsolve(dag, PAPER_LIMITS)
            fast = fast_dagsolve(dag, PAPER_LIMITS)
            assert exact.feasible == fast.feasible, dag.name

    def test_min_edge_agrees(self, enzyme_dag):
        exact = dagsolve(enzyme_dag, PAPER_LIMITS)
        fast = fast_dagsolve(enzyme_dag, PAPER_LIMITS)
        exact_key, exact_volume = exact.min_edge()
        fast_key, fast_volume = fast.min_edge
        assert agree(exact_volume, fast_volume)

    def test_constrained_inputs(self):
        from fractions import Fraction

        from repro.core.dag import AssayDAG, Node, NodeKind

        dag = AssayDAG()
        dag.add_node(
            Node("X", NodeKind.CONSTRAINED_INPUT, available_volume=Fraction(10))
        )
        dag.add_input("B")
        dag.add_mix("M", {"X": 1, "B": 1})
        fast = fast_dagsolve(dag, PAPER_LIMITS)
        assert fast.edge_volume[("X", "M")] == pytest.approx(10.0)

    def test_enzyme10_extreme_ratios_handled(self):
        """The whole point of the fast path: enzyme10's 1:(10^k - 1) ratios
        stay cheap in floats."""
        dag = enzyme.build_dag(10)
        fast = fast_dagsolve(dag, PAPER_LIMITS)
        assert not fast.feasible  # tiny shares underflow, like exact mode

    def test_output_targets(self, fig2_dag):
        fast = fast_dagsolve(fig2_dag, PAPER_LIMITS, {"M": 2.0, "N": 1.0})
        node_vnorm, __, __ = fast_vnorms(fig2_dag, {"M": 2.0, "N": 1.0})
        assert node_vnorm["K"] == pytest.approx(4 / 3)


class TestPreparedContext:
    def test_context_solve_matches_fresh_solve(self):
        from repro.core.fastpath import prepare_fast

        dag = enzyme.build_dag(4)
        context = prepare_fast(dag)
        fresh = fast_dagsolve(dag, PAPER_LIMITS)
        reused = fast_dagsolve(context, PAPER_LIMITS)
        assert reused.node_volume == fresh.node_volume
        assert reused.edge_volume == fresh.edge_volume

    def test_context_reusable_across_calls(self):
        from repro.core.fastpath import fast_vnorms, prepare_fast

        dag = paper_example.build_dag()
        context = prepare_fast(dag)
        a = fast_dagsolve(context, PAPER_LIMITS)
        b = fast_dagsolve(context, PAPER_LIMITS)
        assert a.node_volume == b.node_volume
        vn1 = fast_vnorms(context, None)
        vn2 = fast_vnorms(dag, None)
        assert vn1[0] == vn2[0]

    def test_agrees_with_exact_solver(self):
        from repro.core.fastpath import prepare_fast

        dag = glucose.build_dag()
        exact = dagsolve(dag, PAPER_LIMITS)
        approx = fast_dagsolve(prepare_fast(dag), PAPER_LIMITS)
        for node_id, volume in exact.node_volume.items():
            assert abs(float(volume) - approx.node_volume[node_id]) < 1e-6
