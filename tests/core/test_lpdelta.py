"""The incremental LP builder: model identity, reuse, honest warm starts."""

import numpy as np
import pytest

from repro.assays import enzyme, generators, glucose
from repro.core.cascading import cascade_extreme_mixes
from repro.core.errors import DagError
from repro.core.limits import PAPER_LIMITS
from repro.core.lp import solve_model
from repro.core.lpdelta import IncrementalLPBuilder
from repro.core.lpmodel import build_lp_model

OPTION_COMBOS = (
    {},
    {"output_tolerance": None},
    {"dagsolve_constraints": True},
    {"min_volume_bounds": False},
)


def corpus():
    return [
        glucose.build_dag(),
        enzyme.build_dag(4),
        generators.serial_dilution(6),
        generators.binary_mix_tree(3),
        generators.fanout_chain(4),
    ]


def assert_models_equal(full, inc):
    assert list(full.var_index.items()) == list(inc.var_index.items())
    assert np.array_equal(full.objective, inc.objective)
    for reference, candidate in ((full.a_ub, inc.a_ub), (full.a_eq, inc.a_eq)):
        assert np.array_equal(reference.indptr, candidate.indptr)
        assert np.array_equal(reference.indices, candidate.indices)
        assert np.array_equal(reference.data, candidate.data)
    assert np.array_equal(full.b_ub, inc.b_ub)
    assert np.array_equal(full.b_eq, inc.b_eq)
    assert full.bounds == inc.bounds
    assert full.rows_ub == inc.rows_ub
    assert full.rows_eq == inc.rows_eq


class TestModelIdentity:
    @pytest.mark.parametrize("options", OPTION_COMBOS, ids=str)
    def test_cold_and_warm_builds_match_reference(self, options):
        builder = IncrementalLPBuilder(PAPER_LIMITS, **options)
        for dag in corpus():
            reference = build_lp_model(dag, PAPER_LIMITS, **options)
            assert_models_equal(reference, builder.build(dag))  # cold
            assert_models_equal(reference, builder.build(dag))  # warm

    def test_alternating_dags_match_reference(self):
        """The retry-loop shape: the builder flips between a DAG and its
        cascaded rewrite without ever serving a stale bundle."""
        base = enzyme.build_dag(6)
        cascaded, __ = cascade_extreme_mixes(base, PAPER_LIMITS)
        builder = IncrementalLPBuilder(PAPER_LIMITS)
        for dag in (base, cascaded, base, cascaded):
            assert_models_equal(
                build_lp_model(dag, PAPER_LIMITS), builder.build(dag)
            )

    def test_structural_mutation_invalidates_derived_caches(self):
        dag = generators.serial_dilution(5)
        builder = IncrementalLPBuilder(PAPER_LIMITS)
        builder.build(dag)
        assert "lp-structure" in dag._derived
        edge = dag.in_edges(dag.outputs()[0].id)[0]
        removed = dag.remove_edge(*edge.key)
        assert "lp-structure" not in dag._derived
        assert "lp-varindex" not in dag._derived
        dag.add_edge(removed)
        assert_models_equal(
            build_lp_model(dag, PAPER_LIMITS), builder.build(dag)
        )


class TestReuseStats:
    def test_warm_rebuild_reuses_every_bundle(self):
        dag = enzyme.build_dag(4)
        builder = IncrementalLPBuilder(PAPER_LIMITS)
        builder.build(dag)
        cold = builder.last_stats
        assert cold["reused"] == 0 and cold["nodes"] > 0
        builder.build(dag)
        warm = builder.last_stats
        assert warm["nodes"] == cold["nodes"]
        assert warm["reused"] == warm["nodes"]

    def test_stats_ride_on_model_meta(self):
        dag = glucose.build_dag()
        builder = IncrementalLPBuilder(PAPER_LIMITS)
        builder.build(dag)
        model = builder.build(dag)
        assert model.meta["incremental"] == builder.last_stats

    def test_unknown_volume_rejected_like_reference(self):
        """Unknown-volume nodes with downstream uses (the partition error
        case) are rejected with the reference's message."""
        dag = generators.serial_dilution(3)
        node = next(
            n
            for n in dag.nodes()
            if dag.out_degree(n.id) > 0 and dag.in_degree(n.id) > 0
        )
        node.unknown_volume = True
        node.output_fraction = None
        with pytest.raises(DagError) as reference:
            build_lp_model(dag, PAPER_LIMITS)
        builder = IncrementalLPBuilder(PAPER_LIMITS)
        with pytest.raises(DagError) as incremental:
            builder.build(dag)
        assert str(incremental.value) == str(reference.value)


class TestWarmStartMetadata:
    def test_solution_records_honest_warm_start(self):
        dag = glucose.build_dag()
        builder = IncrementalLPBuilder(PAPER_LIMITS)
        model = builder.build(dag)
        cold = solve_model(model)
        guess = [float(cold.edge_volume[key]) for key in model.var_index]
        warm = solve_model(builder.build(dag), warm_start=guess)
        note = warm.meta["warm_start"]
        assert note["provided"] is True
        assert note["applied"] is False  # scipy's HiGHS ignores x0
        assert note["reason"]
        assert warm.edge_volume == cold.edge_volume

    def test_stale_warm_start_reports_length_mismatch(self):
        dag = glucose.build_dag()
        builder = IncrementalLPBuilder(PAPER_LIMITS)
        model = builder.build(dag)
        result = solve_model(model, warm_start=[1.0, 2.0])
        note = result.meta["warm_start"]
        assert note["applied"] is False
        assert "stale vector" in note["reason"]

    def test_incremental_meta_reaches_assignment(self):
        dag = glucose.build_dag()
        builder = IncrementalLPBuilder(PAPER_LIMITS)
        builder.build(dag)
        assignment = solve_model(builder.build(dag))
        assert assignment.meta["incremental"]["reused"] > 0
