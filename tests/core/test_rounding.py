"""Rounding tests (paper Section 4.2: errors were 'no more than 2%')."""

from fractions import Fraction

from repro.core.dagsolve import dagsolve
from repro.core.rounding import max_ratio_error, ratio_errors, round_assignment


class TestRoundAssignment:
    def test_all_edges_become_multiples(self, fig2_dag, limits):
        rounded = round_assignment(dagsolve(fig2_dag, limits))
        for key, volume in rounded.edge_volume.items():
            steps = volume / limits.least_count
            assert steps.denominator == 1, key

    def test_node_volumes_rebuilt_from_edges(self, fig2_dag, limits):
        rounded = round_assignment(dagsolve(fig2_dag, limits))
        for node in fig2_dag.nodes():
            inbound = fig2_dag.in_edges(node.id)
            if not inbound:
                continue
            total = sum(rounded.edge_volume[e.key] for e in inbound)
            assert rounded.node_input_volume[node.id] == total

    def test_method_records_provenance(self, fig2_dag, limits):
        rounded = round_assignment(dagsolve(fig2_dag, limits))
        assert rounded.method == "dagsolve+rounded"
        assert rounded.meta["rounded_from"] == "dagsolve"

    def test_idempotent(self, fig2_dag, limits):
        once = round_assignment(dagsolve(fig2_dag, limits))
        twice = round_assignment(once)
        assert once.edge_volume == twice.edge_volume


class TestRatioErrors:
    def test_exact_assignment_has_no_errors(self, fig2_dag, limits):
        assert ratio_errors(dagsolve(fig2_dag, limits)) == []
        assert max_ratio_error(dagsolve(fig2_dag, limits)) == 0

    def test_rounding_error_small_on_paper_assays(
        self, fig2_dag, glucose_dag, enzyme_dag, limits
    ):
        """The paper's <= 2% claim, checked per assay (enzyme after its
        transforms would be the real case; the raw DAG still rounds fine)."""
        for dag in (fig2_dag, glucose_dag):
            rounded = round_assignment(dagsolve(dag, limits))
            assert float(max_ratio_error(rounded)) <= 0.02, dag.name

    def test_rounding_never_causes_overflow_here(self, glucose_dag, limits):
        rounded = round_assignment(dagsolve(glucose_dag, limits))
        assert not any(v.kind == "overflow" for v in rounded.violations())

    def test_error_objects_carry_context(self, glucose_dag, limits):
        rounded = round_assignment(dagsolve(glucose_dag, limits))
        for error in ratio_errors(rounded):
            assert error.node in glucose_dag.node_ids()
            assert error.declared > 0
            assert error.relative_error >= 0
            assert "%" in str(error)

    def test_coarser_least_count_means_larger_error(self, glucose_dag):
        from repro.core.limits import HardwareLimits

        fine = HardwareLimits(max_capacity=100, least_count=Fraction(1, 100))
        coarse = HardwareLimits(max_capacity=100, least_count=Fraction(1))
        fine_error = max_ratio_error(
            round_assignment(dagsolve(glucose_dag, fine))
        )
        coarse_error = max_ratio_error(
            round_assignment(dagsolve(glucose_dag, coarse))
        )
        assert fine_error <= coarse_error
