"""LP solver tests (paper Section 3.2, evaluated in Section 4.3)."""

from fractions import Fraction

import pytest

from repro.core.dag import AssayDAG
from repro.core.dagsolve import dagsolve
from repro.core.errors import InfeasibleError
from repro.core.limits import HardwareLimits
from repro.core.lp import assignment_from_edge_volumes, lp_solve
from repro.core.rounding import ratio_errors


class TestFeasibleCases:
    def test_figure2_feasible(self, fig2_dag, limits):
        assignment = lp_solve(fig2_dag, limits)
        assert assignment.method == "lp"
        assert assignment.feasible

    def test_lp_respects_ratios(self, fig2_dag, limits):
        assignment = lp_solve(fig2_dag, limits)
        # HiGHS returns floats; ratio deviation must be numerically tiny.
        worst = max(
            (float(e.relative_error) for e in ratio_errors(assignment)),
            default=0.0,
        )
        assert worst < 1e-9

    def test_lp_output_at_least_dagsolve(self, fig2_dag, limits):
        """LP maximises total output; DAGSolve's feasible point is a lower
        bound on the optimum."""
        lp = lp_solve(fig2_dag, limits)
        ds = dagsolve(fig2_dag, limits)
        lp_total = sum(
            lp.node_volume[n.id] for n in fig2_dag.outputs()
        )
        ds_total = sum(
            ds.node_volume[n.id] for n in fig2_dag.outputs()
        )
        assert float(lp_total) >= float(ds_total) - 1e-6

    def test_glucose_feasible(self, glucose_dag, limits):
        assert lp_solve(glucose_dag, limits).feasible

    def test_output_tolerance_binds_outputs(self, fig2_dag, limits):
        assignment = lp_solve(fig2_dag, limits, output_tolerance=0.1)
        m = float(assignment.node_volume["M"])
        n = float(assignment.node_volume["N"])
        assert 0.9 * n - 1e-6 <= m <= 1.1 * n + 1e-6


class TestInfeasibleCases:
    def test_extreme_ratio_infeasible(self, coarse_limits):
        """The introduction's 1:399 example on max 100 / least count 1."""
        dag = AssayDAG()
        dag.add_input("A")
        dag.add_input("B")
        dag.add_mix("M", {"A": 1, "B": 399})
        with pytest.raises(InfeasibleError):
            lp_solve(dag, coarse_limits)

    def test_enzyme_infeasible_like_paper(self, enzyme_dag, limits):
        """Section 4.2: 'we found that LP also fails to avoid this
        underflow' — the raw enzyme DAG has no feasible assignment."""
        with pytest.raises(InfeasibleError):
            lp_solve(enzyme_dag, limits)


class TestLPMoreGeneralThanDAGSolve:
    def test_lp_succeeds_where_dagsolve_fails(self):
        """DAGSolve's equal-output constraint can be the only obstacle:
        two outputs with wildly different natural scales."""
        limits = HardwareLimits(max_capacity=100, least_count=1)
        dag = AssayDAG()
        dag.add_input("A")
        dag.add_input("B")
        dag.add_input("C")
        dag.add_input("D")
        # Thirty 1:1 mixes drive A's Vnorm to 15, pinning the global scale
        # at 100/15; the skewed output's minor share (1/10) then lands at
        # 0.67 nl < 1 nl.  LP may instead shrink the fan-out mixes and keep
        # every bound satisfied.
        for i in range(30):
            dag.add_mix(f"out{i}", {"A": 1, "B": 1})
        dag.add_mix("out_small", {"C": 1, "D": 9})
        ds = dagsolve(dag, limits)
        assert not ds.feasible  # C's share underflows under equal outputs
        lp = lp_solve(dag, limits, output_tolerance=None)
        assert lp.feasible

    def test_dagsolve_extra_constraints_shrink_lp(self, fig2_dag, limits):
        free = lp_solve(fig2_dag, limits, output_tolerance=None)
        constrained = lp_solve(
            fig2_dag, limits, output_tolerance=None, dagsolve_constraints=True
        )
        assert constrained.feasible
        free_total = sum(free.node_volume[n.id] for n in fig2_dag.outputs())
        constrained_total = sum(
            constrained.node_volume[n.id] for n in fig2_dag.outputs()
        )
        assert float(constrained_total) <= float(free_total) + 1e-6


class TestAssignmentFromEdgeVolumes:
    def test_node_volumes_derived(self, fig2_dag, limits):
        ds = dagsolve(fig2_dag, limits)
        rebuilt = assignment_from_edge_volumes(
            fig2_dag, limits, dict(ds.edge_volume), method="test"
        )
        assert rebuilt.node_volume == ds.node_volume
        assert rebuilt.node_input_volume == ds.node_input_volume

    def test_excess_edge_receives_surplus(self, limits):
        from repro.core.cascading import cascade_mix, stage_factors

        dag = AssayDAG()
        dag.add_input("A")
        dag.add_input("B")
        dag.add_mix("M", {"A": 1, "B": 99})
        cascaded, report = cascade_mix(
            dag, "M", stage_factors(Fraction(100), 2)
        )
        lp = lp_solve(cascaded, limits)
        (intermediate,) = report.intermediate_ids
        excess_key = (intermediate, f"{intermediate}.excess")
        assert lp.edge_volume[excess_key] >= 0
        production = lp.node_volume[intermediate]
        used = lp.edge_volume[(intermediate, "M")]
        assert lp.edge_volume[excess_key] == production - used
