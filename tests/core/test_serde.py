"""Exact JSON serialization of DAGs, assignments, and plans."""

from fractions import Fraction

import pytest

from repro.assays import paper_example
from repro.core.dag import AssayDAG
from repro.core.dagsolve import dagsolve
from repro.core.hierarchy import VolumeManager
from repro.core.limits import PAPER_LIMITS
from repro.core.rounding import round_assignment
from repro.core.serde import (
    SerdeError,
    assignment_from_dict,
    assignment_to_dict,
    dag_from_dict,
    dag_to_dict,
    decode_value,
    dumps_canonical,
    encode_value,
    fraction_from_str,
    fraction_to_str,
    limits_from_dict,
    limits_to_dict,
    plan_from_dict,
    plan_to_dict,
    vnorms_from_dict,
    vnorms_to_dict,
)


class TestValues:
    def test_fraction_round_trip(self):
        for value in (Fraction(1, 3), Fraction(-7, 2), Fraction(0)):
            assert fraction_from_str(fraction_to_str(value)) == value

    def test_tagged_values_round_trip(self):
        for value in (
            Fraction(22, 7),
            (1, "two", Fraction(3, 4)),
            {"nested": [Fraction(1, 2), None, True]},
            3.25,
            "plain",
            7,
        ):
            assert decode_value(encode_value(value)) == value

    def test_non_serializable_raises(self):
        with pytest.raises(SerdeError):
            encode_value(object())

    def test_canonical_dump_is_stable(self):
        a = dumps_canonical({"b": 1, "a": [2, 3]})
        b = dumps_canonical({"a": [2, 3], "b": 1})
        assert a == b


class TestDagRoundTrip:
    def test_figure2(self):
        dag = paper_example.build_dag()
        clone = dag_from_dict(dag_to_dict(dag))
        assert dag_to_dict(clone) == dag_to_dict(dag)
        assert clone.name == dag.name
        assert clone.topological_order() == dag.topological_order()
        for node_id in dag.node_ids():
            original, copy = dag.node(node_id), clone.node(node_id)
            assert original.kind is copy.kind
            assert original.output_fraction == copy.output_fraction

    def test_insertion_order_preserved(self):
        dag = AssayDAG("order")
        dag.add_input("Z")
        dag.add_input("A")
        dag.add_mix("M", {"Z": 1, "A": 1})
        clone = dag_from_dict(dag_to_dict(dag))
        assert [n.id for n in clone.nodes()] == [n.id for n in dag.nodes()]

    def test_unserializable_meta_raises(self):
        dag = AssayDAG("meta")
        node = dag.add_input("A")
        node.meta["guard"] = object()
        with pytest.raises(SerdeError):
            dag_to_dict(dag)


class TestLimitsAndResults:
    def test_limits_round_trip(self):
        clone = limits_from_dict(limits_to_dict(PAPER_LIMITS))
        assert clone == PAPER_LIMITS

    def test_assignment_round_trip_is_exact(self):
        dag = paper_example.build_dag()
        assignment = dagsolve(dag, PAPER_LIMITS)
        data = assignment_to_dict(assignment)
        clone = assignment_from_dict(data, dag)
        assert clone.node_volume == assignment.node_volume
        assert clone.edge_volume == assignment.edge_volume
        assert assignment_to_dict(clone) == data

    def test_vnorms_round_trip(self):
        from repro.core.dagsolve import compute_vnorms

        vnorms = compute_vnorms(paper_example.build_dag())
        clone = vnorms_from_dict(vnorms_to_dict(vnorms))
        assert clone.node_vnorm == vnorms.node_vnorm
        assert vnorms_to_dict(clone) == vnorms_to_dict(vnorms)


class TestPlanRoundTrip:
    def test_plan_with_transforms(self):
        from repro.assays import enzyme

        dag = enzyme.build_dag()
        plan = VolumeManager(PAPER_LIMITS).plan(dag)
        assert plan.transforms, "enzyme should cascade/replicate"
        data = plan_to_dict(plan)
        clone = plan_from_dict(data)
        assert clone.status == plan.status
        assert len(clone.attempts) == len(plan.attempts)
        assert len(clone.transforms) == len(plan.transforms)
        assert clone.assignment.node_volume == plan.assignment.node_volume
        assert plan_to_dict(clone) == data

    def test_rounded_assignment_shares_decoded_dag(self):
        dag = paper_example.build_dag()
        plan = VolumeManager(PAPER_LIMITS).plan(dag)
        rounded = round_assignment(plan.assignment)
        data = plan_to_dict(plan)
        clone = plan_from_dict(data)
        restored = assignment_from_dict(
            assignment_to_dict(rounded), clone.dag
        )
        assert restored.dag is clone.dag
        assert restored.node_volume == rounded.node_volume

    def test_version_mismatch_rejected(self):
        dag = paper_example.build_dag()
        plan = VolumeManager(PAPER_LIMITS).plan(dag)
        data = plan_to_dict(plan)
        data["version"] = 999
        with pytest.raises(SerdeError):
            plan_from_dict(data)
