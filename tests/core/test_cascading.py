"""Cascading tests (paper Section 3.4.1, Figure 7)."""

from fractions import Fraction

import pytest

from repro.core.cascading import (
    cascade_extreme_mixes,
    cascade_mix,
    find_extreme_mixes,
    is_extreme_mix,
    stage_factors,
)
from repro.core.dag import AssayDAG, NodeKind
from repro.core.dagsolve import compute_vnorms, dagsolve
from repro.core.errors import DagError, RatioError, ResourceExhaustedError
from repro.core.limits import HardwareLimits


def skewed_dag(ratio: int) -> AssayDAG:
    dag = AssayDAG(f"skew{ratio}")
    dag.add_input("A")
    dag.add_input("B")
    dag.add_mix("M", {"A": 1, "B": ratio})
    return dag


class TestExtremeDetection:
    def test_1_999_extreme_at_paper_limits(self, limits):
        assert is_extreme_mix(skewed_dag(999), "M", limits)

    def test_1_99_not_extreme_at_paper_limits(self, limits):
        assert not is_extreme_mix(skewed_dag(99), "M", limits)

    def test_1_399_extreme_on_coarse_hardware(self, coarse_limits):
        """The introduction's example: 1:399 with range 100."""
        assert is_extreme_mix(skewed_dag(399), "M", coarse_limits)

    def test_inputs_not_extreme(self, limits):
        dag = skewed_dag(999)
        assert not is_extreme_mix(dag, "A", limits)

    def test_find_extreme_mixes_enzyme(self, enzyme_dag, limits):
        extremes = find_extreme_mixes(enzyme_dag, limits)
        assert sorted(extremes) == [
            "enzyme.dil4",
            "inhibitor.dil4",
            "substrate.dil4",
        ]


class TestStageFactors:
    def test_paper_example_1000_three_stages(self):
        """1:999 -> three 1:9 mixes (Figure 14)."""
        assert stage_factors(Fraction(1000), 3) == [10, 10, 10]

    def test_paper_example_400_two_stages(self):
        """1:399 -> 1:19 followed by 1:19 (the abstract's example)."""
        assert stage_factors(Fraction(400), 2) == [20, 20]

    def test_paper_example_100_two_stages(self):
        """1:99 -> 1:9 then 1:9 (Figure 7)."""
        assert stage_factors(Fraction(100), 2) == [10, 10]

    def test_product_is_exact_for_ragged_factor(self):
        factors = stage_factors(Fraction(1000), 2)
        product = Fraction(1)
        for factor in factors:
            product *= factor
        assert product == 1000

    def test_rejects_trivial_factor(self):
        with pytest.raises(RatioError):
            stage_factors(Fraction(1), 2)

    def test_depth_one_identity(self):
        assert stage_factors(Fraction(50), 1) == [50]


class TestCascadeMix:
    def test_figure7_structure(self, limits):
        """1:99 -> two 1:9 stages with a 9/10 excess at the intermediate."""
        dag = skewed_dag(99)
        cascaded, report = cascade_mix(dag, "M", [Fraction(10), Fraction(10)])
        assert report.depth == 2
        (intermediate,) = report.intermediate_ids
        node = cascaded.node(intermediate)
        assert node.excess_fraction == Fraction(9, 10)
        assert cascaded.edge("A", intermediate).fraction == Fraction(1, 10)
        assert cascaded.edge("B", intermediate).fraction == Fraction(9, 10)
        assert cascaded.edge(intermediate, "M").fraction == Fraction(1, 10)
        assert cascaded.edge("B", "M").fraction == Fraction(9, 10)
        excess_nodes = cascaded.excess_nodes()
        assert len(excess_nodes) == 1
        cascaded.validate()

    def test_original_dag_untouched(self, limits):
        dag = skewed_dag(99)
        cascade_mix(dag, "M", [Fraction(10), Fraction(10)])
        assert dag.edge("A", "M").fraction == Fraction(1, 100)

    def test_downstream_consumers_preserved(self, limits):
        dag = skewed_dag(99)
        dag.add_unary("H", "M")
        cascaded, __ = cascade_mix(dag, "M", [Fraction(10), Fraction(10)])
        assert cascaded.has_edge("M", "H")

    def test_intermediate_vnorm_equals_final(self, limits):
        """Paper: 'Each of the newly-created intermediate nodes is assigned
        a Vnorm ... equal to that of the original extreme ratio node.'"""
        dag = skewed_dag(999)
        cascaded, report = cascade_mix(
            dag, "M", [Fraction(10), Fraction(10), Fraction(10)]
        )
        vnorms = compute_vnorms(cascaded)
        for intermediate in report.intermediate_ids:
            assert vnorms.node_vnorm[intermediate] == vnorms.node_vnorm["M"]

    def test_wrong_factor_product_rejected(self):
        dag = skewed_dag(99)
        with pytest.raises(RatioError):
            cascade_mix(dag, "M", [Fraction(10), Fraction(5)])

    def test_no_excess_flag_blocks_cascading(self):
        dag = skewed_dag(99)
        dag.node("M").no_excess = True
        with pytest.raises(DagError):
            cascade_mix(dag, "M", [Fraction(10), Fraction(10)])

    def test_one_to_one_mix_rejected(self):
        dag = skewed_dag(1)
        with pytest.raises(RatioError):
            cascade_mix(dag, "M", [Fraction(10), Fraction(10)])

    def test_three_way_mix_rejected(self):
        dag = AssayDAG()
        for name in "ABC":
            dag.add_input(name)
        dag.add_mix("M", {"A": 1, "B": 1000, "C": 1})
        with pytest.raises(RatioError):
            cascade_mix(dag, "M", [Fraction(10), Fraction(10)])


class TestCascadeExtremeMixes:
    def test_fixes_coarse_1_399(self, coarse_limits):
        dag = skewed_dag(399)
        assert not dagsolve(dag, coarse_limits).feasible
        cascaded, reports = cascade_extreme_mixes(dag, coarse_limits)
        assert len(reports) == 1
        assert dagsolve(cascaded, coarse_limits).feasible

    def test_untouched_when_nothing_extreme(self, glucose_dag, limits):
        cascaded, reports = cascade_extreme_mixes(glucose_dag, limits)
        assert reports == []
        assert cascaded is glucose_dag

    def test_iterative_deepening_bounded(self):
        tiny = HardwareLimits(max_capacity=4, least_count=1)
        dag = skewed_dag(10 ** 9)
        with pytest.raises(ResourceExhaustedError):
            cascade_extreme_mixes(dag, tiny, max_depth=3)

    def test_enzyme_cascade_increases_diluent_uses(self, enzyme_dag, limits):
        before = enzyme_dag.out_degree("diluent")
        cascaded, __ = cascade_extreme_mixes(enzyme_dag, limits)
        after = cascaded.out_degree("diluent")
        assert after > before  # the paper's negative side-effect
