"""DAGSolve tests, anchored on the paper's worked examples.

The Figure 5 example is checked *exactly* (Vnorms as fractions, volumes as
exact rationals) — DAGSolve is deterministic rational arithmetic, so there
is no tolerance anywhere in this file.
"""

from fractions import Fraction

import pytest

from repro.assays import glucose, paper_example
from repro.core.dag import AssayDAG, NodeKind
from repro.core.dagsolve import (
    compute_vnorms,
    dagsolve,
    dispense,
    scale_for_required_outputs,
)
from repro.core.errors import DagError, OverflowError_, UnderflowError, VolumeError
from repro.core.limits import PAPER_LIMITS, HardwareLimits


class TestFigure5:
    """Paper Figure 5: the worked DAGSolve example."""

    def test_node_vnorms_exact(self, fig2_dag):
        vnorms = compute_vnorms(fig2_dag)
        assert vnorms.node_vnorm == paper_example.EXPECTED_VNORMS

    def test_edge_vnorms_exact(self, fig2_dag):
        vnorms = compute_vnorms(fig2_dag)
        for key, expected in paper_example.EXPECTED_EDGE_VNORMS.items():
            assert vnorms.edge_vnorm[key] == expected, key

    def test_max_vnorm_is_b(self, fig2_dag):
        assert compute_vnorms(fig2_dag).max_vnorm() == Fraction(46, 45)

    def test_dispensed_volumes_exact(self, fig2_dag, limits):
        assignment = dagsolve(fig2_dag, limits)
        for node, expected in paper_example.EXPECTED_VOLUMES.items():
            assert assignment.node_volume[node] == expected, node

    def test_paper_rounded_figures(self, fig2_dag, limits):
        """The integers the paper prints in Figure 5(b)."""
        assignment = dagsolve(fig2_dag, limits)
        rounded = {
            key: round(float(volume))
            for key, volume in assignment.edge_volume.items()
        }
        assert rounded[("B", "K")] == 52
        assert rounded[("B", "L")] == 48
        assert rounded[("C", "L")] == 24
        assert rounded[("C", "N")] == 59
        assert round(float(assignment.node_volume["A"])) == 13
        assert round(float(assignment.node_volume["K"])) == 65

    def test_feasible(self, fig2_dag, limits):
        assert dagsolve(fig2_dag, limits).feasible


class TestBackwardPassSemantics:
    def test_outputs_normalised_to_one(self, fig2_dag):
        vnorms = compute_vnorms(fig2_dag)
        assert vnorms.node_vnorm["M"] == 1
        assert vnorms.node_vnorm["N"] == 1

    def test_flow_conservation_at_intermediates(self, fig2_dag):
        vnorms = compute_vnorms(fig2_dag)
        for node in fig2_dag.nodes():
            outbound = fig2_dag.out_edges(node.id)
            if not outbound:
                continue
            used = sum(vnorms.edge_vnorm[e.key] for e in outbound)
            assert vnorms.node_vnorm[node.id] == used

    def test_custom_output_targets(self, fig2_dag):
        vnorms = compute_vnorms(fig2_dag, {"M": 2, "N": 1})
        assert vnorms.node_vnorm["M"] == 2
        # K feeds only M: its Vnorm doubles with M's target.
        assert vnorms.node_vnorm["K"] == Fraction(4, 3)

    def test_output_target_for_non_output_rejected(self, fig2_dag):
        with pytest.raises(DagError):
            compute_vnorms(fig2_dag, {"K": 1})

    def test_nonpositive_target_rejected(self, fig2_dag):
        with pytest.raises(VolumeError):
            compute_vnorms(fig2_dag, {"M": 0})

    def test_unknown_volume_with_uses_rejected(self):
        dag = AssayDAG()
        dag.add_input("A")
        dag.add_unary("S", "A", kind=NodeKind.SEPARATE, unknown_volume=True)
        dag.add_unary("H", "S")
        with pytest.raises(DagError):
            compute_vnorms(dag)

    def test_unknown_volume_sink_allowed(self):
        dag = AssayDAG()
        dag.add_input("A")
        dag.add_unary("S", "A", kind=NodeKind.SEPARATE, unknown_volume=True)
        vnorms = compute_vnorms(dag)
        # The separator's *input* side is normalised.
        assert vnorms.node_input_vnorm["S"] == 1

    def test_linear_visit_counts(self, enzyme_dag):
        vnorms = compute_vnorms(enzyme_dag)
        non_excess_nodes = sum(
            1 for n in enzyme_dag.nodes() if n.kind is not NodeKind.EXCESS
        )
        assert vnorms.nodes_visited == non_excess_nodes
        # every edge contributes exactly twice (once from each endpoint)
        assert vnorms.edges_visited == 2 * enzyme_dag.edge_count

    def test_separator_output_fraction(self):
        dag = AssayDAG()
        dag.add_input("A")
        dag.add_unary(
            "S", "A", kind=NodeKind.SEPARATE, output_fraction=Fraction(1, 4)
        )
        dag.add_unary("H", "S")
        vnorms = compute_vnorms(dag)
        assert vnorms.node_vnorm["S"] == 1
        # producing 1 unit requires 4 units of input
        assert vnorms.node_input_vnorm["S"] == 4
        assert vnorms.edge_vnorm[("A", "S")] == 4


class TestDispense:
    def test_max_node_pinned_to_capacity(self, fig2_dag, limits):
        assignment = dagsolve(fig2_dag, limits)
        assert assignment.max_node_volume() == limits.max_capacity

    def test_scale_is_uniform(self, fig2_dag, limits):
        assignment = dagsolve(fig2_dag, limits)
        vnorms = assignment.vnorms
        for node, volume in assignment.node_volume.items():
            assert volume == vnorms.node_vnorm[node] * assignment.scale

    def test_per_node_capacity_override(self, fig2_dag, limits):
        fig2_dag.node("B").capacity = Fraction(50)
        assignment = dagsolve(fig2_dag, limits)
        assert assignment.node_volume["B"] == 50

    def test_capacity_respected_for_separator_input_side(self, limits):
        dag = AssayDAG()
        dag.add_input("A")
        dag.add_unary(
            "S", "A", kind=NodeKind.SEPARATE, output_fraction=Fraction(1, 4)
        )
        dag.add_unary("H", "S")
        assignment = dagsolve(dag, limits)
        # The separator's load (input side) must not exceed capacity even
        # though its production Vnorm is 4x smaller.
        assert assignment.node_input_volume["S"] <= limits.max_capacity
        assert assignment.node_input_volume["S"] == limits.max_capacity

    def test_constrained_input_caps_scale(self, limits):
        dag = AssayDAG()
        dag.add_node(
            __import__("repro.core.dag", fromlist=["Node"]).Node(
                "X", NodeKind.CONSTRAINED_INPUT, available_volume=Fraction(10)
            )
        )
        dag.add_input("B")
        dag.add_mix("M", {"X": 1, "B": 1})
        assignment = dagsolve(dag, limits)
        assert assignment.edge_volume[("X", "M")] == 10
        assert assignment.node_volume["M"] == 20

    def test_unmeasured_constrained_input_rejected(self, limits):
        from repro.core.dag import Node

        dag = AssayDAG()
        dag.add_node(Node("X", NodeKind.CONSTRAINED_INPUT))
        dag.add_input("B")
        dag.add_mix("M", {"X": 1, "B": 1})
        with pytest.raises(DagError):
            dagsolve(dag, limits)


class TestViolations:
    def test_underflow_detected(self):
        limits = HardwareLimits(max_capacity=100, least_count=1)
        dag = AssayDAG()
        dag.add_input("A")
        dag.add_input("B")
        dag.add_mix("M", {"A": 1, "B": 399})
        assignment = dagsolve(dag, limits)
        assert not assignment.feasible
        kinds = {v.kind for v in assignment.violations()}
        assert kinds == {"underflow"}
        with pytest.raises(UnderflowError):
            assignment.require_feasible()

    def test_strict_mode_raises(self):
        limits = HardwareLimits(max_capacity=100, least_count=1)
        dag = AssayDAG()
        dag.add_input("A")
        dag.add_input("B")
        dag.add_mix("M", {"A": 1, "B": 399})
        with pytest.raises(UnderflowError):
            dagsolve(dag, limits, strict=True)

    def test_min_edge_reports_smallest(self, glucose_dag, limits):
        assignment = dagsolve(glucose_dag, limits)
        key, volume = assignment.min_edge()
        assert (key, volume) == glucose.EXPECTED_MIN_EDGE

    def test_fu_minimum_volume_violation(self, limits):
        dag = AssayDAG()
        dag.add_input("A")
        dag.add_input("B")
        dag.add_mix("M", {"A": 1, "B": 1}, min_volume=Fraction(150))
        assignment = dagsolve(dag, limits)
        assert any(v.kind == "min-volume" for v in assignment.violations())

    def test_overflow_error_type(self, fig2_dag, limits):
        assignment = dagsolve(fig2_dag, limits)
        # Fabricate an overflow to check the error mapping.
        assignment.node_volume["B"] = Fraction(1000)
        assignment.node_input_volume["B"] = Fraction(1000)
        with pytest.raises(OverflowError_):
            assignment.require_feasible()


class TestRequiredOutputs:
    def test_scales_to_meet_requirement(self, fig2_dag, limits):
        vnorms = compute_vnorms(fig2_dag)
        assignment = scale_for_required_outputs(
            fig2_dag, vnorms, limits, {"M": Fraction(10)}
        )
        assert assignment.node_volume["M"] == 10
        assert assignment.node_volume["N"] == 10  # same Vnorm, same scale

    def test_requirement_above_capacity_overflows(self, fig2_dag, limits):
        vnorms = compute_vnorms(fig2_dag)
        assignment = scale_for_required_outputs(
            fig2_dag, vnorms, limits, {"M": Fraction(200)}
        )
        assert any(v.kind == "overflow" for v in assignment.violations())

    def test_non_output_rejected(self, fig2_dag, limits):
        vnorms = compute_vnorms(fig2_dag)
        with pytest.raises(DagError):
            scale_for_required_outputs(fig2_dag, vnorms, limits, {"K": 1})

    def test_empty_requirements_rejected(self, fig2_dag, limits):
        vnorms = compute_vnorms(fig2_dag)
        with pytest.raises(VolumeError):
            scale_for_required_outputs(fig2_dag, vnorms, limits, {})


class TestGlucoseFigure12:
    def test_vnorms(self, glucose_dag):
        vnorms = compute_vnorms(glucose_dag)
        for node, expected in glucose.EXPECTED_VNORMS.items():
            assert vnorms.node_vnorm[node] == expected, node

    def test_min_dispense_is_3_3_nl(self, glucose_dag, limits):
        assignment = dagsolve(glucose_dag, limits)
        key, volume = assignment.min_edge()
        assert key == ("Glucose", "d")
        assert volume == Fraction(500, 151)
        assert round(float(volume), 1) == 3.3

    def test_no_underflow_no_overflow(self, glucose_dag, limits):
        assert dagsolve(glucose_dag, limits).violations() == []
