"""Pluggable planning objectives: registry, per-layer behaviour, keying.

The ``default`` objective must be invisible (byte-identical plans to the
pre-objective compiler — the corpus gate in ``tools/waste_corpus.py``
pins that repo-wide); these tests pin the ``waste`` objective's visible
behaviour layer by layer: the scale-minimising dispense floor, the
front-loaded cascade splits with stage sharing, the LP cost vector, and
the per-objective fingerprint/cache keying.
"""

from fractions import Fraction

import pytest

from repro.analysis.certify import certify_plan
from repro.assays.gradients import (
    dilution_gradient,
    gradient_corpus,
    linear_gradient,
    target_concentration_tree,
)
from repro.core.cascading import (
    cascade_extreme_mixes,
    waste_stage_factors,
)
from repro.core.dag import AssayDAG
from repro.core.dagsolve import dagsolve
from repro.core.errors import ResourceExhaustedError, VolumeError
from repro.core.fingerprint import compile_fingerprint
from repro.core.hierarchy import Attempt, VolumeManager
from repro.core.intsolve import exact_dagsolve
from repro.core.limits import PAPER_LIMITS
from repro.core.objectives import (
    DEFAULT_OBJECTIVE,
    OBJECTIVES,
    WASTE_OBJECTIVE,
    resolve_objective,
)
from repro.core.report import plan_waste_breakdown
from repro.core.serde import _attempt_from_dict, _attempt_to_dict


def simple_mix(stock_parts=1, diluent_parts=3):
    dag = AssayDAG("simple")
    dag.add_input("stock")
    dag.add_input("diluent")
    dag.add_mix("out", {"stock": stock_parts, "diluent": diluent_parts})
    dag.validate()
    return dag


class TestRegistry:
    def test_names(self):
        assert set(OBJECTIVES) == {"default", "waste"}
        assert resolve_objective("default") is DEFAULT_OBJECTIVE
        assert resolve_objective("waste") is WASTE_OBJECTIVE
        assert resolve_objective(None) is DEFAULT_OBJECTIVE
        assert resolve_objective(WASTE_OBJECTIVE) is WASTE_OBJECTIVE

    def test_unknown_name_raises(self):
        with pytest.raises(VolumeError, match="unknown planning objective"):
            resolve_objective("speed")

    def test_flags(self):
        assert not DEFAULT_OBJECTIVE.minimize_scale
        assert not DEFAULT_OBJECTIVE.waste_aware_cascades
        assert WASTE_OBJECTIVE.minimize_scale
        assert WASTE_OBJECTIVE.waste_aware_cascades

    def test_lp_pairs_differ(self):
        dag = simple_mix()
        outputs = [n for n in dag.nodes() if dag.out_degree(n.id) == 0]
        default_pairs = DEFAULT_OBJECTIVE.lp_objective_pairs(dag, outputs)
        waste_pairs = WASTE_OBJECTIVE.lp_objective_pairs(dag, outputs)
        # waste adds a -1 draw penalty per source edge on top of delivery
        assert set(default_pairs) < set(waste_pairs)
        penalties = set(waste_pairs) - set(default_pairs)
        assert penalties == {
            (("stock", "out"), -1.0),
            (("diluent", "out"), -1.0),
        }
        # and the extra material must be covered by the cache signature
        assert set(WASTE_OBJECTIVE.lp_signature_extra(dag)) == {
            key for key, __ in penalties
        }


class TestDispenseFloor:
    def test_waste_settles_at_least_count(self):
        dag = simple_mix()
        default = dagsolve(dag, PAPER_LIMITS)
        waste = dagsolve(dag, PAPER_LIMITS, objective="waste")
        assert not default.violations() and not waste.violations()
        # default anchors at capacity: the mix holds 100 nl
        assert default.node_input_volume["out"] == PAPER_LIMITS.max_capacity
        # waste floors the smallest edge at the least count instead
        assert min(waste.edge_volume.values()) == PAPER_LIMITS.least_count
        assert sum(waste.edge_volume.values()) < sum(
            default.edge_volume.values()
        )

    def test_exact_solver_matches_reference(self):
        for dag in (simple_mix(), linear_gradient(5)):
            reference = dagsolve(dag, PAPER_LIMITS, objective="waste")
            exact = exact_dagsolve(dag, PAPER_LIMITS, objective="waste")
            assert exact.scale == reference.scale
            assert exact.edge_volume == reference.edge_volume

    def test_infeasible_dag_unchanged_by_objective(self):
        # a 1:999999 mix underflows either way; the floor must not mask
        # the violation set the hierarchy keys its retries on
        dag = simple_mix(1, 999_999)
        default = dagsolve(dag, PAPER_LIMITS)
        waste = dagsolve(dag, PAPER_LIMITS, objective="waste")
        assert [v.kind for v in default.violations()] == [
            v.kind for v in waste.violations()
        ]


class TestWasteCascades:
    def test_front_loaded_factors(self):
        factors = waste_stage_factors(Fraction(1000), PAPER_LIMITS)
        assert factors[0] == 500
        assert all(f <= PAPER_LIMITS.dynamic_range for f in factors)
        total = Fraction(1)
        for factor in factors:
            total *= factor
        assert total == 1000
        # discard is set by the tail factors only: [500, 2] discards half
        # a stage volume where the balanced [~31.6, ~31.6] discards ~0.97
        tail_discard = sum(1 - 1 / f for f in factors[1:])
        assert tail_discard <= Fraction(1, 2)

    def test_tiny_span_rejected(self):
        from repro.core.limits import HardwareLimits

        tight = HardwareLimits(max_capacity=1, least_count=Fraction(1, 2))
        with pytest.raises(ResourceExhaustedError):
            waste_stage_factors(Fraction(1000), tight)

    def test_shared_stages_between_replicate_wells(self):
        dag = dilution_gradient(1, 10_000, replicates=3)
        cascaded, reports = cascade_extreme_mixes(
            dag, PAPER_LIMITS, objective=WASTE_OBJECTIVE
        )
        assert len(reports) == 3
        shared = [r for r in reports if r.shared_ids]
        assert len(shared) == 2, "wells 2 and 3 reuse well 1's stages"
        # a fully-drawn shared stage keeps no excess edge
        for report in shared:
            for stage_id in report.shared_ids:
                node = cascaded.node(stage_id)
                if node.excess_fraction == 0:
                    assert not any(
                        e.is_excess for e in cascaded.out_edges(stage_id)
                    )

    def test_default_objective_never_shares(self):
        dag = dilution_gradient(1, 10_000, replicates=3)
        __, reports = cascade_extreme_mixes(dag, PAPER_LIMITS)
        assert all(not r.shared_ids for r in reports)


class TestHierarchy:
    def test_gradient_corpus_both_objectives_certify(self):
        for dag in gradient_corpus():
            for objective in ("default", "waste"):
                manager = VolumeManager(PAPER_LIMITS, objective=objective)
                plan = manager.plan(dag)
                assert plan.assignment is not None, (dag.name, objective)
                diagnostics, __ = certify_plan(
                    plan.dag,
                    plan.assignment,
                    PAPER_LIMITS,
                    expect_feasible=plan.feasible,
                )
                errors = [d for d in diagnostics if d.severity == "error"]
                assert not errors, (dag.name, objective, errors)

    def test_attempts_tagged_with_objective(self):
        manager = VolumeManager(PAPER_LIMITS, objective="waste")
        plan = manager.plan(dilution_gradient(2, 10_000))
        assert plan.attempts
        assert all(a.objective == "waste" for a in plan.attempts)
        assert "[waste]" in str(plan.attempts[0])
        # default stays unlabelled (pre-refactor rendering)
        default_plan = VolumeManager(PAPER_LIMITS).plan(simple_mix())
        assert "[" not in str(default_plan.attempts[0])

    def test_options_dict_carries_objective(self):
        manager = VolumeManager(PAPER_LIMITS, objective="waste")
        assert manager.options_dict()["objective"] == "waste"
        assert VolumeManager(PAPER_LIMITS).options_dict()["objective"] == (
            "default"
        )

    def test_attempt_serde_roundtrip(self):
        attempt = Attempt(
            stage="dagsolve", round=2, succeeded=True, detail="ok",
            objective="waste",
        )
        restored = _attempt_from_dict(_attempt_to_dict(attempt))
        assert restored == attempt
        # legacy payloads without the field decode as default
        legacy = _attempt_to_dict(attempt)
        del legacy["objective"]
        assert _attempt_from_dict(legacy).objective == "default"


class TestFingerprints:
    def test_disjoint_per_objective(self):
        dag = simple_mix()
        prints = {
            objective: compile_fingerprint(
                dag,
                PAPER_LIMITS,
                None,
                VolumeManager(PAPER_LIMITS, objective=objective)
                .options_dict(),
            )
            for objective in OBJECTIVES
        }
        assert prints["default"] != prints["waste"]

    def test_cache_isolated_per_objective(self, tmp_path):
        from repro.compiler.cache import PlanCache
        from repro.compiler.passes import run_compile

        cache = PlanCache(directory=str(tmp_path / "cache"))
        dag = target_concentration_tree(Fraction(5, 16), bits=4)
        for objective in ("default", "waste"):
            ctx = run_compile(
                dag=dag.copy(),
                manager=VolumeManager(PAPER_LIMITS, objective=objective),
                cache=cache,
            )
            assert not ctx.plan_restored, objective
        # resubmitting each objective hits its own entry
        for objective in ("default", "waste"):
            ctx = run_compile(
                dag=dag.copy(),
                manager=VolumeManager(PAPER_LIMITS, objective=objective),
                cache=cache,
            )
            assert ctx.plan_restored, objective


class TestWasteBreakdownReconciliation:
    """Satellite: breakdowns price the final post-transform DAG."""

    def test_matches_certify_metrics_on_transformed_plan(self):
        dag = dilution_gradient(3, 50_000, replicates=3)
        for objective in ("default", "waste"):
            manager = VolumeManager(PAPER_LIMITS, objective=objective)
            plan = manager.plan(dag)
            assert plan.was_transformed
            breakdown = plan_waste_breakdown(plan)
            __, metrics = certify_plan(
                plan.dag,
                plan.assignment,
                PAPER_LIMITS,
                expect_feasible=plan.feasible,
            )
            assert float(breakdown.excess) == pytest.approx(
                metrics["excess_nl"]
            ), objective

    def test_planless_assignment_rejected(self):
        plan = VolumeManager(PAPER_LIMITS).plan(simple_mix())
        plan.assignment = None
        with pytest.raises(ValueError, match="no assignment"):
            plan_waste_breakdown(plan)
