"""ILP (IVol) tests: exact integer multiples of the least count."""

from fractions import Fraction

import pytest

from repro.core.dag import AssayDAG
from repro.core.errors import InfeasibleError, SolverError
from repro.core.ilp import ilp_solve
from repro.core.limits import HardwareLimits
from repro.core.rounding import ratio_errors


class TestIntegrality:
    def test_figure2_volumes_are_least_count_multiples(self, fig2_dag, limits):
        assignment = ilp_solve(fig2_dag, limits)
        for key, volume in assignment.edge_volume.items():
            if fig2_dag.edge(*key).is_excess:
                continue
            steps = volume / limits.least_count
            assert steps.denominator == 1, key
            assert steps >= 1

    def test_figure2_feasible_and_ratio_exact_enough(self, fig2_dag, limits):
        assignment = ilp_solve(fig2_dag, limits)
        assert assignment.feasible
        worst = max(
            (float(e.relative_error) for e in ratio_errors(assignment)),
            default=0.0,
        )
        # At 1000 least-count steps of headroom, ILP ratios are near exact.
        assert worst < 0.01

    def test_method_tag(self, fig2_dag, limits):
        assert ilp_solve(fig2_dag, limits).method == "ilp"


class TestInfeasibility:
    def test_extreme_ratio_infeasible(self, coarse_limits):
        dag = AssayDAG()
        dag.add_input("A")
        dag.add_input("B")
        dag.add_mix("M", {"A": 1, "B": 399})
        with pytest.raises(InfeasibleError):
            ilp_solve(dag, coarse_limits)


class TestTimeLimit:
    def test_timeout_raises_solver_error(self, limits):
        """The reproduction of 'ran for hours without generating a
        solution': a tiny time limit must surface as SolverError, not hang."""
        from repro.assays import enzyme

        # A feasible but larger instance (cascaded enzyme would work too);
        # use glucose x several to keep the suite quick but the point real.
        dag = enzyme.build_dag(2)
        try:
            ilp_solve(dag, limits, time_limit=1e-4)
        except SolverError:
            pass  # expected on any machine where 0.1 ms is not enough
        except InfeasibleError:
            pytest.fail("time limit must not masquerade as infeasibility")
        # If the solver finished within the limit, that's fine too.


class TestSmallExactInstance:
    def test_two_fluid_mix_exact(self):
        limits = HardwareLimits(max_capacity=10, least_count=1)
        dag = AssayDAG()
        dag.add_input("A")
        dag.add_input("B")
        dag.add_mix("M", {"A": 1, "B": 3})
        assignment = ilp_solve(dag, limits, output_tolerance=None)
        a = assignment.edge_volume[("A", "M")]
        b = assignment.edge_volume[("B", "M")]
        assert a.denominator == 1 and b.denominator == 1
        assert b == 3 * a  # the ratio is achievable exactly in integers
        assert a + b <= 10
