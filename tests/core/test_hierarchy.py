"""Volume-management hierarchy tests (paper Figure 6)."""

from fractions import Fraction

import pytest

from repro.core.dag import AssayDAG
from repro.core.hierarchy import VolumeManager
from repro.core.limits import HardwareLimits, PAPER_LIMITS


class TestHappyPath:
    def test_glucose_stops_at_dagsolve(self, glucose_dag, limits):
        plan = VolumeManager(limits).plan(glucose_dag)
        assert plan.status == "dagsolve"
        assert plan.feasible
        assert not plan.was_transformed
        assert [a.stage for a in plan.attempts] == ["dagsolve"]

    def test_fig2_stops_at_dagsolve(self, fig2_dag, limits):
        plan = VolumeManager(limits).plan(fig2_dag)
        assert plan.status == "dagsolve"
        assert plan.assignment.feasible


class TestLPFallback:
    def test_lp_used_when_dagsolve_overconstrained(self):
        limits = HardwareLimits(max_capacity=100, least_count=1)
        dag = AssayDAG()
        dag.add_input("A")
        dag.add_input("B")
        dag.add_input("C")
        dag.add_input("D")
        for i in range(30):
            dag.add_mix(f"out{i}", {"A": 1, "B": 1})
        dag.add_mix("out_small", {"C": 1, "D": 9})
        plan = VolumeManager(limits, output_tolerance=None).plan(dag)
        assert plan.status == "lp"
        stages = [a.stage for a in plan.attempts]
        assert stages == ["dagsolve", "lp"]

    def test_lp_disabled_falls_through_to_transforms(self):
        limits = HardwareLimits(max_capacity=100, least_count=1)
        dag = AssayDAG()
        dag.add_input("A")
        dag.add_input("B")
        dag.add_mix("M", {"A": 1, "B": 399})
        plan = VolumeManager(limits, use_lp=False).plan(dag)
        assert "lp" not in [a.stage for a in plan.attempts]
        assert plan.feasible  # cascading fixed it without LP


class TestTransforms:
    def test_extreme_ratio_triggers_cascading(self, coarse_limits):
        dag = AssayDAG()
        dag.add_input("A")
        dag.add_input("B")
        dag.add_mix("M", {"A": 1, "B": 399})
        plan = VolumeManager(coarse_limits).plan(dag)
        assert plan.feasible
        assert any(type(t).__name__ == "CascadeReport" for t in plan.transforms)
        assert plan.dag.node_count > dag.node_count

    def test_enzyme_cascade_then_lp(self, enzyme_dag, limits):
        """Round 1: DAGSolve and LP both fail (the paper reports exactly
        that); cascading fixes the 1:999 mixes; LP's excess freedom then
        finds a feasible point without replication."""
        plan = VolumeManager(limits).plan(enzyme_dag)
        assert plan.feasible
        kinds = {type(t).__name__ for t in plan.transforms}
        assert kinds == {"CascadeReport"}
        lp_attempts = [a for a in plan.attempts if a.stage == "lp"]
        assert not lp_attempts[0].succeeded
        assert lp_attempts[-1].succeeded

    def test_enzyme_needs_replication_without_lp(self, enzyme_dag, limits):
        """The paper's manual Figure 14 path sticks to DAGSolve: after
        cascading, the 1:99 underflow remains and static replication of the
        diluent is required."""
        plan = VolumeManager(limits, use_lp=False).plan(enzyme_dag)
        assert plan.feasible
        assert plan.status == "dagsolve"
        kinds = {type(t).__name__ for t in plan.transforms}
        assert kinds == {"CascadeReport", "ReplicationReport"}

    def test_transform_toggles(self, enzyme_dag, limits):
        plan = VolumeManager(
            limits, allow_cascading=False, allow_replication=False
        ).plan(enzyme_dag)
        assert not plan.feasible
        assert plan.status == "regeneration"


class TestRegenerationFallback:
    def test_best_attempt_kept(self, limits):
        # An extreme 3-way mix: cascading refuses (not 2-input), and
        # replication cannot help -> regeneration with the best infeasible
        # assignment retained.
        dag = AssayDAG()
        for name in "ABC":
            dag.add_input(name)
        dag.add_mix("M", {"A": 1, "B": 5000, "C": 1})
        plan = VolumeManager(limits).plan(dag)
        assert plan.status == "regeneration"
        assert plan.assignment is not None
        assert not plan.assignment.feasible
        assert plan.needs_regeneration

    def test_summary_readable(self, enzyme_dag, limits):
        plan = VolumeManager(limits).plan(enzyme_dag)
        text = plan.summary()
        assert "dagsolve" in text
        assert "min dispense" in text


class TestRounds:
    def test_max_rounds_respected(self, enzyme_dag, limits):
        plan = VolumeManager(limits, max_rounds=1).plan(enzyme_dag)
        # One round: dagsolve fails, lp fails, cascade applied, loop ends.
        assert plan.status == "regeneration"
        rounds = {a.round for a in plan.attempts}
        assert rounds == {1}

    def test_attempt_log_orders_stages(self, enzyme_dag, limits):
        plan = VolumeManager(limits).plan(enzyme_dag)
        for first, second in zip(plan.attempts, plan.attempts[1:]):
            assert first.round <= second.round
