"""LP constraint-system tests (paper Section 3.2, Figure 3)."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.dag import AssayDAG, NodeKind
from repro.core.errors import DagError
from repro.core.lpmodel import (
    CLASS_CAPACITY,
    CLASS_FLOW_CONSERVATION,
    CLASS_MIN_VOLUME,
    CLASS_NON_DEFICIT,
    CLASS_OUTPUT_EQUAL,
    CLASS_OUTPUT_TO_OUTPUT,
    CLASS_RATIO,
    build_lp_model,
)


class TestFigure3Structure:
    """The constraint classes of Figure 3, generated for the Figure 2 DAG."""

    def test_variable_per_edge(self, fig2_dag, limits):
        model = build_lp_model(fig2_dag, limits)
        assert model.n_variables == fig2_dag.edge_count == 8

    def test_min_volume_constraints_one_per_edge(self, fig2_dag, limits):
        model = build_lp_model(fig2_dag, limits)
        counts = model.counts_by_class()
        assert counts[CLASS_MIN_VOLUME] == 8
        assert all(lo == float(limits.least_count) for lo, __ in model.bounds)

    def test_capacity_constraints_one_per_node(self, fig2_dag, limits):
        model = build_lp_model(fig2_dag, limits)
        # A, B, C (draw side) and K, L, M, N (input side): 7 rows.
        assert model.counts_by_class()[CLASS_CAPACITY] == 7

    def test_non_deficit_for_intermediates_only(self, fig2_dag, limits):
        model = build_lp_model(fig2_dag, limits)
        # K and L are the only internal non-output nodes.
        assert model.counts_by_class()[CLASS_NON_DEFICIT] == 2

    def test_ratio_constraints_one_per_two_way_mix(self, fig2_dag, limits):
        model = build_lp_model(fig2_dag, limits)
        assert model.counts_by_class()[CLASS_RATIO] == 4

    def test_output_to_output_two_rows_per_extra_output(self, fig2_dag, limits):
        model = build_lp_model(fig2_dag, limits)
        assert model.counts_by_class()[CLASS_OUTPUT_TO_OUTPUT] == 2

    def test_output_tolerance_none_omits_class(self, fig2_dag, limits):
        model = build_lp_model(fig2_dag, limits, output_tolerance=None)
        assert CLASS_OUTPUT_TO_OUTPUT not in model.counts_by_class()

    def test_objective_maximises_outputs(self, fig2_dag, limits):
        model = build_lp_model(fig2_dag, limits)
        # linprog minimises, so output-edge coefficients are -1.
        output_edges = {("K", "M"), ("L", "M"), ("L", "N"), ("C", "N")}
        for key, column in model.var_index.items():
            expected = -1.0 if key in output_edges else 0.0
            assert model.objective[column] == expected, key

    def test_total_count_matches_paper_accounting(self, fig2_dag, limits):
        model = build_lp_model(fig2_dag, limits)
        assert model.n_constraints == sum(model.counts_by_class().values())


class TestRatioRows:
    def test_ratio_row_encodes_proportion(self, limits):
        dag = AssayDAG()
        dag.add_input("A")
        dag.add_input("B")
        dag.add_mix("M", {"A": 1, "B": 4})
        model = build_lp_model(dag, limits, output_tolerance=None)
        (ratio_row,) = [
            i for i, row in enumerate(model.rows_eq) if row.cls == CLASS_RATIO
        ]
        a_col = model.var_index[("A", "M")]
        b_col = model.var_index[("B", "M")]
        dense = model.a_eq.toarray()
        # fraction_B * vol_A - fraction_A * vol_B == 0 (up to overall sign)
        coeff_a = dense[ratio_row, a_col]
        coeff_b = dense[ratio_row, b_col]
        assert coeff_a == pytest.approx(-4 * coeff_b)

    def test_three_way_mix_emits_two_rows(self, limits):
        dag = AssayDAG()
        for name in "ABC":
            dag.add_input(name)
        dag.add_mix("M", {"A": 1, "B": 100, "C": 1})
        model = build_lp_model(dag, limits, output_tolerance=None)
        assert model.counts_by_class()[CLASS_RATIO] == 2


class TestDagsolveConstraintsAblation:
    def test_extra_classes_present(self, fig2_dag, limits):
        model = build_lp_model(fig2_dag, limits, dagsolve_constraints=True)
        counts = model.counts_by_class()
        assert counts[CLASS_FLOW_CONSERVATION] == 2  # K and L
        assert counts[CLASS_OUTPUT_EQUAL] == 1       # N pinned to M

    def test_absent_by_default(self, fig2_dag, limits):
        counts = build_lp_model(fig2_dag, limits).counts_by_class()
        assert CLASS_FLOW_CONSERVATION not in counts
        assert CLASS_OUTPUT_EQUAL not in counts


class TestSeparatorsAndExcess:
    def test_output_fraction_in_non_deficit(self, limits):
        dag = AssayDAG()
        dag.add_input("A")
        dag.add_unary(
            "S", "A", kind=NodeKind.SEPARATE, output_fraction=Fraction(3, 10)
        )
        dag.add_unary("H", "S")
        model = build_lp_model(dag, limits, output_tolerance=None)
        (row_index,) = [
            i
            for i, row in enumerate(model.rows_ub)
            if row.cls == CLASS_NON_DEFICIT
        ]
        dense = model.a_ub.toarray()
        in_col = model.var_index[("A", "S")]
        out_col = model.var_index[("S", "H")]
        assert dense[row_index, out_col] == 1.0
        assert dense[row_index, in_col] == pytest.approx(-0.3)

    def test_unknown_volume_with_uses_rejected(self, limits):
        dag = AssayDAG()
        dag.add_input("A")
        dag.add_unary("S", "A", kind=NodeKind.SEPARATE, unknown_volume=True)
        dag.add_unary("H", "S")
        with pytest.raises(DagError):
            build_lp_model(dag, limits)

    def test_excess_edges_not_variables(self, limits):
        from repro.core.cascading import cascade_mix, stage_factors

        dag = AssayDAG()
        dag.add_input("A")
        dag.add_input("B")
        dag.add_mix("M", {"A": 1, "B": 99})
        cascaded, __ = cascade_mix(dag, "M", stage_factors(Fraction(100), 2))
        model = build_lp_model(cascaded, limits)
        for key in model.var_index:
            assert not cascaded.edge(*key).is_excess

    def test_sparse_matrices(self, enzyme_dag, limits):
        model = build_lp_model(enzyme_dag, limits)
        from scipy import sparse

        assert sparse.issparse(model.a_ub)
        assert sparse.issparse(model.a_eq)
        assert model.a_ub.shape[1] == model.n_variables


class TestConstraintGrowth:
    """Table 2's constraint column: counts grow with assay size."""

    def test_glucose_vs_enzyme(self, glucose_dag, enzyme_dag, limits):
        small = build_lp_model(glucose_dag, limits).n_constraints
        large = build_lp_model(enzyme_dag, limits).n_constraints
        assert small < large

    def test_enzyme_scaling(self, limits):
        from repro.assays import enzyme

        counts = [
            build_lp_model(enzyme.build_dag(n), limits).n_constraints
            for n in (2, 3, 4)
        ]
        assert counts[0] < counts[1] < counts[2]
