"""Static replication tests (paper Section 3.4.2, Figure 14)."""

from fractions import Fraction

import pytest

from repro.core.cascading import cascade_mix, stage_factors
from repro.core.dag import AssayDAG, NodeKind
from repro.core.dagsolve import compute_vnorms, dagsolve
from repro.core.errors import DagError, ResourceExhaustedError
from repro.core.limits import HardwareLimits
from repro.core.replication import (
    iterative_replication,
    needed_copies,
    replicate_node,
)
from repro.assays import enzyme


def fanout_dag(uses: int) -> AssayDAG:
    dag = AssayDAG(f"fanout{uses}")
    dag.add_input("stock")
    for i in range(uses):
        dag.add_input(f"r{i}")
        dag.add_mix(f"m{i}", {"stock": 1, f"r{i}": 1})
    return dag


class TestReplicateNode:
    def test_replicas_created_and_uses_distributed(self):
        dag = fanout_dag(6)
        replicated, report = replicate_node(dag, "stock", 3)
        assert report.copies == 3
        assert len(report.replica_ids) == 3
        # 6 uses over 3 replicas: 2 each
        for replica in report.replica_ids:
            assert replicated.out_degree(replica) == 2
        replicated.validate()

    def test_original_keeps_identity(self):
        dag = fanout_dag(4)
        replicated, report = replicate_node(dag, "stock", 2)
        assert "stock" in replicated
        assert report.replica_ids[0] == "stock"
        assert "stock.rep2" in replicated

    def test_consumer_fractions_preserved(self):
        dag = AssayDAG()
        dag.add_input("stock")
        dag.add_input("x")
        dag.add_input("y")
        dag.add_mix("m1", {"stock": 1, "x": 9})
        dag.add_mix("m2", {"stock": 3, "y": 1})
        replicated, __ = replicate_node(dag, "stock", 2)
        for consumer, fraction in (
            ("m1", Fraction(1, 10)),
            ("m2", Fraction(3, 4)),
        ):
            (edge,) = [
                e for e in replicated.in_edges(consumer)
                if e.src.startswith("stock")
            ]
            assert edge.fraction == fraction
        replicated.validate()

    def test_internal_node_copies_inbound_edges(self):
        dag = AssayDAG()
        dag.add_input("a")
        dag.add_input("b")
        dag.add_mix("mid", {"a": 1, "b": 1})
        for i in range(4):
            dag.add_unary(f"use{i}", "mid")
        replicated, __ = replicate_node(dag, "mid", 2)
        assert replicated.has_edge("a", "mid.rep2")
        assert replicated.has_edge("b", "mid.rep2")
        # predecessors' use counts grew: the replicated backward-slice level
        assert replicated.out_degree("a") == 2
        replicated.validate()

    def test_vnorm_weighted_balance(self):
        """Weighted LPT must divide the enzyme diluent evenly (Vnorm 27
        per replica, paper Figure 14(b))."""
        dag = enzyme.build_dag()
        cascaded = dag
        for reagent in enzyme.REAGENTS:
            cascaded, __ = cascade_mix(
                cascaded,
                f"{reagent}.dil4",
                stage_factors(Fraction(1000), 3),
            )
        vnorms = compute_vnorms(cascaded)
        weights = {
            e.key: vnorms.edge_vnorm[e.key]
            for e in cascaded.out_edges("diluent")
        }
        replicated, report = replicate_node(
            cascaded, "diluent", 3, weights=weights
        )
        new_vnorms = compute_vnorms(replicated)
        values = [new_vnorms.node_vnorm[r] for r in report.replica_ids]
        assert max(values) == min(values)  # perfectly even by symmetry
        total = sum(values)
        assert total == vnorms.node_vnorm["diluent"]  # load conserved

    def test_too_few_uses_rejected(self):
        dag = fanout_dag(2)
        with pytest.raises(DagError):
            replicate_node(dag, "stock", 3)

    def test_copies_must_be_at_least_two(self):
        dag = fanout_dag(3)
        with pytest.raises(ValueError):
            replicate_node(dag, "stock", 1)

    def test_constrained_input_not_replicable(self):
        from repro.core.dag import Node

        dag = AssayDAG()
        dag.add_node(
            Node("X", NodeKind.CONSTRAINED_INPUT, available_volume=Fraction(10))
        )
        dag.add_input("b")
        dag.add_mix("m1", {"X": 1, "b": 1})
        dag.add_mix("m2", {"X": 1, "b": 1})
        with pytest.raises(DagError):
            replicate_node(dag, "X", 2)


class TestNeededCopies:
    def test_exact_division(self):
        assert needed_copies(Fraction(80), Fraction(100), Fraction(5)) == 4

    def test_rounds_up(self):
        assert needed_copies(Fraction(81), Fraction(100), Fraction(5)) == 5

    def test_minimum_two(self):
        assert needed_copies(Fraction(10), Fraction(100), Fraction(2)) == 2


class TestIterativeReplication:
    def test_fixes_capacity_limited_underflow(self):
        limits = HardwareLimits(max_capacity=100, least_count=1)
        # 40 uses of the stock at 1:1 -> stock Vnorm 20 -> scale 5 -> each
        # reagent share 2.5; with uses at 1:4 the minor share is 1 nl at
        # scale 5... craft shares that underflow without replication:
        dag = AssayDAG()
        dag.add_input("stock")
        for i in range(40):
            dag.add_input(f"r{i}")
            dag.add_mix(f"m{i}", {"stock": 3, f"r{i}": 1})
        baseline = dagsolve(dag, limits)
        assert not baseline.feasible
        replicated, reports = iterative_replication(dag, limits)
        assert reports  # at least one round happened
        assert dagsolve(replicated, limits).feasible

    def test_noop_when_already_feasible(self, glucose_dag, limits):
        replicated, reports = iterative_replication(glucose_dag, limits)
        assert reports == []
        assert replicated is glucose_dag

    def test_gives_up_when_not_capacity_limited(self, limits):
        # A single extreme mix: replication cannot help (cascading's job).
        dag = AssayDAG()
        dag.add_input("A")
        dag.add_input("B")
        dag.add_mix("M", {"A": 1, "B": 9999})
        with pytest.raises(ResourceExhaustedError):
            iterative_replication(dag, limits)

    def test_respects_node_budget(self):
        limits = HardwareLimits(max_capacity=100, least_count=1)
        dag = AssayDAG()
        dag.add_input("stock")
        for i in range(40):
            dag.add_input(f"r{i}")
            dag.add_mix(f"m{i}", {"stock": 3, f"r{i}": 1})
        with pytest.raises(ResourceExhaustedError):
            iterative_replication(dag, limits, max_total_nodes=81)
