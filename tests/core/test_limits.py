"""Unit tests for hardware limits and exact-fraction conversion."""

from fractions import Fraction

import pytest

from repro.core.limits import PAPER_LIMITS, HardwareLimits, as_fraction


class TestAsFraction:
    def test_int(self):
        assert as_fraction(7) == Fraction(7)

    def test_fraction_passthrough(self):
        value = Fraction(3, 7)
        assert as_fraction(value) is value

    def test_float_uses_decimal_representation(self):
        # 0.1 must become exactly 1/10, not the binary artefact.
        assert as_fraction(0.1) == Fraction(1, 10)

    def test_string(self):
        assert as_fraction("2/5") == Fraction(2, 5)


class TestHardwareLimits:
    def test_paper_configuration(self):
        assert PAPER_LIMITS.max_capacity == 100
        assert PAPER_LIMITS.least_count == Fraction(1, 10)
        assert PAPER_LIMITS.dynamic_range == 1000

    def test_rejects_nonpositive_least_count(self):
        with pytest.raises(ValueError):
            HardwareLimits(max_capacity=10, least_count=0)

    def test_rejects_capacity_below_least_count(self):
        with pytest.raises(ValueError):
            HardwareLimits(max_capacity=Fraction(1, 100), least_count=1)

    def test_fits(self):
        limits = HardwareLimits(max_capacity=100, least_count=Fraction(1, 10))
        assert limits.fits(Fraction(1, 10))
        assert limits.fits(100)
        assert not limits.fits(Fraction(1, 20))
        assert not limits.fits(101)

    def test_quantize_rounds_to_nearest_multiple(self):
        limits = PAPER_LIMITS
        assert limits.quantize(Fraction(123, 1000)) == Fraction(1, 10)
        assert limits.quantize(Fraction(17, 100)) == Fraction(2, 10)
        assert limits.quantize(Fraction(3, 10)) == Fraction(3, 10)

    def test_quantize_ties_round_half_up(self):
        assert PAPER_LIMITS.quantize(Fraction(15, 100)) == Fraction(2, 10)

    def test_quantize_preserves_multiples_exactly(self):
        limits = PAPER_LIMITS
        for steps in (1, 7, 999, 1000):
            volume = steps * limits.least_count
            assert limits.quantize(volume) == volume

    def test_limits_are_immutable(self):
        with pytest.raises(AttributeError):
            PAPER_LIMITS.max_capacity = 5  # type: ignore[misc]
