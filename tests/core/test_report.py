"""Fluid-requirements report tests."""

from fractions import Fraction

import pytest

from repro.core.dagsolve import dagsolve
from repro.core.report import fluid_requirements
from repro.assays import enzyme, glucose, paper_example
from repro.core.limits import PAPER_LIMITS


class TestGlucoseReport:
    @pytest.fixture
    def report(self, glucose_dag, limits):
        return fluid_requirements(dagsolve(glucose_dag, limits))

    def test_inputs_sorted_by_consumption(self, report):
        assert [usage.fluid for usage in report.inputs] == [
            "Reagent",
            "Glucose",
            "Sample",
        ]

    def test_reagent_totals(self, report):
        reagent = report.inputs[0]
        assert reagent.total == 100
        assert reagent.draws == 5

    def test_smallest_draw_is_figure12_minimum(self, report):
        glucose_usage = report.inputs[1]
        assert glucose_usage.smallest_draw == Fraction(500, 151)

    def test_outputs(self, report):
        assert set(report.outputs) == {"a", "b", "c", "d", "e"}
        assert len(set(report.outputs.values())) == 1  # equal outputs

    def test_flow_conserving_plan_is_fully_utilised(self, report):
        assert report.utilisation == 1

    def test_render_readable(self, report):
        text = report.render()
        assert "reagents to load:" in text
        assert "Reagent" in text
        assert "utilisation: 100.0%" in text


class TestUtilisation:
    def test_cascaded_plan_wastes_excess(self):
        """Cascading deliberately discards fluid: utilisation < 100%."""
        from repro.core.cascading import cascade_mix, stage_factors
        from repro.core.dag import AssayDAG

        dag = AssayDAG()
        dag.add_input("A")
        dag.add_input("B")
        dag.add_mix("M", {"A": 1, "B": 99})
        cascaded, __ = cascade_mix(
            dag, "M", stage_factors(Fraction(100), 2)
        )
        report = fluid_requirements(dagsolve(cascaded, PAPER_LIMITS))
        assert report.utilisation < 1

    def test_enzyme_report_shape(self, enzyme_dag, limits):
        report = fluid_requirements(dagsolve(enzyme_dag, limits))
        heaviest = report.inputs[0]
        assert heaviest.fluid == "diluent"
        assert heaviest.draws == 12
        assert len(report.outputs) == 64


class TestWasteBreakdown:
    def test_flow_conserving_plan_has_no_waste(self, glucose_dag, limits):
        from repro.core.report import waste_breakdown

        breakdown = waste_breakdown(dagsolve(glucose_dag, limits))
        assert breakdown.excess == 0
        assert breakdown.retained == 0
        assert breakdown.utilisation == 1
        assert breakdown.delivered == breakdown.loaded

    def test_cascaded_plan_itemises_excess_per_node(self):
        from repro.core.cascading import cascade_mix, stage_factors
        from repro.core.dag import AssayDAG
        from repro.core.report import waste_breakdown

        dag = AssayDAG()
        dag.add_input("A")
        dag.add_input("B")
        dag.add_mix("M", {"A": 1, "B": 99})
        cascaded, __ = cascade_mix(
            dag, "M", stage_factors(Fraction(100), 2)
        )
        breakdown = waste_breakdown(dagsolve(cascaded, PAPER_LIMITS))
        assert breakdown.excess > 0
        assert breakdown.excess_by_node  # keyed by the producing stage
        assert all(v > 0 for v in breakdown.excess_by_node.values())
        assert breakdown.loaded == (
            breakdown.delivered + breakdown.excess + breakdown.retained
        )
        assert breakdown.utilisation < 1

    def test_render_is_readable(self, glucose_dag, limits):
        from repro.core.report import waste_breakdown

        text = waste_breakdown(dagsolve(glucose_dag, limits)).render()
        assert "waste breakdown" in text
        assert "delivered:" in text
        assert "100.0%" in text
