"""Smaller hierarchy behaviours: best-attempt tracking, knob plumbing."""

from fractions import Fraction

import pytest

from repro.core.dag import AssayDAG
from repro.core.dagsolve import dagsolve
from repro.core.hierarchy import VolumeManager
from repro.core.limits import HardwareLimits, PAPER_LIMITS


class TestBestAttempt:
    def test_better_prefers_larger_minimum(self, fig2_dag, limits):
        first = dagsolve(fig2_dag, limits)
        worse = dagsolve(
            fig2_dag, HardwareLimits(max_capacity=10, least_count="0.1")
        )
        assert (
            VolumeManager._better(first, worse) is first
        )
        assert VolumeManager._better(worse, first) is first
        assert VolumeManager._better(None, worse) is worse

    def test_regeneration_plan_keeps_best_min(self):
        """Across the failed rounds, the retained assignment is the one
        with the largest minimum dispense."""
        dag = AssayDAG("hard")
        for name in "ABC":
            dag.add_input(name)
        dag.add_mix("M", {"A": 1, "B": 5000, "C": 1})
        plan = VolumeManager(PAPER_LIMITS).plan(dag)
        assert plan.needs_regeneration
        retained = plan.assignment.min_edge_volume()
        raw = dagsolve(dag, PAPER_LIMITS).min_edge_volume()
        assert retained >= raw


class TestKnobs:
    def test_output_tolerance_forwarded_to_lp(self):
        """With a tight output band the LP fallback fails on an assay whose
        feasibility needs unequal outputs; loosening the band rescues it."""
        limits = HardwareLimits(max_capacity=100, least_count=1)
        dag = AssayDAG()
        for name in "ABCD":
            dag.add_input(name)
        for i in range(30):
            dag.add_mix(f"out{i}", {"A": 1, "B": 1})
        dag.add_mix("out_small", {"C": 1, "D": 9})
        tight = VolumeManager(
            limits, output_tolerance=0.01, allow_cascading=False,
            allow_replication=False,
        ).plan(dag.copy())
        free = VolumeManager(
            limits, output_tolerance=None, allow_cascading=False,
            allow_replication=False,
        ).plan(dag.copy())
        assert free.status == "lp"
        assert tight.status != "lp"

    def test_max_total_nodes_budget_forwarded(self):
        limits = HardwareLimits(max_capacity=100, least_count=1)
        dag = AssayDAG()
        dag.add_input("stock")
        for i in range(40):
            dag.add_input(f"r{i}")
            dag.add_mix(f"m{i}", {"stock": 3, f"r{i}": 1})
        constrained = VolumeManager(
            limits, use_lp=False, max_total_nodes=81
        ).plan(dag.copy())
        assert constrained.status == "regeneration"
        unconstrained = VolumeManager(limits, use_lp=False).plan(dag.copy())
        assert unconstrained.feasible
