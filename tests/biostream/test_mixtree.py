"""Binary mixing-tree tests."""

from fractions import Fraction

import pytest

from repro.biostream.mixtree import (
    bits_for_tolerance,
    one_to_one_plan,
)


class TestPlanConstruction:
    def test_half_is_one_mix(self):
        plan = one_to_one_plan(Fraction(1, 2), bits=4)
        assert plan.mix_count == 1
        assert plan.achieved == Fraction(1, 2)
        assert plan.error == 0

    def test_exact_binary_fraction(self):
        plan = one_to_one_plan(Fraction(5, 8), bits=3)
        assert plan.achieved == Fraction(5, 8)
        assert plan.mix_count == 3
        # LSB first: 101 -> sample, buffer, sample
        assert [s.ingredient for s in plan.steps] == [
            "sample",
            "buffer",
            "sample",
        ]

    def test_concentration_recurrence(self):
        plan = one_to_one_plan(Fraction(5, 8), bits=3)
        assert [s.concentration_after for s in plan.steps] == [
            Fraction(1, 2),
            Fraction(1, 4),
            Fraction(5, 8),
        ]

    def test_dilute_target_skips_leading_noops(self):
        # 1/16 = 0001b: one sample fold then three buffer folds = 4 mixes
        plan = one_to_one_plan(Fraction(1, 16), bits=4)
        assert plan.mix_count == 4
        assert plan.achieved == Fraction(1, 16)
        # but 3/4 at 8 bits costs only 2 (the 6 LSB zeros are no-ops)
        short = one_to_one_plan(Fraction(3, 4), bits=8)
        assert short.mix_count == 2

    def test_error_bound(self):
        target = Fraction(1, 3)
        for bits in (3, 5, 8, 12):
            plan = one_to_one_plan(target, bits)
            assert plan.error <= Fraction(1, 2 ** (bits + 1))

    def test_pure_targets_cost_nothing(self):
        assert one_to_one_plan(Fraction(0), bits=4).mix_count == 0
        assert one_to_one_plan(Fraction(1), bits=4).mix_count == 0

    def test_discard_accounting(self):
        plan = one_to_one_plan(Fraction(5, 8), bits=3)
        assert plan.discarded_units == 2  # all but the final product
        assert plan.sample_units == 2
        assert plan.buffer_units == 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            one_to_one_plan(Fraction(3, 2), bits=4)
        with pytest.raises(ValueError):
            one_to_one_plan(Fraction(1, 2), bits=0)


class TestBitsForTolerance:
    def test_tight_targets_need_more_bits(self):
        loose = bits_for_tolerance(Fraction(1, 2), Fraction(1, 50))
        tight = bits_for_tolerance(Fraction(1, 1000), Fraction(1, 50))
        assert tight > loose

    def test_bound_is_sufficient(self):
        for target in (Fraction(1, 3), Fraction(1, 10), Fraction(1, 100)):
            bits = bits_for_tolerance(target, Fraction(1, 50))
            plan = one_to_one_plan(target, bits)
            assert plan.relative_error <= Fraction(1, 50)

    def test_invalid(self):
        with pytest.raises(ValueError):
            bits_for_tolerance(Fraction(0), Fraction(1, 50))
        with pytest.raises(ValueError):
            bits_for_tolerance(Fraction(1, 2), 0)
