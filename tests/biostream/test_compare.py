"""AIS-vs-Biostream cost comparison tests."""

from fractions import Fraction

import pytest

from repro.biostream.compare import ais_mix_cost, biostream_mix_cost
from repro.core.dag import AssayDAG
from repro.assays import enzyme, glucose, paper_example


class TestAISCost:
    def test_one_mix_per_node(self, glucose_dag):
        cost = ais_mix_cost(glucose_dag)
        assert cost.mix_operations == 5
        assert cost.discarded_units == 0

    def test_cascade_stages_counted(self):
        from repro.core.cascading import cascade_mix, stage_factors

        dag = AssayDAG()
        dag.add_input("A")
        dag.add_input("B")
        dag.add_mix("M", {"A": 1, "B": 999})
        cascaded, __ = cascade_mix(
            dag, "M", stage_factors(Fraction(1000), 3)
        )
        cost = ais_mix_cost(cascaded)
        assert cost.mix_operations == 3
        assert cost.discarded_units == 2  # the two excess intermediates


class TestBiostreamCost:
    def test_pure_1_1_mix_costs_one(self):
        dag = AssayDAG()
        dag.add_input("A")
        dag.add_input("B")
        dag.add_mix("M", {"A": 1, "B": 1})
        cost = biostream_mix_cost(dag)
        assert cost.mix_operations == 1
        assert cost.discarded_units == 0

    def test_skewed_mix_needs_tree(self):
        dag = AssayDAG()
        dag.add_input("A")
        dag.add_input("B")
        dag.add_mix("M", {"A": 1, "B": 9})
        cost = biostream_mix_cost(dag)
        assert cost.mix_operations > 1
        assert cost.worst_error <= Fraction(1, 50)

    def test_three_way_mix_two_stages(self):
        dag = AssayDAG()
        for name in "ABC":
            dag.add_input(name)
        dag.add_mix("M", {"A": 1, "B": 1, "C": 2})
        cost = biostream_mix_cost(dag)
        # stage 1: A+B at 1:1 (one mix); stage 2: AB vs C at 1:1 (one mix)
        assert cost.mix_operations == 2

    def test_tolerance_controls_cost(self):
        dag = AssayDAG()
        dag.add_input("A")
        dag.add_input("B")
        dag.add_mix("M", {"A": 1, "B": 99})
        loose = biostream_mix_cost(dag, Fraction(1, 10))
        tight = biostream_mix_cost(dag, Fraction(1, 1000))
        assert tight.mix_operations > loose.mix_operations


class TestPaperComparison:
    @pytest.mark.parametrize(
        "builder",
        [glucose.build_dag, enzyme.build_dag, paper_example.build_dag],
    )
    def test_ais_cheaper_on_paper_assays(self, builder):
        """The Section 3.4.1 claim: fixed-ratio mixing pays cascading on
        every non-1:1 mix, AIS only on extreme ratios."""
        dag = builder()
        ais = ais_mix_cost(dag)
        biostream = biostream_mix_cost(dag)
        assert ais.mix_operations <= biostream.mix_operations
        assert ais.discarded_units <= biostream.discarded_units

    def test_enzyme_gap_is_large(self):
        dag = enzyme.build_dag()
        ais = ais_mix_cost(dag)
        biostream = biostream_mix_cost(dag)
        # 64 combination mixes each decompose into 2 stages, and every
        # dilution needs a tree: at least 2x the wet mixing work.
        assert biostream.mix_operations >= 2 * ais.mix_operations
        assert biostream.discarded_units > 0

    def test_per_node_breakdown_complete(self, glucose_dag):
        cost = biostream_mix_cost(glucose_dag)
        assert set(cost.per_node) == {"a", "b", "c", "d", "e"}
        total = sum(m for m, __ in cost.per_node.values())
        assert total == cost.mix_operations
