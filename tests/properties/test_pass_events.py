"""Property: pass-level cache hits never change output fingerprints.

For any DAG the pipeline can compile, a warm compile that restores the
volume plan from the cache (skipping the hierarchy + rounding prefix)
must emit the same codegen output fingerprint — and the same listing —
as the cold compile that seeded the cache.  The pass events are the
witness: the warm run must actually take the cached path, not recompute.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assays import generators
from repro.compiler.cache import PlanCache
from repro.compiler.passes import PassEventBus, run_compile

seeds = st.integers(min_value=0, max_value=5000)


def random_dag(seed: int):
    return generators.layered_random_dag(4, 2, 2, seed=seed, max_ratio=6)


def compile_instrumented(seed: int, cache: PlanCache):
    bus = PassEventBus(fingerprints=True)
    ctx = run_compile(dag=random_dag(seed), cache=cache, bus=bus)
    return ctx, {event.name: event for event in bus.events}


class TestCacheHitFingerprintInvariance:
    @given(seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_warm_fingerprints_match_cold(self, seed):
        cache = PlanCache()
        cold_ctx, cold = compile_instrumented(seed, cache)
        warm_ctx, warm = compile_instrumented(seed, cache)

        # the warm run really took the cached path
        assert cold["restore-plan"].cache == "miss"
        assert warm["restore-plan"].status == "cached"
        assert warm["restore-plan"].cache == "hit"
        assert warm["hierarchy"].status == "skipped"
        assert warm["round"].status == "skipped"

        # ... and the outputs are indistinguishable
        assert warm["codegen"].fingerprint_out == cold["codegen"].fingerprint_out
        assert warm_ctx.compiled.listing() == cold_ctx.compiled.listing()
        assert warm_ctx.compile_fingerprint() == cold_ctx.compile_fingerprint()
