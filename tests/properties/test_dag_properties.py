"""Property-based structural tests for the assay DAG, with networkx as an
independent oracle."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assays import generators

dag_seeds = st.integers(min_value=0, max_value=10_000)
shapes = st.tuples(
    st.integers(min_value=2, max_value=6),   # inputs
    st.integers(min_value=1, max_value=4),   # layers
    st.integers(min_value=1, max_value=4),   # width
)


def random_dag(seed, shape, separator_probability=0.0):
    n_inputs, n_layers, width = shape
    return generators.layered_random_dag(
        n_inputs,
        n_layers,
        width,
        seed=seed,
        separator_probability=separator_probability,
    )


def to_networkx(dag):
    graph = nx.DiGraph()
    graph.add_nodes_from(dag.node_ids())
    graph.add_edges_from((e.src, e.dst) for e in dag.edges())
    return graph


class TestStructure:
    @given(seed=dag_seeds, shape=shapes)
    @settings(max_examples=60, deadline=None)
    def test_always_acyclic(self, seed, shape):
        dag = random_dag(seed, shape)
        assert nx.is_directed_acyclic_graph(to_networkx(dag))

    @given(seed=dag_seeds, shape=shapes)
    @settings(max_examples=60, deadline=None)
    def test_topological_order_valid(self, seed, shape):
        dag = random_dag(seed, shape)
        order = dag.topological_order()
        assert sorted(order) == sorted(dag.node_ids())
        position = {node: i for i, node in enumerate(order)}
        for edge in dag.edges():
            assert position[edge.src] < position[edge.dst]

    @given(seed=dag_seeds, shape=shapes)
    @settings(max_examples=60, deadline=None)
    def test_inbound_fractions_sum_to_one(self, seed, shape):
        dag = random_dag(seed, shape)
        for node in dag.nodes():
            inbound = [e for e in dag.in_edges(node.id) if not e.is_excess]
            if inbound:
                assert sum(e.fraction for e in inbound) == 1

    @given(seed=dag_seeds, shape=shapes)
    @settings(max_examples=40, deadline=None)
    def test_ancestors_match_networkx(self, seed, shape):
        dag = random_dag(seed, shape)
        graph = to_networkx(dag)
        for node_id in dag.node_ids():
            assert set(dag.ancestors(node_id)) == nx.ancestors(graph, node_id)

    @given(seed=dag_seeds, shape=shapes)
    @settings(max_examples=40, deadline=None)
    def test_descendants_match_networkx(self, seed, shape):
        dag = random_dag(seed, shape)
        graph = to_networkx(dag)
        for node_id in dag.node_ids():
            assert set(dag.descendants(node_id)) == nx.descendants(
                graph, node_id
            )

    @given(seed=dag_seeds, shape=shapes)
    @settings(max_examples=40, deadline=None)
    def test_copy_equals_original(self, seed, shape):
        dag = random_dag(seed, shape)
        clone = dag.copy()
        assert clone.node_ids() == dag.node_ids()
        assert [
            (e.src, e.dst, e.fraction) for e in clone.edges()
        ] == [(e.src, e.dst, e.fraction) for e in dag.edges()]

    @given(seed=dag_seeds, shape=shapes)
    @settings(max_examples=30, deadline=None)
    def test_subgraph_of_ancestors_closed(self, seed, shape):
        """The ancestor closure of any node is a valid sub-DAG in which
        every non-source node keeps all of its inbound edges."""
        dag = random_dag(seed, shape)
        outputs = dag.outputs()
        target = outputs[0].id
        members = set(dag.ancestors(target)) | {target}
        sub = dag.subgraph(members)
        for node_id in sub.node_ids():
            assert sub.in_degree(node_id) == dag.in_degree(node_id)
