"""Property: the source verifier subsumes the unrolled pipeline's verdict.

The whole value of analysing the *rolled* program is that one fixpoint
covers every loop bound.  That claim is only worth anything if it is
sound: whenever the concrete pipeline — unroll at a specific trip count,
then the unrolled linter — finds a *definite* error (or the front end
refuses the program outright), the source-level verifier must report an
error-severity SRC-* finding on the rolled text, without being told N.

Conversely the healthy template must verify clean for every drawn N.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import lint_program, verify_source
from repro.compiler import compile_assay
from repro.lang.errors import FrontendError
from repro.machine.spec import AQUACORE_SPEC

MUTATIONS = (
    None,  # healthy dilution series
    "double-fill",  # scalar re-defined on every trip
    "index-range",  # bank index beyond the declared size
    "dry-read",  # dry variable read before any assignment
    "bad-ratio",  # non-positive mix ratio part
    "waste-reuse",  # separation waste consumed downstream
)

#: which SRC code must fire for each mutation (None -> must be clean)
EXPECTED_CODE = {
    "double-fill": "SRC-DOUBLE-FILL",
    "index-range": "SRC-INDEX-RANGE",
    "dry-read": "SRC-DRY-UNDEFINED",
    "bad-ratio": "SRC-RATIO-NONPOSITIVE",
    "waste-reuse": "SRC-USE-AFTER-CONSUME",
}


def build_source(n: int, mutation: str | None) -> str:
    if mutation == "waste-reuse":
        # loop-free: the defect is about consumption, not trip counts
        return """\
ASSAY prop
START
fluid a, b, m, p, eff, waste, out;
MIX a AND b FOR 10;
SEPARATE it MATRIX m USING p FOR 30 INTO eff AND waste;
out = MIX eff AND waste IN RATIOS 1 : 1 FOR 10;
OUTPUT out;
END
"""
    body = {
        None: (
            "bank[i] = MIX reagent AND diluent IN RATIOS 1 : 3 FOR 10;\n"
            "OUTPUT it;"
        ),
        "double-fill": "r = MIX reagent AND diluent IN RATIOS 1 : 3 FOR 10;",
        "index-range": (
            f"bank[{n + 1}] = MIX reagent AND diluent "
            "IN RATIOS 1 : 3 FOR 10;\nOUTPUT it;"
        ),
        "dry-read": (
            "bank[i] = MIX reagent AND diluent IN RATIOS u : 3 FOR 10;\n"
            "OUTPUT it;"
        ),
        "bad-ratio": (
            "bank[i] = MIX reagent AND diluent IN RATIOS 0 - 1 : 3 "
            "FOR 10;\nOUTPUT it;"
        ),
    }[mutation]
    tail = "OUTPUT r;\n" if mutation == "double-fill" else ""
    return (
        "ASSAY prop\n"
        "START\n"
        "fluid reagent, diluent, r;\n"
        f"fluid bank[{n}];\n"
        "VAR i, u;\n"
        f"FOR i FROM 1 TO {n} START\n"
        f"{body}\n"
        "ENDFOR\n"
        f"{tail}"
        "END\n"
    )


def unrolled_has_definite_error(source: str) -> bool:
    """Ground truth at a concrete bound: front-end raise or lint error."""
    try:
        compiled = compile_assay(source)
    except FrontendError:
        return True
    report = lint_program(compiled.program, AQUACORE_SPEC)
    return report.counts.get("error", 0) > 0


@given(
    n=st.integers(min_value=2, max_value=12),
    mutation=st.sampled_from(MUTATIONS),
)
@settings(max_examples=60, deadline=None)
def test_definite_unrolled_errors_are_subsumed(n, mutation):
    source = build_source(n, mutation)
    report = verify_source(source, name="prop")
    assert report.stats["converged"]
    src_errors = {
        f.code for f in report.findings if f.severity.value == "error"
    }
    if unrolled_has_definite_error(source):
        assert src_errors, (
            f"unrolled pipeline rejects n={n} mutation={mutation} but the "
            f"source verifier found no error:\n{report.render_text()}"
        )
        if mutation is not None:
            assert EXPECTED_CODE[mutation] in src_errors
    if mutation is None:
        assert not src_errors, report.render_text()


@given(n=st.integers(min_value=2, max_value=12))
@settings(max_examples=20, deadline=None)
def test_healthy_template_is_clean_and_bound_independent(n):
    report = verify_source(build_source(n, None), name="prop")
    baseline = verify_source(build_source(2, None), name="prop")
    assert report.is_clean, report.render_text()
    assert not unrolled_has_definite_error(build_source(n, None))
    # same invariants regardless of the drawn bound
    assert report.codes() == baseline.codes()
    assert report.stats["sweeps"] == baseline.stats["sweeps"]
