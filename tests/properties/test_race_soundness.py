"""Property: the static race detector subsumes the dynamic certifier.

``analyze_races`` claims its verdict holds for *every* interleaving the
barriers admit.  The dynamic oracle is ``certify_schedule`` replaying one
*concrete* interleaving of the merged instruction stream.  Soundness is
the differential statement: for every drawn interleaving of two assays,
every dynamic ``SCHED-*`` error that appears only in the merged replay
(not in either solo replay) must be subsumed by a static ``RACE-*``
finding on the same resource.  Conversely, a statically race-free pair
must replay clean under every drawn interleaving.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.certify import certify_schedule
from repro.analysis.races import analyze_races
from repro.ir.instructions import input_, mix, move, output, sense
from repro.ir.program import AISProgram
from repro.machine.spec import AQUACORE_SPEC

#: dynamic error code -> static codes allowed to subsume it.  GUARDED is
#: always admissible: a possible-race note still covers the resource.
SUBSUMES = {
    "SCHED-DOUBLE-BOOK": {"RACE-WW", "RACE-RW", "RACE-GUARDED"},
    "SCHED-DRY-PUMP": {"RACE-WW", "RACE-RW", "RACE-GUARDED"},
    "SCHED-PORT-CLASH": {"RACE-PORT", "RACE-GUARDED"},
    "SCHED-UNROUTABLE": {"RACE-UNROUTABLE"},
    "SCHED-ROUTE-THROUGH": {"RACE-ROUTE"},
    "SCHED-ROUTE-OVERLAP": {"RACE-ROUTE"},
}


def _program(name, *instructions):
    program = AISProgram(name=name, machine=AQUACORE_SPEC.name)
    program.extend(instructions)
    return program


def _assay(name, *, port, fluid, reservoir, unit, out):
    return _program(
        name,
        input_(reservoir, port, abs_volume=Fraction(10), meta={"node": fluid}),
        move(unit, reservoir),
        mix(unit, 3),
        output(out, unit),
    )


def _pairs():
    """Template pairs: three conflicting shapes and one healthy one."""
    return {
        "shared-mixer": (
            _assay("a", port="ip1", fluid="A", reservoir="s1",
                   unit="mixer1", out="op1"),
            _assay("b", port="ip2", fluid="B", reservoir="s2",
                   unit="mixer1", out="op2"),
        ),
        "shared-reservoir": (
            _assay("a", port="ip1", fluid="A", reservoir="s1",
                   unit="mixer1", out="op1"),
            _assay("b", port="ip2", fluid="B", reservoir="s1",
                   unit="mixer2", out="op2"),
        ),
        "port-clash": (
            _assay("a", port="ip1", fluid="A", reservoir="s1",
                   unit="mixer1", out="op1"),
            _assay("b", port="ip1", fluid="B", reservoir="s2",
                   unit="mixer2", out="op2"),
        ),
        "sense-vs-fill": (
            _program(
                "a",
                input_("s1", "ip1", abs_volume=Fraction(10),
                       meta={"node": "A"}),
                move("sensor1", "s1"),
            ),
            _program(
                "b",
                input_("s2", "ip2", abs_volume=Fraction(10),
                       meta={"node": "B"}),
                move("sensor1", "s2"),
                sense("sensor1", "OD", "r0"),
            ),
        ),
        "disjoint": (
            _assay("a", port="ip1", fluid="A", reservoir="s1",
                   unit="mixer1", out="op1"),
            _assay("b", port="ip2", fluid="B", reservoir="s2",
                   unit="mixer2", out="op2"),
        ),
    }


def _interleave(a, b, picks):
    """Merge two programs into one stream; ``picks`` chooses the source
    program at each step (subsequence order is preserved)."""
    merged = AISProgram(name=f"{a.name}|{b.name}", machine=a.machine)
    cursors = [iter(a.instructions), iter(b.instructions)]
    remaining = [len(a.instructions), len(b.instructions)]
    queue = list(picks)
    while remaining[0] or remaining[1]:
        choice = queue.pop(0) if queue else 0
        source = choice if remaining[choice] else 1 - choice
        merged.append(next(cursors[source]))
        remaining[source] -= 1
    return merged


def _base(operand):
    return (operand or "").split(".")[0]


def _error_keys(diagnostics):
    return {
        (d.code, _base(d.operand))
        for d in diagnostics
        if d.severity.value == "error"
    }


def _picks(pair_names):
    return st.tuples(
        st.sampled_from(pair_names),
        st.lists(st.integers(min_value=0, max_value=1),
                 min_size=16, max_size=16),
    )


PAIR_NAMES = sorted(_pairs())


@given(_picks(PAIR_NAMES))
@settings(max_examples=60, deadline=None)
def test_static_races_subsume_dynamic_schedule_errors(case):
    pair_name, picks = case
    a, b = _pairs()[pair_name]
    merged = _interleave(a, b, picks)
    assert len(merged.instructions) == (
        len(a.instructions) + len(b.instructions)
    )

    solo = _error_keys(certify_schedule(a, AQUACORE_SPEC)[0])
    solo |= _error_keys(certify_schedule(b, AQUACORE_SPEC)[0])
    dynamic = _error_keys(certify_schedule(merged, AQUACORE_SPEC)[0])
    escaped = dynamic - solo

    report = analyze_races([a, b], AQUACORE_SPEC, share_storage=True)
    static_by_base = {}
    for finding in report.findings:
        static_by_base.setdefault(_base(finding.operand), set()).add(
            finding.code
        )

    for code, base in escaped:
        covering = static_by_base.get(base, set())
        assert covering, (
            f"dynamic {code} on {base!r} (pair {pair_name!r}, picks "
            f"{picks}) escaped the static detector: {report.render_text()}"
        )
        allowed = SUBSUMES.get(code)
        if allowed is not None:
            assert covering & allowed, (
                f"dynamic {code} on {base!r} covered only by {covering}, "
                f"expected one of {allowed}"
            )


@given(_picks(["disjoint"]))
@settings(max_examples=30, deadline=None)
def test_race_free_pair_replays_clean_under_every_interleaving(case):
    _, picks = case
    a, b = _pairs()["disjoint"]
    report = analyze_races([a, b], AQUACORE_SPEC, share_storage=True)
    assert not [
        d for d in report.findings if d.severity.value == "error"
    ], report.render_text()
    merged = _interleave(a, b, picks)
    dynamic = _error_keys(certify_schedule(merged, AQUACORE_SPEC)[0])
    assert dynamic == set(), dynamic


def test_serialized_concatenation_matches_full_barrier():
    """Running one assay strictly after the other is the concrete witness
    of the full-barrier schedule: both oracles must agree it is safe."""
    a, b = _pairs()["shared-mixer"]
    report = analyze_races(
        [a, b], AQUACORE_SPEC,
        barriers=[(len(a.instructions), 0)],
        share_storage=True,
    )
    assert report.findings == [], report.render_text()
    merged = _interleave(a, b, [0] * len(a.instructions) + [1] * 16)
    assert _error_keys(certify_schedule(merged, AQUACORE_SPEC)[0]) == set()
