"""Property tests for the plan-certificate verifier.

Two directions:

* **soundness of the compiler** (and of the verifier's constraints): every
  plan the pipeline produces over a random DAG certifies with zero
  errors;
* **sensitivity**: perturbing any single dispensed volume by one least
  count breaks exact flow conservation somewhere, and the verifier
  catches it with a PLAN-* error.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.certify import certify, certify_plan
from repro.assays import generators
from repro.compiler import compile_dag

seeds = st.integers(min_value=0, max_value=5000)


def _compiled(seed: int, separator_probability: float = 0.0):
    dag = generators.layered_random_dag(
        4, 2, 2, seed=seed, max_ratio=5,
        separator_probability=separator_probability,
    )
    return compile_dag(dag)


class TestCompilerOutputCertifies:
    @given(seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_random_plans_certify_without_errors(self, seed):
        compiled = _compiled(seed)
        report = certify(compiled)
        assert report.counts["error"] == 0, report.render_text()

    @given(seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_separator_plans_agree_with_the_linter(self, seed):
        """Random separator DAGs can tickle a genuine codegen hazard
        (back-to-back separations flush an unparked terminal product).
        On such programs the linter errors too — the two independent
        analyzers must agree; on lint-clean programs certify is clean."""
        from repro.analysis import lint_program

        compiled = _compiled(seed, separator_probability=0.4)
        report = certify(compiled)
        lint = lint_program(compiled.program, compiled.spec)
        if lint.counts["error"] == 0:
            assert report.counts["error"] == 0, report.render_text()
        elif report.counts["error"]:
            assert any(
                code.startswith("SCHED-") for code in report.codes()
            ), report.render_text()

    @given(seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_feasible_plans_are_fully_clean(self, seed):
        compiled = _compiled(seed)
        if compiled.needs_regeneration or compiled.assignment is None:
            return
        report = certify(compiled)
        assert report.is_clean, report.render_text()


class TestSingleStepSensitivity:
    @given(seed=seeds, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_any_one_least_count_perturbation_is_caught(self, seed, data):
        compiled = _compiled(seed)
        assignment = compiled.assignment
        if assignment is None or compiled.needs_regeneration:
            return
        least = compiled.spec.limits.least_count
        dispensed = [
            e for e in compiled.final_dag.edges() if not e.is_excess
        ]
        if not dispensed:
            return
        edge = data.draw(st.sampled_from(dispensed), label="edge")
        direction = data.draw(st.sampled_from([1, -1]), label="direction")
        original = assignment.edge_volume[edge.key]
        assignment.edge_volume[edge.key] = original + direction * least
        try:
            diagnostics, _ = certify_plan(
                compiled.final_dag, assignment, compiled.spec.limits
            )
        finally:
            assignment.edge_volume[edge.key] = original
        errors = [d for d in diagnostics if d.severity.value == "error"]
        assert errors, "a one-least-count lie slipped through"
        assert all(d.code.startswith("PLAN-") for d in errors)


class TestMetricsInvariants:
    @given(seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_waste_accounting_is_conservative(self, seed):
        compiled = _compiled(seed)
        if compiled.assignment is None:
            return
        report = certify(compiled)
        metrics = report.metrics
        assert metrics["loaded_nl"] >= 0
        assert metrics["delivered_nl"] >= 0
        # nothing delivered can exceed what was loaded
        assert (
            metrics["delivered_nl"]
            <= metrics["loaded_nl"] + float(Fraction(1, 1000))
        )
        assert 0 <= metrics["utilisation"] <= 1
