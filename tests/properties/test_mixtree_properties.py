"""Property-based tests for the Biostream binary mixing trees."""

from fractions import Fraction

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.biostream.mixtree import bits_for_tolerance, one_to_one_plan

targets = st.fractions(
    min_value=Fraction(1, 1000),
    max_value=Fraction(999, 1000),
    max_denominator=1000,
)
bit_counts = st.integers(min_value=1, max_value=16)


class TestPlanProperties:
    @given(target=targets, bits=bit_counts)
    @settings(max_examples=200, deadline=None)
    def test_error_bound(self, target, bits):
        plan = one_to_one_plan(target, bits)
        assert plan.error <= Fraction(1, 2 ** (bits + 1))

    @given(target=targets, bits=bit_counts)
    @settings(max_examples=200, deadline=None)
    def test_cost_bounded_by_bits(self, target, bits):
        plan = one_to_one_plan(target, bits)
        assert plan.mix_count <= bits

    @given(target=targets, bits=bit_counts)
    @settings(max_examples=200, deadline=None)
    def test_achieved_is_binary_fraction(self, target, bits):
        plan = one_to_one_plan(target, bits)
        assert (plan.achieved * 2 ** bits).denominator == 1

    @given(target=targets, bits=bit_counts)
    @settings(max_examples=200, deadline=None)
    def test_recurrence_reproduces_achieved(self, target, bits):
        """Re-simulating the plan's steps lands exactly on `achieved`."""
        plan = one_to_one_plan(target, bits)
        assume(plan.steps)
        concentration = Fraction(0)
        for step in plan.steps:
            bit = 1 if step.ingredient == "sample" else 0
            concentration = (concentration + bit) / 2
            assert step.concentration_after == concentration
        assert concentration == plan.achieved

    @given(target=targets, bits=bit_counts)
    @settings(max_examples=200, deadline=None)
    def test_ingredient_accounting(self, target, bits):
        plan = one_to_one_plan(target, bits)
        assert plan.sample_units + plan.buffer_units == plan.mix_count
        assert plan.discarded_units == max(0, plan.mix_count - 1)

    @given(target=targets)
    @settings(max_examples=200, deadline=None)
    def test_tolerance_bits_suffice(self, target):
        tolerance = Fraction(1, 50)
        bits = bits_for_tolerance(target, tolerance)
        plan = one_to_one_plan(target, bits)
        assert plan.relative_error <= tolerance

    @given(target=targets, bits=st.integers(min_value=2, max_value=14))
    @settings(max_examples=200, deadline=None)
    def test_more_bits_never_less_accurate(self, target, bits):
        coarse = one_to_one_plan(target, bits)
        fine = one_to_one_plan(target, bits + 2)
        assert fine.error <= coarse.error
