"""Property-based tests for least-count quantisation and rounding."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.limits import HardwareLimits
from repro.core.dagsolve import dagsolve
from repro.core.rounding import max_ratio_error, round_assignment
from repro.assays import generators

volumes = st.fractions(
    min_value=Fraction(0), max_value=Fraction(200), max_denominator=10_000
)
least_counts = st.fractions(
    min_value=Fraction(1, 100), max_value=Fraction(1), max_denominator=100
)


class TestQuantize:
    @given(volume=volumes, least=least_counts)
    @settings(max_examples=150, deadline=None)
    def test_result_is_multiple(self, volume, least):
        limits = HardwareLimits(max_capacity=Fraction(1000), least_count=least)
        quantised = limits.quantize(volume)
        assert (quantised / least).denominator == 1

    @given(volume=volumes, least=least_counts)
    @settings(max_examples=150, deadline=None)
    def test_error_at_most_half_step(self, volume, least):
        limits = HardwareLimits(max_capacity=Fraction(1000), least_count=least)
        quantised = limits.quantize(volume)
        assert abs(quantised - volume) <= least / 2

    @given(steps=st.integers(min_value=0, max_value=10_000), least=least_counts)
    @settings(max_examples=150, deadline=None)
    def test_multiples_are_fixed_points(self, steps, least):
        limits = HardwareLimits(max_capacity=Fraction(20_000), least_count=least)
        volume = steps * least
        assert limits.quantize(volume) == volume

    @given(volume=volumes, least=least_counts)
    @settings(max_examples=150, deadline=None)
    def test_idempotent(self, volume, least):
        limits = HardwareLimits(max_capacity=Fraction(1000), least_count=least)
        once = limits.quantize(volume)
        assert limits.quantize(once) == once

    @given(a=volumes, b=volumes, least=least_counts)
    @settings(max_examples=150, deadline=None)
    def test_monotone(self, a, b, least):
        limits = HardwareLimits(max_capacity=Fraction(1000), least_count=least)
        low, high = sorted((a, b))
        assert limits.quantize(low) <= limits.quantize(high)


class TestRoundedAssignments:
    @given(seed=st.integers(min_value=0, max_value=5000))
    @settings(max_examples=30, deadline=None)
    def test_ratio_error_bounded_by_headroom(self, seed):
        """With >= 100 least-count steps of headroom at every edge, rounding
        perturbs ratios by at most ~1 part in 100."""
        limits = HardwareLimits(
            max_capacity=Fraction(100), least_count=Fraction(1, 10)
        )
        dag = generators.layered_random_dag(
            4, 2, 2, seed=seed, max_ratio=5
        )
        assignment = dagsolve(dag, limits)
        if not assignment.feasible:
            return
        rounded = round_assignment(assignment)
        min_edge = min(assignment.edge_volume.values())
        steps = min_edge / limits.least_count
        bound = Fraction(1) / steps  # one step relative to smallest edge
        assert max_ratio_error(rounded) <= 2 * bound

    @given(seed=st.integers(min_value=0, max_value=5000))
    @settings(max_examples=30, deadline=None)
    def test_rounded_edges_are_multiples(self, seed):
        limits = HardwareLimits(
            max_capacity=Fraction(100), least_count=Fraction(1, 10)
        )
        dag = generators.layered_random_dag(4, 2, 2, seed=seed, max_ratio=5)
        rounded = round_assignment(dagsolve(dag, limits))
        for volume in rounded.edge_volume.values():
            assert (volume / limits.least_count).denominator == 1
