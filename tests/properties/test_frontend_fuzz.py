"""Grammar-directed fuzzing of the whole front end.

Random syntactically-valid assays are generated from the language grammar;
every one must tokenise, parse, analyse, unroll, lower to a valid DAG, and
(when small enough) compile and execute without internal errors — the
accepted-programs-never-crash property.
"""

import dataclasses
import random
from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import compile_assay
from repro.ir.builder import build_dag_from_flat
from repro.lang.parser import parse
from repro.lang.unroll import unroll
from repro.machine.interpreter import Machine
from repro.machine.spec import AQUACORE_XL_SPEC
from repro.runtime.executor import AssayExecutor


def generate_source(seed: int) -> str:
    """A random valid assay: declarations, dilution loops, mixes, heats,
    senses — shaped like real protocols, sized to stay fast."""
    rng = random.Random(seed)
    n_inputs = rng.randint(2, 4)
    inputs = [f"in{i}" for i in range(n_inputs)]
    lines = [
        "ASSAY fuzz",
        "START",
        f"fluid {', '.join(inputs)};",
        "fluid work[4];",
        "VAR i, r, Reading[6];",
    ]
    n_cells = rng.randint(1, 4)
    for index in range(1, n_cells + 1):
        a, b = rng.sample(inputs, 2)
        p, q = rng.randint(1, 9), rng.randint(1, 9)
        lines.append(
            f"work[{index}] = MIX {a} AND {b} IN RATIOS {p} : {q} "
            f"FOR {rng.randint(5, 30)};"
        )
        follow = rng.random()
        if follow < 0.3:
            lines.append(
                f"INCUBATE it AT {rng.randint(20, 95)} "
                f"FOR {rng.randint(10, 60)};"
            )
        elif follow < 0.4:
            lines.append(
                f"CONCENTRATE it AT 90 FOR 30 KEEP 1 : {rng.randint(2, 4)};"
            )
        if rng.random() < 0.7:
            lines.append(f"SENSE OPTICAL it INTO Reading[{index}];")
    if rng.random() < 0.5 and n_cells >= 2:
        lines.append("FOR i FROM 1 TO 2 START")
        other = rng.choice(inputs)
        lines.append(
            f"MIX work[i] AND {other} IN RATIOS i : 2 FOR 10;"
        )
        lines.append("SENSE OPTICAL it INTO Reading[i + 4];")
        lines.append("ENDFOR")
    lines.append("END")
    return "\n".join(lines) + "\n"


class TestAcceptedProgramsNeverCrash:
    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=60, deadline=None)
    def test_front_end_pipeline(self, seed):
        source = generate_source(seed)
        flat = unroll(parse(source))
        dag = build_dag_from_flat(flat)
        dag.validate()
        assert dag.node_count >= 3

    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=15, deadline=None)
    def test_compile_and_execute(self, seed):
        source = generate_source(seed)
        compiled = compile_assay(source, spec=AQUACORE_XL_SPEC)
        if compiled.plan is not None and not compiled.plan.feasible:
            return  # regeneration plans may legitimately fail to execute
        machine = Machine(AQUACORE_XL_SPEC)
        result = AssayExecutor(compiled, machine).run()
        assert result.regenerations == 0

    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=30, deadline=None)
    def test_unroll_is_deterministic(self, seed):
        source = generate_source(seed)
        first = unroll(parse(source))
        second = unroll(parse(source))
        assert [s.target for s in first.statements] == [
            s.target for s in second.statements
        ]
        assert first.input_fluids == second.input_fluids
