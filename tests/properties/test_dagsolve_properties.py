"""Property-based tests for DAGSolve's algebraic invariants."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dagsolve import compute_vnorms, dispense
from repro.core.errors import InfeasibleError, SolverError
from repro.core.limits import PAPER_LIMITS, HardwareLimits
from repro.core.lp import lp_solve
from repro.assays import generators

dag_seeds = st.integers(min_value=0, max_value=10_000)
shapes = st.tuples(
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=3),
)


def random_dag(seed, shape, separator_probability=0.0):
    return generators.layered_random_dag(
        shape[0],
        shape[1],
        shape[2],
        seed=seed,
        max_ratio=9,
        separator_probability=separator_probability,
    )


class TestBackwardPass:
    @given(seed=dag_seeds, shape=shapes)
    @settings(max_examples=60, deadline=None)
    def test_outputs_unit_vnorm(self, seed, shape):
        dag = random_dag(seed, shape)
        vnorms = compute_vnorms(dag)
        for node in dag.outputs():
            assert vnorms.node_vnorm[node.id] == 1

    @given(seed=dag_seeds, shape=shapes)
    @settings(max_examples=60, deadline=None)
    def test_flow_conservation(self, seed, shape):
        """Production equals total use at every non-output node — the second
        artificial constraint, exactly."""
        dag = random_dag(seed, shape)
        vnorms = compute_vnorms(dag)
        for node in dag.nodes():
            outbound = [e for e in dag.out_edges(node.id) if not e.is_excess]
            if outbound:
                used = sum(vnorms.edge_vnorm[e.key] for e in outbound)
                assert vnorms.node_vnorm[node.id] == used

    @given(seed=dag_seeds, shape=shapes)
    @settings(max_examples=60, deadline=None)
    def test_ratio_constraints_exact(self, seed, shape):
        dag = random_dag(seed, shape)
        vnorms = compute_vnorms(dag)
        for node in dag.nodes():
            inbound = [e for e in dag.in_edges(node.id) if not e.is_excess]
            if not inbound:
                continue
            total = sum(vnorms.edge_vnorm[e.key] for e in inbound)
            for edge in inbound:
                assert vnorms.edge_vnorm[edge.key] == edge.fraction * total

    @given(seed=dag_seeds, shape=shapes, factor=st.integers(2, 9))
    @settings(max_examples=40, deadline=None)
    def test_vnorms_scale_linearly_with_targets(self, seed, shape, factor):
        dag = random_dag(seed, shape)
        base = compute_vnorms(dag)
        targets = {node.id: Fraction(factor) for node in dag.outputs()}
        scaled = compute_vnorms(dag, targets)
        for node_id, value in base.node_vnorm.items():
            assert scaled.node_vnorm[node_id] == value * factor

    @given(seed=dag_seeds, shape=shapes)
    @settings(max_examples=40, deadline=None)
    def test_separators_respect_output_fraction(self, seed, shape):
        dag = random_dag(seed, shape, separator_probability=0.3)
        vnorms = compute_vnorms(dag)
        for node in dag.nodes():
            if node.output_fraction is None:
                continue
            if dag.in_degree(node.id) == 0:
                continue
            assert (
                vnorms.node_vnorm[node.id]
                == node.output_fraction * vnorms.node_input_vnorm[node.id]
            )


class TestDispense:
    @given(seed=dag_seeds, shape=shapes)
    @settings(max_examples=60, deadline=None)
    def test_capacity_never_exceeded(self, seed, shape):
        dag = random_dag(seed, shape)
        assignment = dispense(dag, compute_vnorms(dag), PAPER_LIMITS)
        for node in dag.nodes():
            load = max(
                assignment.node_volume[node.id],
                assignment.node_input_volume[node.id],
            )
            assert load <= PAPER_LIMITS.max_capacity

    @given(seed=dag_seeds, shape=shapes)
    @settings(max_examples=60, deadline=None)
    def test_some_node_pinned_at_capacity(self, seed, shape):
        """Unless a constrained input binds, the anchor sits exactly at the
        machine maximum — DAGSolve wastes no headroom."""
        dag = random_dag(seed, shape)
        assignment = dispense(dag, compute_vnorms(dag), PAPER_LIMITS)
        assert assignment.max_node_volume() == PAPER_LIMITS.max_capacity

    @given(seed=dag_seeds, shape=shapes)
    @settings(max_examples=30, deadline=None)
    def test_dagsolve_feasible_implies_lp_feasible(self, seed, shape):
        """DAGSolve's solution space is a subset of LP's: whenever DAGSolve
        finds a feasible assignment, the LP must be satisfiable too."""
        dag = random_dag(seed, shape)
        assignment = dispense(dag, compute_vnorms(dag), PAPER_LIMITS)
        if not assignment.feasible:
            return
        try:
            lp = lp_solve(dag, PAPER_LIMITS, output_tolerance=None)
        except (InfeasibleError, SolverError):
            raise AssertionError(
                "LP infeasible although DAGSolve found a feasible point"
            )
        assert lp.feasible

    @given(
        seed=dag_seeds,
        shape=shapes,
        capacity=st.integers(min_value=10, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_scale_proportional_to_capacity(self, seed, shape, capacity):
        dag = random_dag(seed, shape)
        limits = HardwareLimits(
            max_capacity=Fraction(capacity), least_count=Fraction(1, 10)
        )
        base = dispense(dag, compute_vnorms(dag), PAPER_LIMITS)
        scaled = dispense(dag, compute_vnorms(dag), limits)
        ratio = Fraction(capacity, 100)
        for node_id, volume in base.node_volume.items():
            assert scaled.node_volume[node_id] == volume * ratio
