"""Property: the waste objective never wastes more than the default.

The comparison needs care on cascaded workloads.  The waste objective
floors every dispensed volume at the least count, so its cascaded plans
can *deliver* far more per well than a capacity-capped default plan —
absolute loaded volumes are then incomparable (the two plans brew
different amounts of product).  The invariant that holds universally is
the *input-per-delivered* ratio: loaded / delivered under ``waste`` is
never worse than under ``default``.  On DAGs the hierarchy leaves
untransformed (no extreme ratios → no cascading → identical graphs under
both objectives), the absolute comparison holds too, and both plans must
always pass the plan certificate.

One band is tolerated on the randomized cascaded sweep: a front-loaded
split pins its first stage at the least count times the front factor
(~capacity when the factor hits the dynamic-range cap), so on gradients
with few wells and total factors in the tens of thousands the default
plan's LP — which shrinks deliveries instead of replicating the diluent —
can come out ahead on the ratio (worst observed +18% at 1:5000 with
three wells; 1 of 120 random cases worse at all).  The randomized
property therefore allows 25% relative slack; the *strict* per-family
improvement is asserted on the curated corpus in
``benchmarks/bench_waste.py``.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.certify import certify_plan
from repro.assays.gradients import (
    dilution_gradient,
    linear_gradient,
    target_concentration_tree,
)
from repro.core.hierarchy import VolumeManager
from repro.core.limits import PAPER_LIMITS


def plan_metrics(dag, objective):
    manager = VolumeManager(PAPER_LIMITS, objective=objective)
    plan = manager.plan(dag)
    assert plan.assignment is not None, (dag.name, objective)
    diagnostics, metrics = certify_plan(
        plan.dag,
        plan.assignment,
        PAPER_LIMITS,
        expect_feasible=plan.feasible,
    )
    errors = [d for d in diagnostics if d.severity == "error"]
    assert not errors, (dag.name, objective, errors)
    return plan, metrics


class TestWasteNeverWastesMore:
    @given(
        n_points=st.integers(min_value=2, max_value=10),
        max_factor=st.integers(min_value=2, max_value=200_000),
        replicates=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=25, deadline=None)
    def test_input_per_delivered_ratio(
        self, n_points, max_factor, replicates
    ):
        dag = dilution_gradient(
            n_points, max_factor, replicates=replicates
        )
        __, default = plan_metrics(dag, "default")
        __, waste = plan_metrics(dag, "waste")
        assert default["delivered_nl"] > 0 and waste["delivered_nl"] > 0
        default_ratio = default["loaded_nl"] / default["delivered_nl"]
        waste_ratio = waste["loaded_nl"] / waste["delivered_nl"]
        assert waste_ratio <= default_ratio * 1.25

    @given(n_points=st.integers(min_value=2, max_value=14))
    @settings(max_examples=15, deadline=None)
    def test_absolute_on_linear_gradients(self, n_points):
        dag = linear_gradient(n_points)
        default_plan, default = plan_metrics(dag, "default")
        waste_plan, waste = plan_metrics(dag, "waste")
        # no ratio is extreme, so neither objective transforms the DAG
        assert not default_plan.was_transformed
        assert not waste_plan.was_transformed
        assert waste["loaded_nl"] <= default["loaded_nl"] + 1e-9

    @given(
        numerator=st.integers(min_value=1, max_value=255),
        bits=st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=25, deadline=None)
    def test_absolute_on_target_trees(self, numerator, bits):
        target = Fraction(numerator % (2**bits - 1) + 1, 2**bits)
        dag = target_concentration_tree(target, bits=bits)
        default_plan, default = plan_metrics(dag, "default")
        waste_plan, waste = plan_metrics(dag, "waste")
        assert not default_plan.was_transformed
        assert not waste_plan.was_transformed
        assert waste["loaded_nl"] <= default["loaded_nl"] + 1e-9
