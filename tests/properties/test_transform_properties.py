"""Property-based tests for the cascading and replication transforms."""

from fractions import Fraction

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.cascading import cascade_mix, stage_factors
from repro.core.dag import AssayDAG
from repro.core.dagsolve import compute_vnorms
from repro.core.replication import replicate_node

ratios = st.integers(min_value=2, max_value=100_000)
depths = st.integers(min_value=2, max_value=5)


def skew_dag(ratio):
    dag = AssayDAG()
    dag.add_input("A")
    dag.add_input("B")
    dag.add_mix("M", {"A": 1, "B": ratio})
    return dag


class TestStageFactors:
    @given(ratio=ratios, depth=depths)
    @settings(max_examples=150, deadline=None)
    def test_product_exact(self, ratio, depth):
        factors = stage_factors(Fraction(ratio + 1), depth)
        product = Fraction(1)
        for factor in factors:
            product *= factor
        assert product == ratio + 1

    @given(ratio=ratios, depth=depths)
    @settings(max_examples=150, deadline=None)
    def test_all_factors_exceed_one(self, ratio, depth):
        for factor in stage_factors(Fraction(ratio + 1), depth):
            assert factor > 1

    @given(ratio=ratios, depth=depths)
    @settings(max_examples=150, deadline=None)
    def test_deeper_means_milder(self, ratio, depth):
        """The largest per-stage factor never grows with depth."""
        shallow = max(stage_factors(Fraction(ratio + 1), depth))
        deeper = max(stage_factors(Fraction(ratio + 1), depth + 1))
        assert deeper <= shallow


class TestCascadeSemantics:
    @given(ratio=ratios, depth=depths)
    @settings(max_examples=80, deadline=None)
    def test_overall_composition_preserved(self, ratio, depth):
        """Following the cascade chain, the delivered mixture contains
        exactly 1 part A per `ratio` parts B — the transform changes the
        realisation, never the chemistry."""
        dag = skew_dag(ratio)
        cascaded, report = cascade_mix(
            dag, "M", stage_factors(Fraction(ratio + 1), depth)
        )
        cascaded.validate()
        # Walk the chain computing the A-concentration of each stage:
        # mixing the previous concentrate (share s) with pure B dilutes
        # A's concentration by exactly s.
        concentration = {"A": Fraction(1), "B": Fraction(0)}
        previous = "A"
        for stage_id in list(report.intermediate_ids) + ["M"]:
            inbound = {
                e.src: e.fraction
                for e in cascaded.in_edges(stage_id)
                if not e.is_excess
            }
            assert set(inbound) == {previous, "B"}
            assert sum(inbound.values()) == 1
            concentration[stage_id] = (
                inbound[previous] * concentration[previous]
            )
            previous = stage_id
        assert concentration["M"] == Fraction(1, ratio + 1)

    @given(ratio=ratios, depth=depths)
    @settings(max_examples=80, deadline=None)
    def test_intermediate_vnorms_equal_final(self, ratio, depth):
        dag = skew_dag(ratio)
        cascaded, report = cascade_mix(
            dag, "M", stage_factors(Fraction(ratio + 1), depth)
        )
        vnorms = compute_vnorms(cascaded)
        for intermediate in report.intermediate_ids:
            assert vnorms.node_vnorm[intermediate] == vnorms.node_vnorm["M"]

    @given(ratio=ratios, depth=depths)
    @settings(max_examples=80, deadline=None)
    def test_excess_accounting(self, ratio, depth):
        """Used + discarded == produced at every intermediate."""
        dag = skew_dag(ratio)
        cascaded, report = cascade_mix(
            dag, "M", stage_factors(Fraction(ratio + 1), depth)
        )
        vnorms = compute_vnorms(cascaded)
        for intermediate in report.intermediate_ids:
            production = vnorms.node_vnorm[intermediate]
            used = sum(
                vnorms.edge_vnorm[e.key]
                for e in cascaded.out_edges(intermediate)
                if not e.is_excess
            )
            discarded = sum(
                vnorms.edge_vnorm[e.key]
                for e in cascaded.out_edges(intermediate)
                if e.is_excess
            )
            assert used + discarded == production


class TestReplicationSemantics:
    @given(
        uses=st.integers(min_value=2, max_value=24),
        copies=st.integers(min_value=2, max_value=6),
    )
    @settings(max_examples=80, deadline=None)
    def test_total_load_conserved(self, uses, copies):
        assume(copies <= uses)
        dag = AssayDAG()
        dag.add_input("stock")
        for i in range(uses):
            dag.add_input(f"r{i}")
            dag.add_mix(f"m{i}", {"stock": 1, f"r{i}": i + 1})
        before = compute_vnorms(dag).node_vnorm["stock"]
        vnorms = compute_vnorms(dag)
        weights = {
            e.key: vnorms.edge_vnorm[e.key]
            for e in dag.out_edges("stock")
        }
        replicated, report = replicate_node(
            dag, "stock", copies, weights=weights
        )
        replicated.validate()
        after = compute_vnorms(replicated)
        total = sum(
            after.node_vnorm[replica] for replica in report.replica_ids
        )
        assert total == before

    @given(
        uses=st.integers(min_value=2, max_value=24),
        copies=st.integers(min_value=2, max_value=6),
    )
    @settings(max_examples=80, deadline=None)
    def test_max_replica_load_reduced(self, uses, copies):
        assume(copies <= uses)
        dag = AssayDAG()
        dag.add_input("stock")
        for i in range(uses):
            dag.add_input(f"r{i}")
            dag.add_mix(f"m{i}", {"stock": 1, f"r{i}": 1})
        vnorms = compute_vnorms(dag)
        weights = {
            e.key: vnorms.edge_vnorm[e.key]
            for e in dag.out_edges("stock")
        }
        replicated, report = replicate_node(
            dag, "stock", copies, weights=weights
        )
        after = compute_vnorms(replicated)
        peak = max(
            after.node_vnorm[replica] for replica in report.replica_ids
        )
        assert peak < vnorms.node_vnorm["stock"]

    @given(
        uses=st.integers(min_value=2, max_value=24),
        copies=st.integers(min_value=2, max_value=6),
    )
    @settings(max_examples=80, deadline=None)
    def test_every_use_served_exactly_once(self, uses, copies):
        assume(copies <= uses)
        dag = AssayDAG()
        dag.add_input("stock")
        for i in range(uses):
            dag.add_input(f"r{i}")
            dag.add_mix(f"m{i}", {"stock": 2, f"r{i}": 3})
        replicated, report = replicate_node(dag, "stock", copies)
        served = [
            consumer
            for bucket in report.distribution
            for consumer in bucket
        ]
        assert sorted(served) == sorted(f"m{i}" for i in range(uses))
        for consumer in served:
            stock_edges = [
                e
                for e in replicated.in_edges(consumer)
                if e.src.startswith("stock")
            ]
            assert len(stock_edges) == 1
            assert stock_edges[0].fraction == Fraction(2, 5)
