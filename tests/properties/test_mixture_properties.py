"""Property-based tests for exact mixture arithmetic."""

from fractions import Fraction

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.machine.fluids import Mixture

volumes = st.fractions(
    min_value=Fraction(0), max_value=Fraction(1000), max_denominator=1000
)
species_names = st.sampled_from(["a", "b", "c", "d", "e"])
compositions = st.dictionaries(species_names, volumes, min_size=1, max_size=5)


class TestConservation:
    @given(components=compositions, share=st.fractions(
        min_value=Fraction(0), max_value=Fraction(1), max_denominator=97
    ))
    @settings(max_examples=100, deadline=None)
    def test_take_conserves_volume_exactly(self, components, share):
        mixture = Mixture(dict(components))
        total = mixture.volume
        taken = mixture.take(total * share)
        assert taken.volume + mixture.volume == total

    @given(components=compositions, share=st.fractions(
        min_value=Fraction(0), max_value=Fraction(1), max_denominator=97
    ))
    @settings(max_examples=100, deadline=None)
    def test_take_conserves_each_species(self, components, share):
        mixture = Mixture(dict(components))
        before = {s: mixture.amount(s) for s in mixture.species()}
        taken = mixture.take(mixture.volume * share)
        for species, amount in before.items():
            assert taken.amount(species) + mixture.amount(species) == amount

    @given(left=compositions, right=compositions)
    @settings(max_examples=100, deadline=None)
    def test_merge_conserves(self, left, right):
        a = Mixture(dict(left))
        b = Mixture(dict(right))
        merged = a.merge(b)
        assert merged.volume == a.volume + b.volume

    @given(components=compositions)
    @settings(max_examples=100, deadline=None)
    def test_concentrations_sum_to_one(self, components):
        mixture = Mixture(dict(components))
        assume(not mixture.is_empty)
        total = sum(
            mixture.concentration(species) for species in mixture.species()
        )
        assert total == 1


class TestProportionality:
    @given(components=compositions, share=st.fractions(
        min_value=Fraction(1, 97), max_value=Fraction(96, 97),
        max_denominator=97,
    ))
    @settings(max_examples=100, deadline=None)
    def test_take_preserves_concentrations(self, components, share):
        mixture = Mixture(dict(components))
        assume(mixture.volume > 0)
        expected = {
            species: mixture.concentration(species)
            for species in mixture.species()
        }
        taken = mixture.take(mixture.volume * share)
        for species, concentration in expected.items():
            assert taken.concentration(species) == concentration
            if not mixture.is_empty:
                assert mixture.concentration(species) == concentration

    @given(components=compositions, factor=st.fractions(
        min_value=Fraction(0), max_value=Fraction(10), max_denominator=13
    ))
    @settings(max_examples=100, deadline=None)
    def test_scaled_volume(self, components, factor):
        mixture = Mixture(dict(components))
        assert mixture.scaled(factor).volume == mixture.volume * factor
