"""Fault-injection properties.

Two contracts from the robustness design (docs/ROBUSTNESS.md):

1. **Zero-fault transparency** — installing an injector with the empty
   fault plan is a strict no-op: the trace and readings are byte-identical
   to running with no injector at all.
2. **Loss-fault semantic transparency** — a run perturbed only by *loss*
   faults (reservoir depletion, transient transport failure) that
   completes within its recovery bounds ends with exactly the fault-free
   product mixtures, readings, and shipped volumes: retries repeat
   un-started transfers and regeneration re-executes producing slices at
   their planned volumes.
"""

import json
from fractions import Fraction

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.assays import generators
from repro.compiler import compile_dag
from repro.machine.faults import LOSS_KINDS, FaultInjector, FaultPlan
from repro.machine.interpreter import Machine
from repro.machine.spec import AQUACORE_XL_SPEC
from repro.runtime.executor import AssayExecutor

dag_seeds = st.integers(min_value=0, max_value=1_500)
fault_seeds = st.integers(min_value=0, max_value=10_000)


def build_compiled(seed):
    dag = generators.layered_random_dag(4, 3, 2, seed=seed, max_ratio=9)
    return compile_dag(dag, spec=AQUACORE_XL_SPEC)


def run(compiled, injector=None):
    machine = Machine(AQUACORE_XL_SPEC)
    executor = AssayExecutor(
        compiled, machine, injector=injector, capture_failures=True
    )
    return executor.run()


def canonical_trace(result) -> str:
    return json.dumps(result.trace.to_dict(), sort_keys=True)


class TestZeroFaultTransparency:
    @given(seed=dag_seeds)
    @settings(max_examples=20, deadline=None)
    def test_empty_plan_is_byte_identical(self, seed):
        compiled = build_compiled(seed)
        plain = run(compiled)
        injected = run(compiled, FaultInjector(FaultPlan.none()))
        assert canonical_trace(injected) == canonical_trace(plain)
        assert injected.results == plain.results
        assert injected.machine.output_mixtures == plain.machine.output_mixtures
        assert injected.machine.injector.injected == {}

    def test_empty_plan_on_corpus_assay(self):
        from repro.assays import glucose
        from repro.compiler import compile_assay

        compiled = compile_assay(glucose.SOURCE)
        plain = run(compiled)
        injected = run(compiled, FaultInjector(FaultPlan.none()))
        assert canonical_trace(injected) == canonical_trace(plain)
        assert injected.results == plain.results


class TestLossFaultTransparency:
    @given(seed=dag_seeds, fault_seed=fault_seeds)
    @settings(max_examples=20, deadline=None)
    def test_recovered_loss_faults_preserve_products(self, seed, fault_seed):
        compiled = build_compiled(seed)
        baseline = run(compiled)
        assume(baseline.succeeded)
        plan = FaultPlan.seeded(fault_seed, 0.10, kinds=LOSS_KINDS)
        faulty = run(compiled, FaultInjector(plan))
        assume(faulty.succeeded)  # bounded recovery may legitimately give up
        # exact equality: concentration vectors, readings, shipped volume
        assert faulty.machine.output_mixtures == baseline.machine.output_mixtures
        assert faulty.machine.output_tally == baseline.machine.output_tally
        assert faulty.results == baseline.results
        # losses cost extra input, never less
        drawn = lambda r: sum(  # noqa: E731
            (b.drawn for b in r.machine.ports.values()), Fraction(0)
        )
        assert drawn(faulty) >= drawn(baseline)
        if faulty.regenerations:
            assert drawn(faulty) > drawn(baseline)

    @given(fault_seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=15, deadline=None)
    def test_glucose_readings_survive_loss_faults(self, fault_seed):
        from repro.assays import glucose
        from repro.compiler import compile_assay

        compiled = compile_assay(glucose.SOURCE)
        baseline = run(compiled)
        plan = FaultPlan.seeded(fault_seed, 0.08, kinds=LOSS_KINDS)
        faulty = run(compiled, FaultInjector(plan))
        assume(faulty.succeeded)
        assert faulty.results == baseline.results
