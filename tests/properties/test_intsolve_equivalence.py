"""Property-based equivalence: the integer-scaled exact solver vs Fraction.

:mod:`repro.core.intsolve` replaces the reference DAGSolve passes with
least-count-scaled integer arithmetic; these properties pin the contract
that made the swap safe — over random layered DAGs (including extreme mix
ratios and separators), every Fraction it returns, every visit counter,
every violation verdict, and every validation error is exactly what the
reference implementation produces.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assays import generators
from repro.core.dagsolve import compute_vnorms, dagsolve
from repro.core.errors import DagError, VolumeError
from repro.core.intsolve import exact_context, exact_dagsolve, exact_vnorms
from repro.core.limits import PAPER_LIMITS

dag_seeds = st.integers(min_value=0, max_value=10_000)
shapes = st.tuples(
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=3),
)


def random_dag(seed, shape, *, max_ratio=9, separator_probability=0.0):
    return generators.layered_random_dag(
        shape[0],
        shape[1],
        shape[2],
        seed=seed,
        max_ratio=max_ratio,
        separator_probability=separator_probability,
    )


def assert_same_vnorms(reference, fast):
    assert reference.node_vnorm == fast.node_vnorm
    assert reference.node_input_vnorm == fast.node_input_vnorm
    assert reference.edge_vnorm == fast.edge_vnorm
    assert reference.nodes_visited == fast.nodes_visited
    assert reference.edges_visited == fast.edges_visited


def assert_same_assignment(reference, fast):
    assert reference.node_volume == fast.node_volume
    assert reference.node_input_volume == fast.node_input_volume
    assert reference.edge_volume == fast.edge_volume
    assert reference.scale == fast.scale
    assert_same_vnorms(reference.vnorms, fast.vnorms)
    # the verdicts must agree violation by violation, not just overall
    assert reference.violations() == fast.violations()
    assert reference.feasible == fast.feasible


class TestEquivalence:
    @given(seed=dag_seeds, shape=shapes)
    @settings(max_examples=60, deadline=None)
    def test_vnorms_bit_identical(self, seed, shape):
        dag = random_dag(seed, shape)
        assert_same_vnorms(compute_vnorms(dag), exact_vnorms(dag))

    @given(seed=dag_seeds, shape=shapes)
    @settings(max_examples=60, deadline=None)
    def test_assignment_bit_identical(self, seed, shape):
        dag = random_dag(seed, shape)
        assert_same_assignment(
            dagsolve(dag, PAPER_LIMITS), exact_dagsolve(dag, PAPER_LIMITS)
        )

    @given(seed=dag_seeds, shape=shapes)
    @settings(max_examples=40, deadline=None)
    def test_extreme_ratios(self, seed, shape):
        """Mix parts up to 99:1 force large scale denominators — exactly
        the regime where float solvers drift and exact ones must not."""
        dag = random_dag(seed, shape, max_ratio=99)
        assert_same_assignment(
            dagsolve(dag, PAPER_LIMITS), exact_dagsolve(dag, PAPER_LIMITS)
        )

    @given(seed=dag_seeds, shape=shapes)
    @settings(max_examples=40, deadline=None)
    def test_separators(self, seed, shape):
        dag = random_dag(seed, shape, separator_probability=0.3)
        assert_same_assignment(
            dagsolve(dag, PAPER_LIMITS), exact_dagsolve(dag, PAPER_LIMITS)
        )

    @given(
        seed=dag_seeds,
        shape=shapes,
        num=st.integers(min_value=1, max_value=40),
        den=st.integers(min_value=1, max_value=7),
    )
    @settings(max_examples=40, deadline=None)
    def test_output_targets(self, seed, shape, num, den):
        """Fractional per-output targets drive the lazy rescaling path."""
        dag = random_dag(seed, shape)
        targets = {
            node.id: Fraction(num + i, den)
            for i, node in enumerate(dag.outputs())
        }
        assert_same_vnorms(
            compute_vnorms(dag, targets), exact_vnorms(dag, targets)
        )
        assert_same_assignment(
            dagsolve(dag, PAPER_LIMITS, targets),
            exact_dagsolve(dag, PAPER_LIMITS, targets),
        )

    @given(seed=dag_seeds, shape=shapes)
    @settings(max_examples=30, deadline=None)
    def test_context_reuse_is_transparent(self, seed, shape):
        """Two solves over the cached context equal one fresh solve."""
        dag = random_dag(seed, shape)
        first = exact_dagsolve(dag, PAPER_LIMITS)
        second = exact_dagsolve(dag, PAPER_LIMITS)
        assert exact_context(dag) is exact_context(dag)
        assert_same_assignment(first, second)


class TestErrorParity:
    def test_non_output_target_rejected(self):
        dag = generators.serial_dilution(4)
        some_input = next(iter(dag.inputs())).id
        with pytest.raises(DagError) as reference:
            compute_vnorms(dag, {some_input: Fraction(2)})
        with pytest.raises(DagError) as fast:
            exact_vnorms(dag, {some_input: Fraction(2)})
        assert str(fast.value) == str(reference.value)

    def test_non_positive_target_rejected(self):
        dag = generators.serial_dilution(4)
        output = next(iter(dag.outputs())).id
        with pytest.raises(VolumeError) as reference:
            compute_vnorms(dag, {output: Fraction(0)})
        with pytest.raises(VolumeError) as fast:
            exact_vnorms(dag, {output: Fraction(0)})
        assert str(fast.value) == str(reference.value)


class TestContextInvalidation:
    def test_structural_mutation_drops_cached_context(self):
        dag = generators.serial_dilution(4)
        before = exact_context(dag)
        assert exact_context(dag) is before  # cached

        # remove then restore an edge: any structural mutation must
        # rebuild the context
        edge = dag.in_edges(dag.outputs()[0].id)[0]
        removed = dag.remove_edge(*edge.key)
        assert "exact-context" not in dag._derived
        dag.add_edge(removed)
        assert exact_context(dag) is not before

    def test_resolve_after_mutation_matches_reference(self):
        from repro.core.dag import Edge, Node, NodeKind

        dag = generators.fanout_chain(4)
        exact_dagsolve(dag, PAPER_LIMITS)  # warm the cache
        # grow the DAG: a new output mixing two existing outputs
        outputs = [node.id for node in dag.outputs()]
        dag.add_node(Node("blend", NodeKind.MIX))
        dag.add_edge(Edge(outputs[0], "blend", Fraction(1, 2)))
        dag.add_edge(Edge(outputs[1], "blend", Fraction(1, 2)))
        assert_same_assignment(
            dagsolve(dag, PAPER_LIMITS), exact_dagsolve(dag, PAPER_LIMITS)
        )
