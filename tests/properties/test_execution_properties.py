"""Property-based end-to-end tests: compile random assays, execute them,
and check conservation and plan/execution agreement."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import compile_dag
from repro.machine.interpreter import Machine
from repro.machine.spec import AQUACORE_XL_SPEC
from repro.runtime.executor import AssayExecutor
from repro.assays import generators

dag_seeds = st.integers(min_value=0, max_value=3_000)


def build(seed):
    return generators.layered_random_dag(
        4, 3, 2, seed=seed, max_ratio=9
    )


def execute(seed):
    dag = build(seed)
    compiled = compile_dag(dag, spec=AQUACORE_XL_SPEC)
    machine = Machine(AQUACORE_XL_SPEC)
    executor = AssayExecutor(compiled, machine)
    return compiled, executor.run()


class TestEndToEndProperties:
    @given(seed=dag_seeds)
    @settings(max_examples=25, deadline=None)
    def test_no_regenerations_with_feasible_plan(self, seed):
        compiled, result = execute(seed)
        if compiled.plan.feasible:
            assert result.regenerations == 0

    @given(seed=dag_seeds)
    @settings(max_examples=25, deadline=None)
    def test_volume_conservation(self, seed):
        __, result = execute(seed)
        machine = result.machine
        drawn = sum(
            (binding.drawn for binding in machine.ports.values()),
            Fraction(0),
        )
        shipped = sum(machine.output_tally.values(), Fraction(0))
        onchip = machine.total_onchip_volume()
        assert onchip == drawn - shipped - machine.waste_tally

    @given(seed=dag_seeds)
    @settings(max_examples=25, deadline=None)
    def test_input_draws_match_plan(self, seed):
        compiled, result = execute(seed)
        if not compiled.plan.feasible:
            return
        plan = compiled.assignment
        for binding in result.machine.ports.values():
            node_id = binding.species
            if node_id in plan.node_volume:
                assert binding.drawn == plan.node_volume[node_id]

    @given(seed=dag_seeds)
    @settings(max_examples=25, deadline=None)
    def test_all_moves_at_least_the_least_count(self, seed):
        compiled, result = execute(seed)
        least = AQUACORE_XL_SPEC.limits.least_count
        for event in result.trace.events:
            if event.opcode in ("move", "move-abs") and event.volume:
                assert event.volume >= least
