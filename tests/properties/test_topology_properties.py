"""Property-based topology tests, with networkx as the routing oracle."""

import networkx as nx
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.machine.errors import ComponentError
from repro.machine.topology import ChannelTopology

edge_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=12),
        st.integers(min_value=0, max_value=12),
    ).filter(lambda pair: pair[0] != pair[1]),
    min_size=1,
    max_size=30,
)


def build(edges):
    topology = ChannelTopology("fuzz")
    graph = nx.Graph()
    for a, b in edges:
        topology.add_channel(f"n{a}", f"n{b}")
        graph.add_edge(f"n{a}", f"n{b}")
    return topology, graph


class TestAgainstNetworkx:
    @given(edges=edge_lists)
    @settings(max_examples=100, deadline=None)
    def test_hop_counts_match_shortest_paths(self, edges):
        topology, graph = build(edges)
        nodes = list(graph.nodes)
        for a in nodes[:5]:
            for b in nodes[:5]:
                if nx.has_path(graph, a, b):
                    assert topology.hops(a, b) == nx.shortest_path_length(
                        graph, a, b
                    )
                else:
                    assert not topology.is_routable(a, b)

    @given(edges=edge_lists)
    @settings(max_examples=100, deadline=None)
    def test_routes_are_walks(self, edges):
        topology, graph = build(edges)
        nodes = list(graph.nodes)
        for a in nodes[:4]:
            for b in nodes[:4]:
                if not topology.is_routable(a, b):
                    continue
                path = topology.route(a, b)
                assert path[0] == a and path[-1] == b
                for u, v in zip(path, path[1:]):
                    assert graph.has_edge(u, v)
                assert len(set(path)) == len(path)  # simple path

    @given(edges=edge_lists)
    @settings(max_examples=100, deadline=None)
    def test_routing_is_symmetric_in_length(self, edges):
        topology, graph = build(edges)
        nodes = list(graph.nodes)
        for a in nodes[:4]:
            for b in nodes[:4]:
                if topology.is_routable(a, b):
                    assert topology.hops(a, b) == topology.hops(b, a)

    @given(edges=edge_lists)
    @settings(max_examples=100, deadline=None)
    def test_conflicts_reflexive_on_shared_routes(self, edges):
        topology, graph = build(edges)
        nodes = list(graph.nodes)
        assume(len(nodes) >= 2)
        a, b = nodes[0], nodes[1]
        if topology.is_routable(a, b):
            assert topology.conflicts((a, b), (a, b))
            assert topology.conflicts((a, b), (b, a))
