"""Property-based tests for the statically-unknown partitioner."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dag import NodeKind
from repro.core.limits import PAPER_LIMITS
from repro.core.partition import measurement_epochs, partition_unknown_volumes
from repro.core.runtime_assign import RuntimePlanner
from repro.assays import generators

dag_seeds = st.integers(min_value=0, max_value=5_000)
shapes = st.tuples(
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=2, max_value=4),
    st.integers(min_value=1, max_value=3),
)


def unknown_dag(seed, shape):
    """A random layered DAG where separators are unknown-volume."""
    dag = generators.layered_random_dag(
        shape[0],
        shape[1],
        shape[2],
        seed=seed,
        separator_probability=0.35,
    )
    for node in dag.nodes():
        if node.kind is NodeKind.SEPARATE:
            node.unknown_volume = True
            node.output_fraction = None
    dag.validate()
    return dag


class TestPartitionInvariants:
    @given(seed=dag_seeds, shape=shapes)
    @settings(max_examples=50, deadline=None)
    def test_members_partition_the_nodes(self, seed, shape):
        dag = unknown_dag(seed, shape)
        result = partition_unknown_volumes(dag, PAPER_LIMITS)
        member_lists = [set(p.members) for p in result.partitions]
        union = set().union(*member_lists) if member_lists else set()
        # split natural inputs disappear into constrained stubs; everything
        # else appears in exactly one partition
        missing = set(dag.node_ids()) - union
        for node_id in missing:
            assert dag.node(node_id).kind is NodeKind.INPUT
        for first in range(len(member_lists)):
            for second in range(first + 1, len(member_lists)):
                assert not (member_lists[first] & member_lists[second])

    @given(seed=dag_seeds, shape=shapes)
    @settings(max_examples=50, deadline=None)
    def test_shares_per_producer_sum_to_one(self, seed, shape):
        dag = unknown_dag(seed, shape)
        result = partition_unknown_volumes(dag, PAPER_LIMITS)
        by_source = {}
        for partition in result.partitions:
            for spec in partition.constrained:
                by_source.setdefault(spec.source, Fraction(0))
                by_source[spec.source] += spec.share
        for source, total in by_source.items():
            assert total == 1, source

    @given(seed=dag_seeds, shape=shapes)
    @settings(max_examples=50, deadline=None)
    def test_partitions_are_solvable(self, seed, shape):
        """Every partition's Vnorms must be computable at compile time —
        the whole point of the cut."""
        dag = unknown_dag(seed, shape)
        planner = RuntimePlanner(dag, PAPER_LIMITS)  # computes all Vnorms
        assert set(planner.vnorms) == {
            p.index for p in planner.partitions
        }

    @given(seed=dag_seeds, shape=shapes)
    @settings(max_examples=50, deadline=None)
    def test_epoch_monotone_along_edges(self, seed, shape):
        dag = unknown_dag(seed, shape)
        epochs = measurement_epochs(dag)
        for edge in dag.edges():
            if edge.is_excess:
                continue
            bump = 1 if dag.node(edge.src).unknown_volume else 0
            assert epochs[edge.dst] >= epochs[edge.src] + bump

    @given(seed=dag_seeds, shape=shapes)
    @settings(max_examples=30, deadline=None)
    def test_full_session_with_measurements(self, seed, shape):
        """Providing every unknown node's measurement must allow every
        partition to dispense."""
        dag = unknown_dag(seed, shape)
        planner = RuntimePlanner(dag, PAPER_LIMITS)
        session = planner.session()
        measurements = {
            source: Fraction(10)
            for source in planner.partitioned.measured_sources
            if dag.node(source).unknown_volume
        }
        for source, volume in measurements.items():
            session.record_measurement(source, volume)
        for partition in planner.partitions:
            if session.ready(partition.index):
                assignment = session.assign(partition.index)
                assert assignment.scale is not None
