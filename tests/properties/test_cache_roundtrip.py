"""Property: a cache-served plan is byte-identical to a fresh compile.

The acceptance bar for the plan cache — for any DAG the pipeline can
compile, the cache entry produced by a fresh compile of fingerprint F,
decoded and re-encoded (one full serde round trip, exactly what a disk
hit performs), must re-serialize to the same canonical bytes.  And a
warm compile through the cache must produce the same listing and the
same exact volumes as the cold compile it was seeded from.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assays import generators
from repro.compiler import compile_dag
from repro.compiler.cache import PlanCache, entry_from_plan, plan_from_entry
from repro.core.hierarchy import VolumeManager
from repro.core.limits import PAPER_LIMITS
from repro.core.rounding import round_assignment
from repro.core.serde import dumps_canonical

seeds = st.integers(min_value=0, max_value=5000)


def random_dag(seed: int):
    return generators.layered_random_dag(4, 2, 2, seed=seed, max_ratio=6)


class TestEntryByteIdentity:
    @given(seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_serde_round_trip_is_byte_identical(self, seed):
        dag = random_dag(seed)
        plan = VolumeManager(PAPER_LIMITS).plan(dag)
        rounded = (
            round_assignment(plan.assignment)
            if plan.assignment is not None
            else None
        )
        entry = entry_from_plan(plan, rounded, "f" * 64)
        decoded = plan_from_entry(entry)
        re_encoded = entry_from_plan(*decoded, "f" * 64)
        assert dumps_canonical(re_encoded) == dumps_canonical(entry)

    @given(seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_warm_compile_equals_cold_compile(self, seed):
        cache = PlanCache()
        cold = compile_dag(random_dag(seed), cache=cache)
        warm = compile_dag(random_dag(seed), cache=cache)
        assert warm.listing() == cold.listing()
        if cold.plan is not None and cold.plan.assignment is not None:
            assert warm.plan.assignment.node_volume == (
                cold.plan.assignment.node_volume
            )
            assert warm.plan.assignment.edge_volume == (
                cold.plan.assignment.edge_volume
            )
            assert warm.assignment.node_volume == (
                cold.assignment.node_volume
            )

    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_cache_entry_stable_across_disk_round_trip(self, seed, tmp_path_factory):
        import json
        import pathlib

        directory = tmp_path_factory.mktemp("cache")
        cache = PlanCache(directory=str(directory))
        compile_dag(random_dag(seed), cache=cache)
        for path in pathlib.Path(directory).glob("plan-*.json"):
            on_disk = path.read_text()
            assert dumps_canonical(json.loads(on_disk)) == on_disk
