"""Property: a cache-served plan is byte-identical to a fresh compile.

The acceptance bar for the plan cache — for any DAG the pipeline can
compile, the cache entry produced by a fresh compile of fingerprint F,
decoded and re-encoded (one full serde round trip, exactly what a disk
hit performs), must re-serialize to the same canonical bytes.  And a
warm compile through the cache must produce the same listing and the
same exact volumes as the cold compile it was seeded from.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assays import generators
from repro.compiler import compile_dag
from repro.compiler.cache import PlanCache, entry_from_plan, plan_from_entry
from repro.core.hierarchy import VolumeManager
from repro.core.limits import PAPER_LIMITS
from repro.core.rounding import round_assignment
from repro.core.serde import dumps_canonical

seeds = st.integers(min_value=0, max_value=5000)


def random_dag(seed: int):
    return generators.layered_random_dag(4, 2, 2, seed=seed, max_ratio=6)


class TestEntryByteIdentity:
    @given(seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_serde_round_trip_is_byte_identical(self, seed):
        dag = random_dag(seed)
        plan = VolumeManager(PAPER_LIMITS).plan(dag)
        rounded = (
            round_assignment(plan.assignment)
            if plan.assignment is not None
            else None
        )
        entry = entry_from_plan(plan, rounded, "f" * 64)
        decoded = plan_from_entry(entry)
        re_encoded = entry_from_plan(*decoded, "f" * 64)
        assert dumps_canonical(re_encoded) == dumps_canonical(entry)

    @given(seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_warm_compile_equals_cold_compile(self, seed):
        cache = PlanCache()
        cold = compile_dag(random_dag(seed), cache=cache)
        warm = compile_dag(random_dag(seed), cache=cache)
        assert warm.listing() == cold.listing()
        if cold.plan is not None and cold.plan.assignment is not None:
            assert warm.plan.assignment.node_volume == (
                cold.plan.assignment.node_volume
            )
            assert warm.plan.assignment.edge_volume == (
                cold.plan.assignment.edge_volume
            )
            assert warm.assignment.node_volume == (
                cold.assignment.node_volume
            )

    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_cache_entry_stable_across_disk_round_trip(self, seed, tmp_path_factory):
        import json
        import pathlib

        directory = tmp_path_factory.mktemp("cache")
        cache = PlanCache(directory=str(directory))
        compile_dag(random_dag(seed), cache=cache)
        for path in pathlib.Path(directory).glob("plan-*.json"):
            on_disk = path.read_text()
            assert dumps_canonical(json.loads(on_disk)) == on_disk


tenant_names = st.sampled_from(("alice", "bob", "carol", "tenant-01"))


def _warm_hit(compiled) -> bool:
    return any(d.code == "plan-cache" for d in compiled.diagnostics.items)


class TestMultiTenantProperties:
    """The tenancy contract, for any DAG the pipeline can compile."""

    @given(seed=seeds, a=tenant_names, b=tenant_names)
    @settings(max_examples=20, deadline=None)
    def test_tenants_are_isolated_but_byte_identical(self, seed, a, b):
        """B never sees A's entries; both still compile to one listing."""
        cache = PlanCache()
        cold = compile_dag(random_dag(seed), cache=cache.for_tenant(a))
        other = compile_dag(random_dag(seed), cache=cache.for_tenant(b))
        if a == b:
            if cold.plan is not None:
                assert _warm_hit(other)
        else:
            assert not _warm_hit(other)     # isolation: no cross-tenant hit
        assert other.listing() == cold.listing()

    @given(seed=seeds, tenant=tenant_names)
    @settings(max_examples=20, deadline=None)
    def test_same_tenant_warm_hit_is_byte_identical(self, seed, tenant):
        cache = PlanCache()
        view = cache.for_tenant(tenant)
        cold = compile_dag(random_dag(seed), cache=view)
        warm = compile_dag(random_dag(seed), cache=view)
        assert warm.listing() == cold.listing()
        if cold.plan is not None:
            assert _warm_hit(warm)
            assert warm.plan.assignment.node_volume == (
                cold.plan.assignment.node_volume
            )
            assert view.tenant_stats.hits >= 1

    @given(seed=seeds, tenant=tenant_names)
    @settings(max_examples=20, deadline=None)
    def test_ttl_expiry_recompiles_to_identical_bytes(self, seed, tenant):
        """An expired entry is recomputed, not served — and the fresh
        compile reproduces the evicted result exactly."""
        now = [0.0]
        cache = PlanCache(ttl_seconds=100.0, clock=lambda: now[0])
        view = cache.for_tenant(tenant)
        cold = compile_dag(random_dag(seed), cache=view)
        now[0] = 101.0
        recompiled = compile_dag(random_dag(seed), cache=view)
        assert not _warm_hit(recompiled)    # expired: must recompute
        assert recompiled.listing() == cold.listing()
        if cold.plan is not None:
            assert cache.stats.expired >= 1
            now[0] = 102.0                  # fresh deposit serves again
            warm = compile_dag(random_dag(seed), cache=view)
            assert _warm_hit(warm)
            assert warm.listing() == cold.listing()
