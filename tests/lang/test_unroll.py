"""Unroller tests: loop expansion, dry folding, guards, fluid resolution."""

from fractions import Fraction

import pytest

from repro.lang.errors import SemanticError
from repro.lang.parser import parse
from repro.lang.unroll import unroll


def flat(body: str):
    return unroll(parse(f"ASSAY t\nSTART\n{body}\nEND\n"))


class TestLoops:
    def test_for_loop_fully_unrolled(self):
        result = flat(
            "fluid a, b, xs[3];\nVAR i;\n"
            "FOR i FROM 1 TO 3 START\n"
            "xs[i] = MIX a AND b IN RATIOS 1 : i FOR 30;\nENDFOR"
        )
        mixes = [s for s in result.statements if s.kind == "mix"]
        assert [m.target for m in mixes] == ["xs[1]", "xs[2]", "xs[3]"]
        assert [m.ratios for m in mixes] == [(1, 1), (1, 2), (1, 3)]

    def test_enzyme_dilution_series(self):
        """The paper's temp/diluent arithmetic yields 1, 9, 99, 999."""
        from repro.assays import enzyme

        result = unroll(parse(enzyme.SOURCE))
        dilutions = [
            s
            for s in result.statements
            if s.kind == "mix" and s.target.startswith("Diluted_Enzyme")
        ]
        assert [m.ratios for m in dilutions] == [
            (1, 1),
            (1, 9),
            (1, 99),
            (1, 999),
        ]

    def test_enzyme_combination_count(self):
        from repro.assays import enzyme

        result = unroll(parse(enzyme.SOURCE))
        combos = [
            s
            for s in result.statements
            if s.kind == "mix" and len(s.operands) == 3
        ]
        assert len(combos) == 64
        incubates = [s for s in result.statements if s.kind == "incubate"]
        assert len(incubates) == 64

    def test_while_hint_bounds_unroll(self):
        result = flat(
            "fluid a, b;\nVAR r;\n"
            "MIX a AND b FOR 10;\nSENSE OPTICAL it INTO r;\n"
            "WHILE r < 1 HINT 3 START\nMIX a AND b FOR 10;\nENDWHILE"
        )
        mixes = [s for s in result.statements if s.kind == "mix"]
        assert len(mixes) == 1 + 3  # initial + HINT-bounded unroll

    def test_while_with_dry_false_condition_skipped(self):
        result = flat(
            "fluid a, b;\nVAR n;\nn = 0;\n"
            "WHILE n > 0 HINT 5 START\nMIX a AND b FOR 10;\nENDWHILE"
        )
        assert [s.kind for s in result.statements] == []


class TestDryEvaluation:
    def test_arithmetic(self):
        result = flat(
            "fluid a, b, x;\nVAR t;\nt = 2 * 3 + 4;\n"
            "x = MIX a AND b IN RATIOS 1 : t FOR 10;"
        )
        (mix,) = [s for s in result.statements if s.kind == "mix"]
        assert mix.ratios == (1, 10)

    def test_array_cells(self):
        result = flat(
            "fluid a, b, x;\nVAR m[2];\nm[1] = 5;\nm[2] = m[1] * 2;\n"
            "x = MIX a AND b IN RATIOS m[1] : m[2] FOR 10;"
        )
        (mix,) = [s for s in result.statements if s.kind == "mix"]
        assert mix.ratios == (5, 10)

    def test_uninitialized_read_rejected(self):
        with pytest.raises(SemanticError):
            flat("fluid a, b, x;\nVAR t;\nx = MIX a AND b IN RATIOS 1 : t FOR 10;")

    def test_division_by_zero_rejected(self):
        with pytest.raises(SemanticError):
            flat("VAR t, z;\nz = 0;\nt = 4 / z;")

    def test_nonpositive_ratio_rejected(self):
        with pytest.raises(SemanticError):
            flat(
                "fluid a, b, x;\nVAR t;\nt = 0;\n"
                "x = MIX a AND b IN RATIOS 1 : t FOR 10;"
            )


class TestFluidResolution:
    def test_inputs_are_never_defined_fluids(self):
        result = flat("fluid a, b;\nMIX a AND b FOR 10;")
        assert set(result.input_fluids) == {"a", "b"}

    def test_it_chain(self):
        result = flat(
            "fluid a, b, c;\n"
            "MIX a AND b FOR 10;\nINCUBATE it AT 37 FOR 30;\n"
            "MIX it AND c FOR 10;"
        )
        kinds = [s.kind for s in result.statements]
        assert kinds == ["mix", "incubate", "mix"]
        incubate = result.statements[1]
        final_mix = result.statements[2]
        assert incubate.operands[0] == result.statements[0].target
        assert final_mix.operands[0] == incubate.target

    def test_out_of_range_index_rejected(self):
        with pytest.raises(SemanticError):
            flat(
                "fluid a, b, xs[2];\nVAR i;\ni = 3;\n"
                "xs[1] = MIX a AND b FOR 10;\nMIX xs[i] AND a FOR 10;"
            )

    def test_redefinition_rejected(self):
        with pytest.raises(SemanticError):
            flat(
                "fluid a, b, x;\n"
                "x = MIX a AND b FOR 10;\nx = MIX a AND b FOR 10;"
            )

    def test_use_before_definition_rejected(self):
        with pytest.raises(SemanticError):
            flat(
                "fluid a, b, x;\nMIX x AND a FOR 10;\n"
                "x = MIX a AND b FOR 10;"
            )

    def test_waste_use_rejected(self):
        with pytest.raises(SemanticError):
            flat(
                "fluid s, m, p, eff, w, out;\n"
                "SEPARATE s MATRIX m USING p FOR 30 INTO eff AND w;\n"
                "out = MIX w AND s FOR 10;"
            )

    def test_distinct_mix_operands_required(self):
        with pytest.raises(SemanticError):
            flat("fluid a;\nVAR r;\nMIX a AND a FOR 10;")


class TestSeparateAndConcentrate:
    def test_yield_hint_fraction(self):
        result = flat(
            "fluid s, m, p, eff, w;\n"
            "SEPARATE s MATRIX m USING p YIELD 3 : 10 FOR 30 INTO eff AND w;"
        )
        (sep,) = [s for s in result.statements if s.kind == "separate"]
        assert sep.yield_fraction == Fraction(3, 10)
        assert sep.mode == "AF"

    def test_aux_fluids_collected(self):
        result = flat(
            "fluid s, m, p, eff, w;\n"
            "SEPARATE s MATRIX m USING p FOR 30 INTO eff AND w;"
        )
        assert set(result.aux_fluids) == {"m", "p"}
        assert "m" not in result.input_fluids

    def test_concentrate_default_keep(self):
        result = flat(
            "fluid a, b;\nMIX a AND b FOR 10;\nCONCENTRATE it AT 90 FOR 60;"
        )
        (conc,) = [s for s in result.statements if s.kind == "concentrate"]
        assert conc.keep_fraction == Fraction(1, 2)

    def test_concentrate_keep_clause(self):
        result = flat(
            "fluid a, b;\nMIX a AND b FOR 10;\n"
            "CONCENTRATE it AT 90 FOR 60 KEEP 1 : 4;"
        )
        (conc,) = [s for s in result.statements if s.kind == "concentrate"]
        assert conc.keep_fraction == Fraction(1, 4)


class TestGuards:
    def test_static_if_folds(self):
        result = flat(
            "fluid a, b;\nVAR n;\nn = 1;\n"
            "IF n == 1 THEN\nMIX a AND b FOR 10;\n"
            "ELSE\nMIX a AND b FOR 99;\nENDIF"
        )
        (mix,) = [s for s in result.statements if s.kind == "mix"]
        assert mix.duration == 10
        assert mix.guard is None

    def test_dynamic_if_includes_both_paths(self):
        result = flat(
            "fluid a, b;\nVAR r;\n"
            "MIX a AND b FOR 10;\nSENSE OPTICAL it INTO r;\n"
            "IF r < 1 THEN\nMIX a AND b FOR 20;\n"
            "ELSE\nMIX a AND b FOR 30;\nENDIF"
        )
        guarded = [s for s in result.statements if s.guard is not None]
        assert len(guarded) == 2
        (then_branch, else_branch) = guarded
        assert then_branch.guard[0] == else_branch.guard[0]
        assert then_branch.guard[1] is True
        assert else_branch.guard[1] is False
        assert result.dynamic_conditions
        assert result.dynamic_condition_exprs

    def test_results_collected_in_order(self):
        from repro.assays import glucose

        result = unroll(parse(glucose.SOURCE))
        assert result.results == tuple(f"Result[{i}]" for i in range(1, 6))
