"""NOEXCESS fluid declarations (paper Section 3.4.1's escape hatch)."""

import pytest

from repro.compiler import compile_assay
from repro.lang.parser import parse
from repro.lang.semantic import analyze
from repro.lang.errors import ParseError

PROTECTED = """\
ASSAY precious
START
fluid drug NOEXCESS, carrier, dose;
dose = MIX drug AND carrier IN RATIOS 1 : 9999 FOR 10;
END
"""

UNPROTECTED = PROTECTED.replace(" NOEXCESS", "")


class TestDeclaration:
    def test_parsed_into_symbol_table(self):
        symbols = analyze(parse(PROTECTED))
        assert symbols.no_excess == {"drug"}
        assert symbols.is_fluid("drug")

    def test_noexcess_on_var_rejected(self):
        with pytest.raises(ParseError):
            parse("ASSAY t\nSTART\nVAR x NOEXCESS;\nEND\n")


class TestVolumeManagementEffect:
    def test_protected_extreme_mix_cannot_cascade(self):
        compiled = compile_assay(PROTECTED)
        assert compiled.plan.status == "regeneration"
        cascade_attempts = [
            a for a in compiled.plan.attempts if a.stage == "cascade"
        ]
        assert cascade_attempts and not cascade_attempts[0].succeeded
        assert "no-excess" in cascade_attempts[0].detail

    def test_unprotected_version_cascades_fine(self):
        compiled = compile_assay(UNPROTECTED)
        assert compiled.plan.feasible
        assert compiled.plan.was_transformed

    def test_flag_reaches_the_dag_node(self):
        from repro.ir.builder import build_dag_from_flat
        from repro.lang.unroll import unroll

        dag = build_dag_from_flat(unroll(parse(PROTECTED)))
        assert dag.node("dose").no_excess

    def test_product_flag_also_protects(self):
        source = """\
ASSAY precious2
START
fluid a, b, mixture NOEXCESS;
mixture = MIX a AND b IN RATIOS 1 : 9999 FOR 10;
END
"""
        from repro.ir.builder import build_dag_from_flat
        from repro.lang.unroll import unroll

        dag = build_dag_from_flat(unroll(parse(source)))
        assert dag.node("mixture").no_excess

    def test_unrelated_mixes_unaffected(self):
        source = """\
ASSAY partial
START
fluid drug NOEXCESS, carrier, other, dose, dilute;
dose = MIX drug AND carrier IN RATIOS 1 : 1 FOR 10;
dilute = MIX other AND carrier IN RATIOS 1 : 9999 FOR 10;
END
"""
        compiled = compile_assay(source)
        # the extreme mix does not touch the protected fluid: it cascades
        assert compiled.plan.feasible
        assert compiled.plan.was_transformed
