"""Tokenizer tests."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import Token, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_source_just_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_keywords_vs_identifiers(self):
        tokens = tokenize("MIX glucose AND it")
        assert [t.kind for t in tokens[:-1]] == [
            TokenKind.KEYWORD,
            TokenKind.IDENT,
            TokenKind.KEYWORD,
            TokenKind.KEYWORD,
        ]

    def test_keywords_are_case_sensitive(self):
        (token, __) = tokenize("mix")
        assert token.kind is TokenKind.IDENT  # only uppercase MIX is a keyword

    def test_numbers(self):
        tokens = tokenize("1 999 10")
        assert all(t.kind is TokenKind.NUMBER for t in tokens[:-1])
        assert texts("1 999 10") == ["1", "999", "10"]

    def test_symbols(self):
        assert texts("a = b * 10 - 1;") == ["a", "=", "b", "*", "10", "-", "1", ";"]

    def test_two_char_symbols(self):
        assert texts("a <= b >= c != d == e") == [
            "a", "<=", "b", ">=", "c", "!=", "d", "==", "e",
        ]

    def test_underscored_identifiers(self):
        assert texts("inhibitor_diluent C_18") == ["inhibitor_diluent", "C_18"]

    def test_brackets_and_colons(self):
        assert texts("Result[5] 1 : 4") == ["Result", "[", "5", "]", "1", ":", "4"]


class TestComments:
    def test_comment_to_end_of_line(self):
        assert texts("a --buffer2 has PNGanF\nb") == ["a", "b"]

    def test_comment_at_end_of_file(self):
        assert texts("a --trailing") == ["a"]

    def test_double_minus_is_comment_not_subtraction(self):
        # "a - -b" would need spacing; "--" always starts a comment.
        assert texts("a --b") == ["a"]


class TestPositions:
    def test_line_numbers(self):
        tokens = tokenize("a\nb\n  c")
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]

    def test_columns(self):
        tokens = tokenize("ab cd")
        assert tokens[0].column == 1
        assert tokens[1].column == 4


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError) as info:
            tokenize("a ? b")
        assert info.value.line == 1

    def test_error_carries_position(self):
        with pytest.raises(LexError) as info:
            tokenize("ok\n  @")
        assert info.value.line == 2


class TestTokenHelpers:
    def test_is_keyword(self):
        (token, __) = tokenize("MIX")
        assert token.is_keyword("MIX")
        assert token.is_keyword("MIX", "SENSE")
        assert not token.is_keyword("SENSE")

    def test_is_symbol(self):
        (token, __) = tokenize(";")
        assert token.is_symbol(";")
        assert not token.is_symbol(",")


class TestFullAssays:
    def test_paper_sources_tokenize(self):
        from repro.assays import enzyme, glucose, glycomics, paper_example

        for source in (
            glucose.SOURCE,
            glycomics.SOURCE,
            enzyme.SOURCE,
            paper_example.SOURCE,
        ):
            tokens = tokenize(source)
            assert tokens[-1].kind is TokenKind.EOF
            assert len(tokens) > 20
