"""Semantic analysis tests: namespaces, arity, declaration discipline."""

import pytest

from repro.lang.errors import SemanticError
from repro.lang.parser import parse
from repro.lang.semantic import analyze


def check(body: str):
    return analyze(parse(f"ASSAY t\nSTART\n{body}\nEND\n"))


class TestDeclarations:
    def test_symbols_recorded(self):
        symbols = check("fluid a, xs[4];\nVAR i, Result[5];")
        assert symbols.is_fluid("a")
        assert symbols.dims_of("xs") == (4,)
        assert symbols.is_var("Result")
        assert symbols.dims_of("Result") == (5,)

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(SemanticError):
            check("fluid a;\nVAR a;")

    def test_duplicate_fluid_rejected(self):
        with pytest.raises(SemanticError):
            check("fluid a;\nfluid a;")


class TestNamespaces:
    def test_mix_of_var_rejected(self):
        with pytest.raises(SemanticError):
            check("fluid a;\nVAR v;\nMIX a AND v FOR 10;")

    def test_mix_result_must_be_fluid(self):
        with pytest.raises(SemanticError):
            check("fluid a, b;\nVAR v;\nv = MIX a AND b FOR 10;")

    def test_dry_assign_to_fluid_rejected(self):
        with pytest.raises(SemanticError):
            check("fluid a;\na = 4;")

    def test_sense_into_fluid_rejected(self):
        with pytest.raises(SemanticError):
            check("fluid a, b, c;\nMIX a AND b FOR 10;\nSENSE OPTICAL it INTO c;")

    def test_ratio_must_be_dry(self):
        with pytest.raises(SemanticError):
            check("fluid a, b, c;\nMIX a AND b IN RATIOS 1 : c FOR 10;")

    def test_undeclared_fluid_rejected(self):
        with pytest.raises(SemanticError):
            check("fluid a;\nMIX a AND ghost FOR 10;")

    def test_it_before_definition_rejected(self):
        with pytest.raises(SemanticError):
            check("VAR r;\nSENSE OPTICAL it INTO r;")


class TestIndexing:
    def test_missing_indices_rejected(self):
        with pytest.raises(SemanticError):
            check("fluid xs[4], b;\nMIX xs AND b FOR 10;")

    def test_wrong_rank_rejected(self):
        with pytest.raises(SemanticError):
            check("VAR m[2][2];\nm[1] = 3;")

    def test_scalar_indexed_rejected(self):
        with pytest.raises(SemanticError):
            check("VAR v;\nv[1] = 3;")

    def test_correct_rank_accepted(self):
        check("VAR m[2][2];\nm[1][2] = 3;")


class TestSeparate:
    def test_products_must_be_declared(self):
        with pytest.raises(SemanticError):
            check(
                "fluid s, m, p;\n"
                "SEPARATE s MATRIX m USING p FOR 30 INTO eff AND w;"
            )

    def test_matrix_must_be_fluid(self):
        with pytest.raises(SemanticError):
            check(
                "fluid s, p, eff, w;\nVAR m;\n"
                "SEPARATE s MATRIX m USING p FOR 30 INTO eff AND w;"
            )

    def test_valid_separate_accepted(self):
        check(
            "fluid s, m, p, eff, w;\n"
            "SEPARATE s MATRIX m USING p FOR 30 INTO eff AND w;"
        )


class TestLoops:
    def test_loop_variable_usable_in_body(self):
        check(
            "fluid a, b, xs[4];\n"
            "FOR i FROM 1 TO 4 START\n"
            "xs[i] = MIX a AND b IN RATIOS 1 : i FOR 30;\nENDFOR"
        )

    def test_loop_variable_fluid_collision_rejected(self):
        with pytest.raises(SemanticError):
            check("fluid i, a, b;\nFOR i FROM 1 TO 2 START\nMIX a AND b FOR 9;\nENDFOR")

    def test_sense_result_usable_in_condition(self):
        check(
            "fluid a, b;\nVAR r;\n"
            "MIX a AND b FOR 10;\nSENSE OPTICAL it INTO r;\n"
            "IF r < 1 THEN\nMIX a AND b FOR 10;\nENDIF"
        )


class TestPaperAssays:
    def test_all_paper_sources_analyze(self):
        from repro.assays import enzyme, glucose, glycomics, paper_example

        for source in (
            glucose.SOURCE,
            glycomics.SOURCE,
            enzyme.SOURCE,
            paper_example.SOURCE,
        ):
            analyze(parse(source))
