"""Parser tests over the paper's assays and targeted error cases."""

import pytest

from repro.lang.ast import (
    Assign,
    BinOp,
    Compare,
    FluidDecl,
    ForStmt,
    IfStmt,
    IncubateStmt,
    Index,
    ItRef,
    MixExpr,
    Name,
    Num,
    SenseStmt,
    SeparateStmt,
    VarDecl,
    WhileStmt,
)
from repro.lang.errors import ParseError
from repro.lang.parser import parse


def wrap(body: str, name: str = "t") -> str:
    return f"ASSAY {name}\nSTART\n{body}\nEND\n"


class TestProgramShape:
    def test_name(self):
        program = parse(wrap("fluid a, b;"))
        assert program.name == "t"

    def test_missing_end_rejected(self):
        with pytest.raises(ParseError):
            parse("ASSAY t\nSTART\nfluid a;\n")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError):
            parse(wrap("fluid a;") + "junk")


class TestDeclarations:
    def test_fluid_list(self):
        (decl,) = parse(wrap("fluid a, b, c;")).body
        assert isinstance(decl, FluidDecl)
        assert decl.names == [("a", ()), ("b", ()), ("c", ())]

    def test_fluid_array(self):
        (decl,) = parse(wrap("fluid Diluted_Inhibitor[4];")).body
        assert decl.names == [("Diluted_Inhibitor", (4,))]

    def test_var_multidim(self):
        (decl,) = parse(wrap("VAR RESULT[4][4][4];")).body
        assert isinstance(decl, VarDecl)
        assert decl.names == [("RESULT", (4, 4, 4))]

    def test_array_dim_must_be_literal(self):
        with pytest.raises(ParseError):
            parse(wrap("VAR n; fluid xs[n];"))


class TestMix:
    def test_assigned_mix_with_ratios(self):
        source = wrap(
            "fluid Glucose, Reagent, a;\n"
            "a = MIX Glucose AND Reagent IN RATIOS 1 : 4 FOR 10;"
        )
        (__, assign) = parse(source).body
        assert isinstance(assign, Assign)
        mix = assign.value
        assert isinstance(mix, MixExpr)
        assert [str(op) for op in mix.operands] == ["Glucose", "Reagent"]
        assert [e.value for e in mix.ratios] == [1, 4]
        assert mix.duration.value == 10

    def test_statement_mix_without_ratios(self):
        source = wrap("fluid x, y;\nMIX x AND y FOR 30;")
        (__, mix) = parse(source).body
        assert isinstance(mix, MixExpr)
        assert mix.ratios is None

    def test_three_way_mix(self):
        source = wrap(
            "fluid a, b, c;\nMIX a AND b AND c IN RATIOS 1 : 100 : 1 FOR 30;"
        )
        (__, mix) = parse(source).body
        assert len(mix.operands) == 3
        assert [r.value for r in mix.ratios] == [1, 100, 1]

    def test_ratio_arity_mismatch_rejected(self):
        with pytest.raises(ParseError):
            parse(wrap("fluid a, b;\nMIX a AND b IN RATIOS 1 : 2 : 3 FOR 5;"))

    def test_ratio_with_expression(self):
        source = wrap(
            "fluid e, d, x;\nVAR n;\nn = 9;\n"
            "x = MIX e AND d IN RATIOS 1 : n FOR 30;"
        )
        statements = parse(source).body
        mix = statements[-1].value
        assert isinstance(mix.ratios[1], Name)

    def test_single_operand_mix_rejected(self):
        with pytest.raises(ParseError):
            parse(wrap("fluid a;\nMIX a FOR 10;"))


class TestSense:
    def test_optical_into_array_cell(self):
        source = wrap(
            "fluid a, b;\nVAR Result[5];\n"
            "MIX a AND b FOR 10;\nSENSE OPTICAL it INTO Result[1];"
        )
        sense = parse(source).body[-1]
        assert isinstance(sense, SenseStmt)
        assert sense.mode == "OD"
        assert isinstance(sense.operand, ItRef)
        assert isinstance(sense.target, Index)

    def test_fluorescence_mode(self):
        source = wrap(
            "fluid a, b;\nVAR r;\nMIX a AND b FOR 10;\n"
            "SENSE FLUORESCENCE it INTO r;"
        )
        sense = parse(source).body[-1]
        assert sense.mode == "FL"


class TestSeparate:
    def test_affinity_separate(self):
        source = wrap(
            "fluid s, m, p, eff, w;\n"
            "SEPARATE s MATRIX m USING p FOR 30 INTO eff AND w;"
        )
        sep = parse(source).body[-1]
        assert isinstance(sep, SeparateStmt)
        assert sep.mode == "AF"
        assert sep.matrix == "m"
        assert sep.pusher == "p"
        assert (sep.effluent, sep.waste) == ("eff", "w")

    def test_lc_separate(self):
        source = wrap(
            "fluid s, m, p, eff, w;\n"
            "LCSEPARATE s MATRIX m USING p FOR 2400 INTO eff AND w;"
        )
        assert parse(source).body[-1].mode == "LC"

    def test_yield_hint(self):
        source = wrap(
            "fluid s, m, p, eff, w;\n"
            "SEPARATE s MATRIX m USING p YIELD 3 : 10 FOR 30 INTO eff AND w;"
        )
        sep = parse(source).body[-1]
        assert sep.yield_hint is not None


class TestControlFlow:
    def test_for_loop(self):
        source = wrap(
            "fluid a, b, xs[4];\nVAR i;\n"
            "FOR i FROM 1 TO 4 START\n"
            "xs[i] = MIX a AND b IN RATIOS 1 : i FOR 30;\n"
            "ENDFOR"
        )
        loop = parse(source).body[-1]
        assert isinstance(loop, ForStmt)
        assert loop.var == "i"
        assert loop.start.value == 1 and loop.stop.value == 4
        assert len(loop.body) == 1

    def test_nested_loops(self):
        source = wrap(
            "fluid a, b;\nVAR i, j;\n"
            "FOR i FROM 1 TO 2 START\n"
            "FOR j FROM 1 TO 2 START\n"
            "MIX a AND b FOR 10;\n"
            "ENDFOR\nENDFOR"
        )
        outer = parse(source).body[-1]
        inner = outer.body[0]
        assert isinstance(inner, ForStmt)

    def test_while_with_hint(self):
        source = wrap(
            "fluid a, b;\nVAR r;\nr = 0;\n"
            "WHILE r < 3 HINT 10 START\nMIX a AND b FOR 10;\nENDWHILE"
        )
        loop = parse(source).body[-1]
        assert isinstance(loop, WhileStmt)
        assert isinstance(loop.condition, Compare)
        assert loop.hint.value == 10

    def test_if_then_else(self):
        source = wrap(
            "fluid a, b;\nVAR r;\nr = 1;\n"
            "IF r == 1 THEN\nMIX a AND b FOR 10;\n"
            "ELSE\nMIX a AND b FOR 20;\nENDIF"
        )
        conditional = parse(source).body[-1]
        assert isinstance(conditional, IfStmt)
        assert len(conditional.then_body) == 1
        assert len(conditional.else_body) == 1

    def test_if_without_else(self):
        source = wrap(
            "fluid a, b;\nVAR r;\nr = 1;\n"
            "IF r > 0 THEN\nMIX a AND b FOR 10;\nENDIF"
        )
        conditional = parse(source).body[-1]
        assert conditional.else_body == []

    def test_condition_requires_comparison(self):
        with pytest.raises(ParseError):
            parse(wrap("VAR r;\nr = 1;\nIF r THEN\nENDIF"))


class TestExpressions:
    def test_precedence(self):
        source = wrap("VAR t;\nt = 1 + 2 * 3;")
        assign = parse(source).body[-1]
        expression = assign.value
        assert isinstance(expression, BinOp)
        assert expression.op == "+"
        assert isinstance(expression.right, BinOp)
        assert expression.right.op == "*"

    def test_parentheses(self):
        source = wrap("VAR t;\nt = (1 + 2) * 3;")
        expression = parse(source).body[-1].value
        assert expression.op == "*"

    def test_unary_minus(self):
        source = wrap("VAR t;\nt = -4;")
        expression = parse(source).body[-1].value
        assert isinstance(expression, BinOp)
        assert expression.left == Num(0, expression.line)


class TestPaperAssays:
    def test_glucose_parses(self):
        from repro.assays import glucose

        program = parse(glucose.SOURCE)
        assert program.name == "glucose"
        assert len(program.body) == 13  # 3 decls + 5 mixes + 5 senses

    def test_glycomics_parses(self):
        from repro.assays import glycomics

        program = parse(glycomics.SOURCE)
        assert program.name == "glycomics"

    def test_enzyme_parses(self):
        from repro.assays import enzyme

        program = parse(enzyme.SOURCE)
        incubates = [
            s
            for loop in program.body
            if isinstance(loop, ForStmt)
            for s in _walk(loop)
            if isinstance(s, IncubateStmt)
        ]
        assert incubates  # the nested loop body has the incubate


def _walk(statement):
    yield statement
    for attr in ("body", "then_body", "else_body"):
        for child in getattr(statement, attr, []):
            yield from _walk(child)
