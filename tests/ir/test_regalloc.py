"""Reservoir-allocation tests (registers for fluids, Section 2.1)."""

import pytest

from repro.ir.regalloc import AllocationError, ReservoirAllocator
from repro.machine.spec import AQUACORE_SPEC, AQUACORE_XL_SPEC, MachineSpec
from repro.compiler.codegen import execution_order
from repro.assays import enzyme, generators, glucose, paper_example


def allocate(dag, spec=AQUACORE_SPEC, aux=()):
    return ReservoirAllocator(spec).allocate(
        dag, execution_order(dag), aux_fluids=aux
    )


class TestInputs:
    def test_every_input_gets_reservoir_and_port(self, glucose_dag):
        assignment = allocate(glucose_dag)
        for fluid in ("Glucose", "Reagent", "Sample"):
            assert assignment.reservoir_of[fluid].startswith("s")
            assert assignment.port_of[fluid].startswith("ip")

    def test_reservoirs_distinct(self, glucose_dag):
        assignment = allocate(glucose_dag)
        reservoirs = list(assignment.reservoir_of.values())
        assert len(reservoirs) == len(set(reservoirs))

    def test_aux_fluids_allocated(self, glycomics_dag):
        assignment = allocate(
            glycomics_dag, aux=["lectin", "buffer1b", "C_18", "buffer3b"]
        )
        assert len(assignment.aux) == 4
        used = set(assignment.reservoir_of.values()) | {
            r for r, __ in assignment.aux.values()
        }
        assert len(used) == len(assignment.reservoir_of) + 4


class TestStorageLess:
    def test_terminal_mixes_are_storage_less(self, glucose_dag):
        assignment = allocate(glucose_dag)
        for mix_id in "abcde":
            assert mix_id in assignment.storage_less
            assert mix_id not in assignment.reservoir_of

    def test_parked_intermediates_get_reservoirs(self, fig2_dag):
        assignment = allocate(fig2_dag)
        # K is produced early and consumed later -> parked.
        assert "K" in assignment.reservoir_of


class TestExhaustion:
    def test_enzyme_exceeds_small_machine(self, enzyme_dag):
        small = MachineSpec(
            name="small",
            limits=AQUACORE_SPEC.limits,
            n_reservoirs=8,
            n_input_ports=8,
            n_output_ports=2,
            functional_units=AQUACORE_SPEC.functional_units,
        )
        with pytest.raises(AllocationError):
            allocate(enzyme_dag, small)

    def test_enzyme_fits_default(self, enzyme_dag):
        assignment = allocate(enzyme_dag)
        assert assignment.peak_usage <= AQUACORE_SPEC.n_reservoirs

    def test_enzyme10_program_order_needs_xl(self):
        """In the paper's program order every dilution is alive before the
        first combination mix (Figure 11's indexed banks): 34 concurrent
        fluids exceed the default machine but fit the XL configuration."""
        from repro.ir.builder import build_dag_from_flat
        from repro.lang.parser import parse
        from repro.lang.unroll import unroll

        source = (
            enzyme.SOURCE.replace("TO 4", "TO 10")
            .replace("[4][4][4]", "[10][10][10]")
            .replace("[4]", "[10]")
        )
        dag = build_dag_from_flat(unroll(parse(source)))
        with pytest.raises(AllocationError):
            allocate(dag, AQUACORE_SPEC)
        assignment = allocate(dag, AQUACORE_XL_SPEC)
        assert assignment.peak_usage <= AQUACORE_XL_SPEC.n_reservoirs

    def test_enzyme10_hand_dag_interleaves_and_fits(self):
        """Without source sequence numbers the scheduler interleaves
        combination mixes between dilutions, shrinking register pressure —
        the hand-built Enzyme10 DAG fits even the default machine."""
        dag = enzyme.build_dag(10)
        assignment = allocate(dag, AQUACORE_SPEC)
        assert assignment.peak_usage <= AQUACORE_SPEC.n_reservoirs

    def test_port_exhaustion(self):
        dag = generators.fanout_chain(20, chain=0)
        tight = MachineSpec(
            name="tight-ports",
            limits=AQUACORE_SPEC.limits,
            n_reservoirs=64,
            n_input_ports=4,
            n_output_ports=2,
            functional_units=AQUACORE_SPEC.functional_units,
        )
        with pytest.raises(AllocationError):
            allocate(dag, tight)


class TestOrderValidation:
    def test_partial_order_rejected(self, fig2_dag):
        with pytest.raises(AllocationError):
            ReservoirAllocator(AQUACORE_SPEC).allocate(fig2_dag, ["A", "B"])
