"""AIS program container tests."""

import pytest

from repro.ir.instructions import Opcode, input_, mix, move, sense
from repro.ir.program import AISProgram


@pytest.fixture
def program():
    prog = AISProgram("demo")
    prog.extend(
        [
            input_("s1", "ip1", comment="A"),
            move("mixer1", "s1", 1, edge=("A", "M")),
            mix("mixer1", 10),
            move("sensor2", "mixer1"),
            sense("sensor2", "OD", "r"),
        ]
    )
    return prog


class TestContainer:
    def test_len_iter_getitem(self, program):
        assert len(program) == 5
        assert program[0].opcode is Opcode.INPUT
        assert [i.opcode for i in program][-1] is Opcode.SENSE

    def test_append_validates(self, program):
        from repro.ir.instructions import Instruction

        with pytest.raises(ValueError):
            program.append(Instruction(Opcode.MIX))

    def test_count(self, program):
        assert program.count(Opcode.MOVE) == 2
        assert program.count(Opcode.OUTPUT) == 0

    def test_wet_instructions(self, program):
        from repro.ir.instructions import dry_mov

        program.append(dry_mov("r0", 1))
        assert len(program.wet_instructions()) == 5

    def test_moves_for_edge(self, program):
        assert program.moves_for_edge(("A", "M")) == [1]
        assert program.moves_for_edge(("X", "Y")) == []


class TestRender:
    def test_paper_style_listing(self, program):
        listing = program.render()
        assert listing.startswith("demo{")
        assert listing.endswith("}")
        assert "  input s1, ip1 ;A" in listing
        assert "  sense.OD sensor2, r" in listing

    def test_str_is_render(self, program):
        assert str(program) == program.render()
