"""Flat-assay -> DAG lowering tests."""

from fractions import Fraction

import pytest

from repro.core.dag import NodeKind
from repro.ir.builder import build_dag_from_flat
from repro.lang.parser import parse
from repro.lang.unroll import unroll


def build(body: str):
    return build_dag_from_flat(unroll(parse(f"ASSAY t\nSTART\n{body}\nEND\n")))


class TestMixLowering:
    def test_ratio_edges(self):
        dag = build(
            "fluid a, b, x;\nx = MIX a AND b IN RATIOS 1 : 4 FOR 10;"
        )
        assert dag.edge("a", "x").fraction == Fraction(1, 5)
        assert dag.edge("b", "x").fraction == Fraction(4, 5)
        assert dag.node("x").ratio == (1, 4)

    def test_default_equal_parts(self):
        dag = build("fluid a, b, c;\nMIX a AND b AND c FOR 10;")
        (mix_node,) = [n for n in dag.nodes() if n.kind is NodeKind.MIX]
        for edge in dag.in_edges(mix_node.id):
            assert edge.fraction == Fraction(1, 3)

    def test_meta_carries_codegen_info(self):
        dag = build("fluid a, b, x;\nx = MIX a AND b FOR 45;")
        node = dag.node("x")
        assert node.meta["duration"] == 45
        assert node.meta["op"] == "mix"
        assert "seq" in node.meta


class TestUnaryLowering:
    def test_incubate_conserves(self):
        dag = build(
            "fluid a, b;\nMIX a AND b FOR 10;\nINCUBATE it AT 37 FOR 300;"
        )
        heat = [n for n in dag.nodes() if n.kind is NodeKind.HEAT]
        assert len(heat) == 1
        assert heat[0].output_fraction == 1
        assert heat[0].meta["temperature"] == 37

    def test_concentrate_keep_fraction(self):
        dag = build(
            "fluid a, b;\nMIX a AND b FOR 10;\n"
            "CONCENTRATE it AT 90 FOR 60 KEEP 1 : 4;"
        )
        (conc,) = [n for n in dag.nodes() if n.kind is NodeKind.HEAT]
        assert conc.output_fraction == Fraction(1, 4)
        assert conc.meta["op"] == "concentrate"

    def test_separate_unknown_by_default(self):
        dag = build(
            "fluid s, m, p, eff, w;\n"
            "SEPARATE s MATRIX m USING p FOR 30 INTO eff AND w;"
        )
        node = dag.node("eff")
        assert node.kind is NodeKind.SEPARATE
        assert node.unknown_volume
        assert node.meta["matrix"] == "m"
        assert node.meta["pusher"] == "p"
        assert node.meta["mode"] == "AF"

    def test_separate_with_yield_hint_static(self):
        dag = build(
            "fluid s, m, p, eff, w;\n"
            "SEPARATE s MATRIX m USING p YIELD 3 : 10 FOR 30 INTO eff AND w;"
        )
        node = dag.node("eff")
        assert not node.unknown_volume
        assert node.output_fraction == Fraction(3, 10)


class TestSenseAndOutput:
    def test_sense_attaches_to_node(self):
        dag = build(
            "fluid a, b;\nVAR r;\nMIX a AND b FOR 10;\n"
            "SENSE OPTICAL it INTO r;"
        )
        (mix_node,) = [n for n in dag.nodes() if n.kind is NodeKind.MIX]
        (request,) = mix_node.meta["senses"]
        assert request["mode"] == "OD"
        assert request["result"] == "r"

    def test_sense_creates_no_node(self):
        dag = build(
            "fluid a, b;\nVAR r;\nMIX a AND b FOR 10;\n"
            "SENSE OPTICAL it INTO r;"
        )
        assert dag.node_count == 3  # two inputs + one mix

    def test_output_marks_node(self):
        dag = build("fluid a, b;\nMIX a AND b FOR 10;\nOUTPUT it;")
        (mix_node,) = [n for n in dag.nodes() if n.kind is NodeKind.MIX]
        assert mix_node.meta["outputs"]


class TestGuardsAndVersions:
    def test_dynamic_if_redefinitions_versioned(self):
        dag = build(
            "fluid a, b, x;\nVAR r;\n"
            "MIX a AND b FOR 10;\nSENSE OPTICAL it INTO r;\n"
            "IF r < 1 THEN\nx = MIX a AND b FOR 20;\n"
            "ELSE\nx = MIX a AND b FOR 30;\nENDIF"
        )
        versions = [n.id for n in dag.nodes() if n.id.startswith("x")]
        assert sorted(versions) == ["x", "x#2"]
        guards = [dag.node(v).meta["guard"] for v in sorted(versions)]
        assert guards[0][1] != guards[1][1]

    def test_paper_dags_match_handwritten(self):
        """The compiler's DAG must equal the hand-built ground truth."""
        from repro.assays import enzyme, glucose, paper_example

        for module in (glucose, paper_example):
            compiled = build_dag_from_flat(unroll(parse(module.SOURCE)))
            reference = module.build_dag()
            assert {n.id for n in compiled.nodes()} >= {
                n.id for n in reference.nodes()
            } or compiled.edge_count == reference.edge_count

    def test_glucose_equivalent_to_reference(self):
        from repro.assays import glucose
        from repro.core.dagsolve import compute_vnorms

        compiled = build_dag_from_flat(unroll(parse(glucose.SOURCE)))
        reference = glucose.build_dag()
        got = compute_vnorms(compiled).node_vnorm
        expected = compute_vnorms(reference).node_vnorm
        assert got == expected

    def test_enzyme_equivalent_modulo_names(self):
        from repro.assays import enzyme
        from repro.core.dagsolve import compute_vnorms

        compiled = build_dag_from_flat(unroll(parse(enzyme.SOURCE)))
        reference = enzyme.build_dag()
        got = compute_vnorms(compiled)
        expected = compute_vnorms(reference)
        assert got.node_vnorm["diluent"] == expected.node_vnorm["diluent"]
        assert (
            got.node_vnorm["Diluted_Enzyme[4]"]
            == expected.node_vnorm["enzyme.dil4"]
        )
