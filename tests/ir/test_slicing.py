"""Backward-slicing tests (regeneration's code selection)."""

from repro.ir.instructions import (
    incubate,
    input_,
    mix,
    move,
    output,
    sense,
    separate,
)
from repro.ir.slicing import backward_slice, def_use_chains, slice_for_location


def glucose_like():
    """input A, B; mix them twice; sense each mix."""
    return [
        input_("s1", "ip1"),              # 0
        input_("s2", "ip2"),              # 1
        move("mixer1", "s1", 1),          # 2
        move("mixer1", "s2", 1),          # 3
        mix("mixer1", 10),                # 4
        move("sensor2", "mixer1"),        # 5
        sense("sensor2", "OD", "r1"),     # 6
        move("mixer1", "s1", 1),          # 7
        move("mixer1", "s2", 2),          # 8
        mix("mixer1", 10),                # 9
        move("sensor2", "mixer1"),        # 10
        sense("sensor2", "OD", "r2"),     # 11
    ]


class TestDefUse:
    def test_inputs_have_no_deps(self):
        chains = def_use_chains(glucose_like())
        assert chains[0] == []
        assert chains[1] == []

    def test_moves_depend_on_producers(self):
        chains = def_use_chains(glucose_like())
        assert chains[2] == [0]
        # the second deposit accumulates onto the first: both deps visible
        assert chains[3] == [1, 2]

    def test_mix_depends_on_both_moves(self):
        chains = def_use_chains(glucose_like())
        assert chains[4] == [3]  # mixer last written by move at 3
        # ... and transitively on 2 via the slice:
        assert set(backward_slice(glucose_like(), 4)) == {0, 1, 2, 3, 4}

    def test_metered_move_does_not_kill_source(self):
        chains = def_use_chains(glucose_like())
        # instruction 7 reads s1, whose writer is still input 0 (the metered
        # move at 2 did not drain it)
        assert chains[7] == [0]

    def test_drain_move_kills_source(self):
        program = [
            input_("s1", "ip1"),      # 0
            move("mixer1", "s1"),     # 1  (drains s1)
            input_("s1", "ip1"),      # 2  (refill)
            move("mixer2", "s1", 1),  # 3
        ]
        chains = def_use_chains(program)
        assert chains[3] == [2]


class TestBackwardSlice:
    def test_second_mix_slice_excludes_first_chain(self):
        program = glucose_like()
        slice9 = backward_slice(program, 9)
        # The first mix's chain (2,3,4,5) is irrelevant to the second mix
        # except through the shared inputs.
        assert set(slice9) == {0, 1, 7, 8, 9}

    def test_slice_is_sorted_program_order(self):
        program = glucose_like()
        for index in range(len(program)):
            indices = backward_slice(program, index)
            assert indices == sorted(indices)
            assert indices[-1] == index

    def test_separator_slice_includes_matrix_and_pusher(self):
        program = [
            input_("s1", "ip1"),                      # feed
            input_("s3", "ip3"),                      # matrix fluid
            input_("s4", "ip4"),                      # pusher fluid
            move("separator1.matrix", "s3"),          # 3
            move("separator1.pusher", "s4"),          # 4
            move("separator1", "s1", 1),              # 5
            separate("separator1", "AF", 30),         # 6
            move("mixer1", "separator1.out1"),        # 7
        ]
        indices = backward_slice(program, 7)
        assert set(indices) == {0, 1, 2, 3, 4, 5, 6, 7}

    def test_out_of_range_rejected(self):
        import pytest

        with pytest.raises(IndexError):
            backward_slice(glucose_like(), 99)


class TestSliceForLocation:
    def test_reservoir_location(self):
        program = glucose_like()
        indices = slice_for_location(program, "s1", before=7)
        assert indices == [0]

    def test_functional_unit_location(self):
        program = glucose_like()
        indices = slice_for_location(program, "mixer1", before=5)
        assert set(indices) == {0, 1, 2, 3, 4}

    def test_unknown_location_empty(self):
        assert slice_for_location(glucose_like(), "s9", before=5) == []

    def test_respects_kills(self):
        program = [
            input_("s1", "ip1"),   # 0
            output("op1", "s1"),   # 1 drains s1
        ]
        assert slice_for_location(program, "s1", before=2) == []
