"""AIS instruction tests (paper Table 1)."""

from fractions import Fraction

import pytest

from repro.ir.instructions import (
    Instruction,
    Opcode,
    Operand,
    dry_mov,
    dry_mul,
    incubate,
    input_,
    mix,
    move,
    move_abs,
    output,
    sense,
    separate,
)


class TestOperand:
    def test_parse_simple(self):
        operand = Operand.parse("mixer1")
        assert operand.base == "mixer1"
        assert operand.sub is None

    def test_parse_subport(self):
        operand = Operand.parse("separator2.out1")
        assert operand.base == "separator2"
        assert operand.sub == "out1"

    def test_str_roundtrip(self):
        for text in ("s1", "separator1.matrix", "ip3"):
            assert str(Operand.parse(text)) == text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Operand.parse("")


class TestFactories:
    def test_move_relative(self):
        instruction = move("mixer1", "s2", 4)
        assert instruction.opcode is Opcode.MOVE
        assert instruction.rel_volume == 4
        assert instruction.render() == "move mixer1, s2, 4"

    def test_move_implicit_volume(self):
        assert move("sensor2", "mixer1").render() == "move sensor2, mixer1"

    def test_move_abs(self):
        instruction = move_abs("mixer1", "s1", Fraction(25, 10))
        assert instruction.render() == "move-abs mixer1, s1, 2.5"

    def test_input_with_comment(self):
        instruction = input_("s1", "ip1", comment="Glucose")
        assert instruction.render() == "input s1, ip1 ;Glucose"

    def test_output(self):
        assert output("op2", "mixer1").render() == "output op2, mixer1"

    def test_mix(self):
        assert mix("mixer1", 10).render() == "mix mixer1, 10"

    def test_incubate(self):
        assert incubate("heater1", 37, 300).render() == "incubate heater1, 37, 300"

    def test_separate_modes(self):
        assert separate("separator2", "LC", 30).render() == (
            "separate.LC separator2, 30"
        )
        with pytest.raises(ValueError):
            separate("separator2", "XX", 30)

    def test_sense(self):
        instruction = sense("sensor2", "OD", "Result[3]")
        assert instruction.render() == "sense.OD sensor2, Result[3]"
        with pytest.raises(ValueError):
            sense("sensor2", "QQ", "r")

    def test_dry_ops(self):
        assert dry_mov("r0", "temp").render() == "dry-mov r0, temp"
        assert dry_mul("r0", 10).render() == "dry-mul r0, 10"
        assert not dry_mov("r0", 1).is_wet
        assert mix("mixer1", 5).is_wet


class TestValidation:
    def test_move_abs_needs_volume(self):
        instruction = Instruction(
            Opcode.MOVE_ABS,
            dst=Operand.parse("a"),
            src=Operand.parse("b"),
        )
        with pytest.raises(ValueError):
            instruction.validate()

    def test_mix_needs_duration(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.MIX, dst=Operand.parse("mixer1")).validate()

    def test_sense_needs_result(self):
        with pytest.raises(ValueError):
            Instruction(
                Opcode.SENSE, dst=Operand.parse("sensor2"), mode="OD"
            ).validate()


class TestWithVolume:
    def test_with_volume_copies(self):
        original = move("mixer1", "s1", 1, edge=("A", "K"))
        resolved = original.with_volume(Fraction(13, 10))
        assert resolved.abs_volume == Fraction(13, 10)
        assert original.abs_volume is None
        assert resolved.edge == ("A", "K")

    def test_fractional_rel_volume_renders(self):
        instruction = move("mixer1", "s1", Fraction(121, 4))
        assert instruction.render() == "move mixer1, s1, 121/4"
