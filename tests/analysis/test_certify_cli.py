"""The ``repro certify`` command: rendering, exit codes, JSON schema."""

import json
import pathlib

from repro.cli import main

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def test_certify_clean_fixture(capsys):
    code = main(["certify", str(FIXTURES / "clean_dilution.ais")])
    out = capsys.readouterr().out
    assert code == 0
    assert "certified" in out


def test_certify_flags_double_booking(tmp_path, capsys):
    bad = tmp_path / "double_book.ais"
    bad.write_text(
        "double_book{\n"
        "\tinput s1, ip1, 40 ;Sample\n"
        "\tinput s1, ip2, 40 ;Buffer\n"
        "}\n"
    )
    code = main(["certify", str(bad)])
    out = capsys.readouterr().out
    assert code == 2
    assert "SCHED-DOUBLE-BOOK" in out


def test_certify_flags_dry_pump(tmp_path, capsys):
    bad = tmp_path / "dry.ais"
    bad.write_text("dry{\n\tmove mixer1, s1\n\tmix mixer1, 5\n}\n")
    code = main(["certify", str(bad)])
    out = capsys.readouterr().out
    assert code == 2
    assert "SCHED-DRY-PUMP" in out


def test_certify_json_schema(capsys):
    code = main(
        ["certify", str(FIXTURES / "clean_dilution.ais"), "--json"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["version"] == 1
    assert payload["tool"] == "certify"
    assert payload["machine"] == "aquacore"
    assert payload["diagnostics"] == []
    summary = payload["summary"]
    assert summary["clean"] is True
    assert summary["exit_code"] == 0
    assert summary["schedule_checked"] is True
    assert summary["plan_checked"] is False  # bare listing: no plan


def test_certify_assay_mode_checks_the_plan(tmp_path, capsys):
    from repro.assays import glucose

    src = tmp_path / "glucose.fluid"
    src.write_text(glucose.SOURCE)
    code = main(["certify", str(src), "--assay", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["summary"]["plan_checked"] is True
    assert payload["summary"]["metrics"]["delivered_nl"] > 0
    assert "PLAN-WASTE" in [d["code"] for d in payload["diagnostics"]]


def test_certify_parse_error_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.ais"
    bad.write_text("p{\n  frobnicate s1\n}\n")
    code = main(["certify", str(bad)])
    err = capsys.readouterr().err
    assert code == 2
    assert "line 2" in err


def test_certify_missing_file_exits_2(capsys):
    code = main(["certify", "no/such/file.ais"])
    assert code == 2
    assert "error" in capsys.readouterr().err


def test_certify_topology_choice(capsys):
    code = main(
        [
            "certify",
            str(FIXTURES / "clean_dilution.ais"),
            "--topology",
            "ring",
        ]
    )
    # ring layout may add wet-path warnings but must stay routable
    assert code in (0, 1)
    assert "SCHED-UNROUTABLE" not in capsys.readouterr().out


def test_lint_and_certify_share_the_schema(capsys):
    main(["lint", str(FIXTURES / "clean_dilution.ais"), "--json"])
    lint_payload = json.loads(capsys.readouterr().out)
    main(["certify", str(FIXTURES / "clean_dilution.ais"), "--json"])
    certify_payload = json.loads(capsys.readouterr().out)
    shared = {"version", "tool", "program", "machine", "diagnostics", "summary"}
    assert shared <= set(lint_payload) and shared <= set(certify_payload)
    assert lint_payload["version"] == certify_payload["version"] == 1
    stable_summary = {"clean", "errors", "warnings", "notes", "exit_code"}
    assert stable_summary <= set(lint_payload["summary"])
    assert stable_summary <= set(certify_payload["summary"])
