"""The AIS text parser: render -> parse -> render is the identity."""

from fractions import Fraction

import pytest

from repro.assays import glucose, paper_example
from repro.compiler import compile_assay
from repro.ir.instructions import Opcode
from repro.ir.parse import AISParseError, parse_ais


def test_round_trip_paper_example():
    compiled = compile_assay(paper_example.SOURCE)
    text = compiled.program.render()
    reparsed = parse_ais(text)
    assert reparsed.render() == text
    assert reparsed.name == compiled.program.name
    assert len(reparsed.instructions) == len(compiled.program.instructions)


def test_round_trip_glucose():
    compiled = compile_assay(glucose.SOURCE)
    text = compiled.program.render()
    assert parse_ais(text).render() == text


def test_parse_volumes_are_exact_fractions():
    program = parse_ais("p{\n  input s1, ip1, 12.5 ;Dye\n}")
    (instr,) = program.instructions
    assert instr.opcode is Opcode.INPUT
    assert instr.abs_volume == Fraction(25, 2)
    assert instr.comment == "Dye"


def test_parse_without_wrapper_braces():
    program = parse_ais("input s1, ip1 ;Dye\nmix mixer1, 10", name="bare")
    assert program.name == "bare"
    assert len(program.instructions) == 2


def test_parse_separate_and_sense_modes():
    program = parse_ais(
        "p{\n"
        "  separate.AF separator1, 30\n"
        "  sense.OD sensor2, Reading[1]\n"
        "}"
    )
    sep, sense = program.instructions
    assert sep.opcode is Opcode.SEPARATE and sep.mode == "AF"
    assert sense.opcode is Opcode.SENSE and sense.mode == "OD"
    assert sense.result == "Reading[1]"


def test_parse_dry_ops():
    program = parse_ais("p{\n  dry-mov r1, 5\n  dry-add r2, r1\n}")
    mov, add = program.instructions
    assert mov.opcode is Opcode.DRY_MOV
    assert mov.value == 5
    assert add.opcode is Opcode.DRY_ADD
    assert add.value == "r1"


@pytest.mark.parametrize(
    "bad",
    [
        "p{\n  frobnicate s1\n}",
        "p{\n  input s1\n}",
        "p{\n  move-abs mixer1, s1, notanumber\n}",
        "p{\n  separate separator1, 30\n}",
    ],
)
def test_parse_errors_carry_line_numbers(bad):
    with pytest.raises(AISParseError) as excinfo:
        parse_ais(bad)
    assert "line" in str(excinfo.value)


def test_parse_unclosed_brace():
    with pytest.raises(AISParseError):
        parse_ais("p{")
