"""The ``repro lint`` command: rendering, exit codes, JSON round trip."""

import json
import pathlib

import pytest

from repro.analysis.lint import EXIT_CLEAN, EXIT_ERRORS
from repro.cli import main

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def test_lint_clean_fixture(capsys):
    code = main(["lint", str(FIXTURES / "clean_dilution.ais")])
    out = capsys.readouterr().out
    assert code == EXIT_CLEAN
    assert "clean_dilution: clean" in out


def test_lint_flags_use_after_consume(capsys):
    code = main(["lint", str(FIXTURES / "use_after_consume.ais")])
    out = capsys.readouterr().out
    assert code == EXIT_ERRORS
    assert "use-after-consume" in out
    assert "1 error(s)" in out


def test_lint_flags_static_overflow(capsys):
    code = main(["lint", str(FIXTURES / "static_overflow.ais")])
    out = capsys.readouterr().out
    assert code == EXIT_ERRORS
    assert "static-overflow" in out


@pytest.mark.parametrize(
    "fixture, expected_code",
    [
        ("use_after_consume.ais", "use-after-consume"),
        ("static_overflow.ais", "static-overflow"),
    ],
)
def test_lint_json_round_trips(capsys, fixture, expected_code):
    code = main(["lint", str(FIXTURES / fixture), "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == EXIT_ERRORS
    assert payload["version"] == 1
    assert payload["tool"] == "lint"
    assert payload["summary"]["clean"] is False
    assert payload["summary"]["errors"] >= 1
    assert payload["summary"]["exit_code"] == EXIT_ERRORS
    assert expected_code in [d["code"] for d in payload["diagnostics"]]
    diagnostic = payload["diagnostics"][0]
    assert {"code", "severity", "message", "instruction"} <= set(diagnostic)


def test_lint_json_clean(capsys):
    code = main(["lint", str(FIXTURES / "clean_dilution.ais"), "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == EXIT_CLEAN
    assert payload["version"] == 1
    assert payload["summary"]["clean"] is True
    assert payload["diagnostics"] == []
    assert payload["machine"] == "aquacore"


def test_lint_parse_error_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.ais"
    bad.write_text("p{\n  frobnicate s1\n}\n")
    code = main(["lint", str(bad)])
    err = capsys.readouterr().err
    assert code == 2
    assert "line 2" in err


def test_lint_missing_file_exits_2(capsys):
    code = main(["lint", "no/such/file.ais"])
    assert code == 2
    assert "error" in capsys.readouterr().err


def test_lint_assay_mode(tmp_path, capsys):
    from repro.assays import glucose

    src = tmp_path / "glucose.fluid"
    src.write_text(glucose.SOURCE)
    code = main(["lint", str(src), "--assay"])
    out = capsys.readouterr().out
    assert code == EXIT_CLEAN
    assert "clean" in out


def test_lint_machine_choice(capsys):
    code = main(
        [
            "lint",
            str(FIXTURES / "clean_dilution.ais"),
            "--machine",
            "aquacore-xl",
            "--json",
        ]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == EXIT_CLEAN
    assert payload["machine"] == "aquacore-xl"
