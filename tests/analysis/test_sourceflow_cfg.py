"""Shape of the CFG built straight from the checked AST."""

from repro.analysis.sourceflow import build_cfg
from repro.lang import ast
from repro.lang.parser import parse

LOOP_AND_BRANCH = """\
ASSAY shapes
START
fluid a, b, r;
fluid bank[4];
VAR i, n;
n = 2;
FOR i FROM 1 TO 4 START
bank[i] = MIX a AND b IN RATIOS 1 : 3 FOR 10;
OUTPUT it;
ENDFOR
IF n < 3 THEN
r = MIX a AND b FOR 10;
ELSE
r = MIX b AND a FOR 10;
ENDIF
OUTPUT r;
END
"""

WHILE_SOURCE = """\
ASSAY spin
START
fluid a, b, r;
VAR x;
x = 1;
WHILE x < 100 HINT 20 START
x = x * 2;
ENDWHILE
r = MIX a AND b FOR 10;
OUTPUT r;
END
"""


def test_straight_line_is_one_block():
    cfg = build_cfg(parse("ASSAY s\nSTART\nfluid a, b, r;\n"
                          "r = MIX a AND b FOR 10;\nOUTPUT r;\nEND\n"))
    assert len(cfg.loops) == 0
    assert cfg.blocks[cfg.entry].stmts  # decls + mix + output all in entry
    assert cfg.entry == cfg.exit


def test_loop_head_has_taken_then_exit_successors():
    cfg = build_cfg(parse(LOOP_AND_BRANCH))
    assert len(cfg.loops) == 1
    loop = cfg.loops[0]
    assert loop.kind == "for"
    head = cfg.blocks[loop.head]
    assert head.loop is loop
    assert head.succs == [loop.body_entry, loop.exit]
    assert loop.back_edges  # the body flows back to the head


def test_branch_block_has_two_arms():
    cfg = build_cfg(parse(LOOP_AND_BRANCH))
    branch_blocks = [b for b in cfg.blocks if b.branch is not None]
    assert len(branch_blocks) == 1
    assert len(branch_blocks[0].succs) == 2


def test_statement_tokens_are_stable_and_complete():
    cfg = build_cfg(parse(LOOP_AND_BRANCH))
    leaf_count = sum(len(block.stmts) for block in cfg.blocks)
    assert len(cfg.stmt_ids) == leaf_count
    for token, stmt in cfg.stmt_by_id.items():
        assert cfg.stmt_id(stmt) == token


def test_enclosing_loops_and_under_branch():
    cfg = build_cfg(parse(LOOP_AND_BRANCH))
    in_loop = [
        token
        for token, loops in cfg.enclosing_loops.items()
        if loops
    ]
    assert in_loop  # the bank mix + OUTPUT sit inside the FOR
    for token in in_loop:
        assert cfg.enclosing_loops[token][0].kind == "for"
    under = [t for t, flag in cfg.under_branch.items() if flag]
    # both IF arms' mixes are conditional; nothing in the loop is
    assert len(under) == 2
    assert not set(under) & set(in_loop)


def test_rpo_back_edges_point_backwards():
    cfg = build_cfg(parse(WHILE_SOURCE))
    order = {block_id: pos for pos, block_id in enumerate(cfg.rpo())}
    for loop in cfg.loops:
        for src, dst in loop.back_edges:
            assert order[dst] < order[src]
    # every forward edge goes forwards in the order
    back = {edge for loop in cfg.loops for edge in loop.back_edges}
    for block in cfg.blocks:
        for succ in block.succs:
            if (block.id, succ) not in back:
                assert order[succ] > order[block.id]


def test_while_loop_shape():
    cfg = build_cfg(parse(WHILE_SOURCE))
    assert [loop.kind for loop in cfg.loops] == ["while"]
    head = cfg.blocks[cfg.loops[0].head]
    assert isinstance(head.loop.stmt, ast.WhileStmt)
