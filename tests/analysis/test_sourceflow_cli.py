"""``repro lint --source`` + the ``source-lint`` pipeline pass."""

import json

import pytest

from repro.cli import main
from repro.compiler.passes import (
    PassEventBus,
    SourceLintPass,
    default_passes,
    render_timing_table,
    run_compile,
)

CLEAN = """\
ASSAY dilute
START
fluid reagent, diluent, product;
product = MIX reagent AND diluent IN RATIOS 1 : 3 FOR 10;
OUTPUT product;
END
"""

BROKEN = """\
ASSAY broken
START
fluid a, b, r;
VAR i;
FOR i FROM 1 TO 4 START
r = MIX a AND b IN RATIOS 1 : 1 FOR 10;
ENDFOR
OUTPUT r;
END
"""

# warning-only: flagged by the verifier, but compiles fine downstream
DEAD_FLUID = """\
ASSAY wasteful
START
fluid a, b, r, s;
r = MIX a AND b FOR 10;
s = MIX a AND b FOR 10;
OUTPUT s;
END
"""


@pytest.fixture
def clean_path(tmp_path):
    path = tmp_path / "clean.fluid"
    path.write_text(CLEAN)
    return str(path)


@pytest.fixture
def broken_path(tmp_path):
    path = tmp_path / "broken.fluid"
    path.write_text(BROKEN)
    return str(path)


@pytest.fixture
def dead_fluid_path(tmp_path):
    path = tmp_path / "wasteful.fluid"
    path.write_text(DEAD_FLUID)
    return str(path)


# ---------------------------------------------------------------------------
# repro lint --source
# ---------------------------------------------------------------------------
def test_lint_source_clean(capsys, clean_path):
    code = main(["lint", "--source", clean_path])
    out = capsys.readouterr().out
    assert code == 0
    assert "verified for all loop bounds" in out


def test_lint_source_broken_exits_2(capsys, broken_path):
    code = main(["lint", "--source", broken_path])
    out = capsys.readouterr().out
    assert code == 2
    assert "SRC-DOUBLE-FILL" in out


def test_lint_source_warning_exits_1(capsys, dead_fluid_path):
    code = main(["lint", "--source", dead_fluid_path])
    out = capsys.readouterr().out
    assert code == 1
    assert "SRC-DEAD-FLUID" in out


def test_lint_source_json_schema(capsys, broken_path):
    code = main(["lint", "--source", "--json", broken_path])
    payload = json.loads(capsys.readouterr().out)
    assert code == 2
    assert payload["version"] == 1
    assert payload["tool"] == "sourceflow"
    assert payload["program"] == "broken"
    assert payload["summary"]["clean"] is False
    assert payload["summary"]["errors"] >= 1
    assert payload["summary"]["exit_code"] == 2
    fixpoint = payload["summary"]["fixpoint"]
    assert fixpoint["converged"] is True
    assert fixpoint["sweeps"] >= 1
    assert fixpoint["loops"] == 1
    assert "SRC-DOUBLE-FILL" in [d["code"] for d in payload["diagnostics"]]


def test_lint_source_front_end_error_exits_2(capsys, tmp_path):
    path = tmp_path / "bad.fluid"
    path.write_text("ASSAY broken\nSTART\nMIX nope AND\n")
    code = main(["lint", "--source", str(path)])
    err = capsys.readouterr().err
    assert code == 2
    assert "error" in err


# ---------------------------------------------------------------------------
# the source-lint pass in the pipeline
# ---------------------------------------------------------------------------
def test_source_lint_pass_is_registered():
    names = [type(p).__name__ for p in default_passes()]
    assert names.index("SourceLintPass") == names.index("ParseSource") + 1
    assert any(isinstance(p, SourceLintPass) for p in default_passes())


def test_source_lint_pass_skipped_by_default():
    bus = PassEventBus()
    run_compile(source=CLEAN, bus=bus)
    event = next(e for e in bus.events if e.name == "source-lint")
    assert event.status == "skipped"


def test_source_lint_pass_runs_and_reports():
    bus = PassEventBus()
    ctx = run_compile(source=DEAD_FLUID, source_lint=True, bus=bus)
    event = next(e for e in bus.events if e.name == "source-lint")
    assert event.status == "ok"
    assert "SRC-DEAD-FLUID" in ctx.diagnostics.render()
    assert "source-lint" in [e.name for e in bus.ran()]
    # the timing table (--time-passes) covers the new pass
    assert "source-lint" in render_timing_table(bus)


def test_compile_source_lint_surfaces_findings(capsys, dead_fluid_path):
    code = main(["compile", dead_fluid_path, "--source-lint"])
    captured = capsys.readouterr()
    assert code == 0  # warnings do not fail the compile
    assert "SRC-DEAD-FLUID" in captured.err


def test_compile_source_lint_clean(capsys, clean_path):
    code = main(["compile", clean_path, "--source-lint"])
    captured = capsys.readouterr()
    assert code == 0
    assert "SRC-" not in captured.err


def test_compile_source_lint_rejected_in_batch_mode(tmp_path, clean_path):
    with pytest.raises(SystemExit, match="batch"):
        main(["compile", clean_path, clean_path, "--source-lint"])
