"""Mutation property: deleting one instruction from a clean program
either stays clean or trips exactly the check relevant to that opcode.

Fluids are linear resources, so removing a single instruction from a
correct program severs the chain somewhere specific: dropping the
``input`` that fills a reservoir makes a later read a read-before-fill,
dropping a ``move`` strands fluid (dead-fluid) or starves a consumer,
dropping a ``separate`` makes its outlet reads storage-less misuse.
Whatever the analyzer reports must come from that small expected set —
never an unrelated code, never a crash.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze
from repro.assays import glucose, paper_example
from repro.compiler import compile_assay
from repro.ir.instructions import Opcode
from repro.ir.program import AISProgram

# Codes each deleted opcode can plausibly surface downstream.  The point
# of the property is the *absence* of everything else: no interval check
# misfiring, no operand check, no dry/wet clash, no spurious overflow.
ALLOWED = {
    Opcode.INPUT: {
        "read-before-fill",
        "use-after-consume",
        "dead-fluid",
        "insufficient-volume",
    },
    Opcode.MOVE: {
        "read-before-fill",
        "use-after-consume",
        "dead-fluid",
        "double-fill",
        "storage-less-misuse",
        "insufficient-volume",
    },
    Opcode.MOVE_ABS: {
        "read-before-fill",
        "use-after-consume",
        "dead-fluid",
        "double-fill",
        "storage-less-misuse",
        "insufficient-volume",
    },
    Opcode.OUTPUT: {"dead-fluid", "double-fill", "use-after-consume"},
    Opcode.SEPARATE: {
        "read-before-fill",
        "use-after-consume",
        "dead-fluid",
        "storage-less-misuse",
        "double-fill",
    },
    Opcode.SENSE: {"dead-fluid"},
    Opcode.MIX: {"dead-fluid"},
    Opcode.INCUBATE: {"dead-fluid"},
    Opcode.CONCENTRATE: {"dead-fluid"},
    Opcode.DRY_MOV: {"dry-wet-clash", "unknown-operand"},
    Opcode.DRY_ADD: {"dry-wet-clash", "unknown-operand"},
    Opcode.DRY_SUB: {"dry-wet-clash", "unknown-operand"},
    Opcode.DRY_MUL: {"dry-wet-clash", "unknown-operand"},
}

_COMPILED = {
    "figure2": compile_assay(paper_example.SOURCE),
    "glucose": compile_assay(glucose.SOURCE),
}


def drop_instruction(compiled, index: int) -> AISProgram:
    instructions = list(compiled.program.instructions)
    del instructions[index]
    return AISProgram(
        name=compiled.program.name,
        instructions=instructions,
        input_ports=dict(compiled.program.input_ports),
        machine=compiled.program.machine,
        results=compiled.program.results,
    )


@st.composite
def deletions(draw):
    name = draw(st.sampled_from(sorted(_COMPILED)))
    compiled = _COMPILED[name]
    index = draw(
        st.integers(min_value=0, max_value=len(compiled.program) - 1)
    )
    return compiled, index


@settings(max_examples=60, deadline=None)
@given(deletions())
def test_single_deletion_flagged_by_relevant_check(case):
    compiled, index = case
    deleted = compiled.program.instructions[index]
    mutant = drop_instruction(compiled, index)
    findings = analyze(mutant, compiled.spec)
    allowed = ALLOWED[deleted.opcode]
    unexpected = [d for d in findings if d.code not in allowed]
    assert not unexpected, (
        f"deleting instr {index} ({deleted.opcode.value}) surfaced "
        f"unrelated codes: {[str(d) for d in unexpected]}"
    )


@settings(max_examples=20, deadline=None)
@given(deletions())
def test_baseline_programs_are_clean(case):
    compiled, _ = case
    assert analyze(compiled.program, compiled.spec) == []
