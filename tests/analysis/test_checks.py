"""Unit tests for the fluid-safety checks on hand-written broken programs."""

from repro.analysis import analyze, check_codes, lint_text
from repro.compiler.diagnostics import Severity
from repro.ir.parse import parse_ais


def codes_of(text: str):
    return [d.code for d in lint_text(text).findings]


def test_registry_covers_documented_codes():
    expected = {
        "use-after-consume",
        "read-before-fill",
        "double-fill",
        "dead-fluid",
        "static-overflow",
        "static-underflow",
        "insufficient-volume",
        "storage-less-misuse",
        "dry-wet-clash",
        "unknown-operand",
        "port-misuse",
        "unit-kind-mismatch",
    }
    assert expected <= set(check_codes())


def test_use_after_consume_on_drained_reservoir():
    findings = lint_text(
        "p{\n"
        "  input s1, ip1 ;Sample\n"
        "  move mixer1, s1\n"
        "  move mixer2, s1, 1\n"
        "}"
    ).findings
    codes = [d.code for d in findings]
    assert "use-after-consume" in codes
    finding = next(d for d in findings if d.code == "use-after-consume")
    assert finding.severity is Severity.ERROR
    assert finding.instruction == 2
    assert finding.operand == "s1"


def test_output_then_read_is_use_after_consume():
    assert "use-after-consume" in codes_of(
        "p{\n"
        "  input s1, ip1 ;Sample\n"
        "  output op1, s1\n"
        "  move mixer1, s1, 1\n"
        "}"
    )


def test_read_before_fill():
    codes = codes_of("p{\n  move mixer1, s1, 1\n}")
    assert codes == ["read-before-fill"]


def test_cascade_suppression_reports_root_cause_once():
    # Three reads of the same consumed reservoir: one error, not three.
    findings = lint_text(
        "p{\n"
        "  input s1, ip1 ;A\n"
        "  move mixer1, s1\n"
        "  move mixer2, s1, 1\n"
        "  move mixer3, s1, 1\n"
        "  mix mixer1, 10\n"
        "}"
    ).findings
    assert sum(1 for d in findings if d.code == "use-after-consume") == 1


def test_double_fill():
    codes = codes_of(
        "p{\n  input s1, ip1 ;A\n  input s1, ip2 ;B\n  output op1, s1\n}"
    )
    assert "double-fill" in codes


def test_dead_fluid_requires_a_product_sink():
    # s2 never reaches the output: flagged.
    with_sink = codes_of(
        "p{\n"
        "  input s1, ip1 ;A\n"
        "  input s2, ip2 ;B\n"
        "  output op1, s1\n"
        "}"
    )
    assert "dead-fluid" in with_sink
    # A program that delivers nothing off-chip (result parked on the
    # machine, like the paper's Figure 2) must not drown in warnings.
    no_sink = codes_of(
        "p{\n  input s1, ip1 ;A\n  move mixer1, s1\n  mix mixer1, 10\n}"
    )
    assert "dead-fluid" not in no_sink


def test_static_overflow_is_definite():
    overflowing = codes_of(
        "p{\n"
        "  input s1, ip1, 100 ;A\n"
        "  input s2, ip2, 100 ;B\n"
        "  move-abs mixer1, s1, 80\n"
        "  move-abs mixer1, s2, 80\n"
        "  mix mixer1, 10\n"
        "  output op1, mixer1\n"
        "}"
    )
    assert "static-overflow" in overflowing
    # Unknown relative volumes must NOT trigger it (no definite bound).
    relative = codes_of(
        "p{\n"
        "  input s1, ip1 ;A\n"
        "  move mixer1, s1, 1\n"
        "  mix mixer1, 10\n"
        "  output op1, mixer1\n"
        "}"
    )
    assert "static-overflow" not in relative


def test_static_underflow_below_least_count():
    assert "static-underflow" in codes_of(
        "p{\n  input s1, ip1 ;A\n  move-abs mixer1, s1, 0.05\n}"
    )


def test_insufficient_volume():
    assert "insufficient-volume" in codes_of(
        "p{\n  input s1, ip1, 10 ;A\n  move-abs mixer1, s1, 50\n}"
    )


def test_storage_less_outlet_read_twice():
    findings = lint_text(
        "p{\n"
        "  input s1, ip1 ;Sample\n"
        "  move separator1, s1\n"
        "  separate.AF separator1, 30\n"
        "  move mixer1, separator1.out1\n"
        "  move mixer2, separator1.out1\n"
        "}"
    ).findings
    assert any(
        d.code == "storage-less-misuse" and d.instruction == 4
        for d in findings
    )


def test_storage_less_outlet_read_before_separate():
    assert "storage-less-misuse" in codes_of(
        "p{\n  move mixer1, separator1.out1, 1\n}"
    )


def test_dry_wet_clash():
    codes = codes_of(
        "p{\n"
        "  input s1, ip1 ;A\n"
        "  dry-mov s1, 5\n"
        "  output op1, s1\n"
        "}"
    )
    assert "dry-wet-clash" in codes


def test_unknown_operand_and_port_misuse():
    codes = codes_of(
        "p{\n  input s1, op1 ;A\n  move mixer1, s99, 1\n  output op1, s1\n}"
    )
    assert "port-misuse" in codes
    assert "unknown-operand" in codes


def test_unit_kind_mismatch():
    codes = codes_of(
        "p{\n"
        "  input s1, ip1 ;A\n"
        "  move heater1, s1\n"
        "  mix heater1, 10\n"
        "  output op1, heater1\n"
        "}"
    )
    assert "unit-kind-mismatch" in codes


def test_sense_mode_mismatch():
    codes = codes_of(
        "p{\n"
        "  input s1, ip1 ;A\n"
        "  move sensor2, s1\n"
        "  sense.FL sensor2, r\n"
        "}"
    )
    assert "unit-kind-mismatch" in codes


def test_analyze_accepts_parsed_program_directly():
    program = parse_ais("p{\n  move mixer1, s1, 1\n}")
    findings = analyze(program)
    assert [d.code for d in findings] == ["read-before-fill"]


def test_findings_sorted_by_instruction():
    findings = lint_text(
        "p{\n"
        "  move mixer1, s1, 1\n"
        "  move mixer2, s2, 1\n"
        "  move mixer3, s3, 1\n"
        "}"
    ).findings
    indices = [d.instruction for d in findings]
    assert indices == sorted(indices)
