"""Every SRC-* check fires on a crafted program — and only then.

The corpus assays must verify clean (notes from bank summarization are
fine); each defect class must produce its code at error/warning
severity; and the verdicts must be identical for every loop trip count,
which is the whole point of analysing the rolled program.
"""

import pytest

from repro.analysis import verify_source
from repro.analysis.sourceflow import MAX_SWEEPS, SRC_CODES
from repro.assays import enzyme, extra, glucose, glycomics, paper_example

# ---------------------------------------------------------------------------
# crafted defects: code -> (source, expected severity)
# ---------------------------------------------------------------------------
BROKEN = {
    "SRC-USE-AFTER-CONSUME": """\
ASSAY t
START
fluid a, b, m, p, eff, waste, out;
MIX a AND b FOR 10;
SEPARATE it MATRIX m USING p FOR 30 INTO eff AND waste;
out = MIX eff AND waste IN RATIOS 1 : 1 FOR 10;
OUTPUT out;
END
""",
    "SRC-DOUBLE-FILL": """\
ASSAY t
START
fluid a, b, r;
VAR i;
FOR i FROM 1 TO 4 START
r = MIX a AND b IN RATIOS 1 : 1 FOR 10;
ENDFOR
OUTPUT r;
END
""",
    "SRC-INDEX-RANGE": """\
ASSAY t
START
fluid a, b;
fluid bank[3];
bank[5] = MIX a AND b FOR 10;
OUTPUT it;
END
""",
    "SRC-DRY-UNDEFINED": """\
ASSAY t
START
fluid a, b, r;
VAR n;
r = MIX a AND b IN RATIOS n : 1 FOR 10;
OUTPUT r;
END
""",
    "SRC-RATIO-NONPOSITIVE": """\
ASSAY t
START
fluid a, b, r;
r = MIX a AND b IN RATIOS 0 - 3 : 1 FOR 10;
OUTPUT r;
END
""",
    "SRC-WHILE-HINT": """\
ASSAY t
START
fluid a, b, r;
VAR x;
x = 1;
WHILE x < 4 HINT 0 - 2 START
x = x + 1;
ENDWHILE
r = MIX a AND b FOR 10;
OUTPUT r;
END
""",
    "SRC-READ-BEFORE-FILL": """\
ASSAY t
START
fluid a, r;
fluid bank[3];
r = MIX bank[2] AND a FOR 10;
bank[2] = MIX a AND a IN RATIOS 1 : 1 FOR 10;
OUTPUT r;
END
""",
    "SRC-ALIASED-MIX": """\
ASSAY t
START
fluid a, b, r;
r = MIX a AND a IN RATIOS 1 : 2 FOR 10;
OUTPUT r;
END
""",
    "SRC-AUX-NOT-INPUT": """\
ASSAY t
START
fluid a, b, m, p, eff, waste;
m = MIX a AND b FOR 10;
SEPARATE a MATRIX m USING p FOR 30 INTO eff AND waste;
OUTPUT eff;
END
""",
    "SRC-RUNTIME-VALUE": """\
ASSAY t
START
fluid a, b, r;
VAR v;
MIX a AND b FOR 10;
SENSE OPTICAL it INTO v;
r = MIX a AND b IN RATIOS v : 1 FOR 10;
OUTPUT r;
END
""",
    "SRC-DIV-ZERO": """\
ASSAY t
START
fluid a, b, r;
VAR n, d;
d = 0;
n = 4 / d;
r = MIX a AND b IN RATIOS 1 : 1 FOR 10;
OUTPUT r;
END
""",
    "SRC-FRACTION-RANGE": """\
ASSAY t
START
fluid a, m, p, eff, waste;
SEPARATE a MATRIX m USING p YIELD 5 : 3 FOR 30 INTO eff AND waste;
OUTPUT eff;
END
""",
    "SRC-INFEASIBLE-MIX": """\
ASSAY t
START
fluid a NOEXCESS, b;
fluid r;
r = MIX a AND b IN RATIOS 1 : 100000 FOR 10;
OUTPUT r;
END
""",
    "SRC-DEAD-FLUID": """\
ASSAY t
START
fluid a, b, r, s;
r = MIX a AND b FOR 10;
s = MIX a AND b FOR 10;
OUTPUT s;
END
""",
    "SRC-DRY-WET-CLASH": """\
ASSAY t
START
fluid a, b, r;
VAR i;
FOR i FROM 1 TO 3 START
r = MIX a AND b FOR 10;
SENSE OPTICAL it INTO i;
ENDFOR
OUTPUT r;
END
""",
}

CORPUS = {
    "figure2": paper_example.SOURCE,
    "glucose": glucose.SOURCE,
    "glycomics": glycomics.SOURCE,
    "enzyme": enzyme.SOURCE,
    "elisa": extra.ELISA_SOURCE,
    "bradford": extra.BRADFORD_SOURCE,
    "pcr-prep": extra.PCR_PREP_SOURCE,
}


@pytest.mark.parametrize("code", sorted(BROKEN))
def test_defect_fires_its_code(code):
    report = verify_source(BROKEN[code], name=code)
    assert code in report.codes(), report.render_text()
    assert report.exit_code != 0
    assert not report.is_clean


@pytest.mark.parametrize("code", sorted(BROKEN))
def test_defect_severity_matches_registry(code):
    report = verify_source(BROKEN[code], name=code)
    registered = SRC_CODES[code].severity
    severities = {f.severity.value for f in report.findings if f.code == code}
    assert registered in severities


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_corpus_verifies_clean_for_all_bounds(name):
    report = verify_source(CORPUS[name], name=name)
    assert report.stats["converged"]
    assert report.stats["sweeps"] < MAX_SWEEPS
    assert report.is_clean, report.render_text()
    assert report.exit_code == 0


DILUTION_TEMPLATE = """\
ASSAY scale
START
fluid reagent, diluent;
fluid bank[{n}];
VAR i;
FOR i FROM 1 TO {n} START
bank[i] = MIX reagent AND diluent IN RATIOS 1 : 3 FOR 10;
OUTPUT it;
ENDFOR
END
"""


def test_verdict_is_independent_of_trip_count():
    """One fixpoint covers N=1 and N=10000 with identical invariants."""
    reports = {
        n: verify_source(DILUTION_TEMPLATE.format(n=n), name="scale")
        for n in (1, 10, 10_000)
    }
    baseline = reports[1]
    for report in reports.values():
        assert report.is_clean
        assert report.codes() == baseline.codes()
        assert report.stats["sweeps"] == baseline.stats["sweeps"]
        assert report.stats["blocks"] == baseline.stats["blocks"]


def test_while_with_widening_terminates():
    source = """\
ASSAY spin
START
fluid a, b, r;
VAR x;
x = 1;
WHILE x < 100 HINT 20 START
x = x * 2;
ENDWHILE
r = MIX a AND b FOR 10;
OUTPUT r;
END
"""
    report = verify_source(source, name="spin")
    assert report.stats["converged"]
    assert report.stats["sweeps"] < MAX_SWEEPS
    assert report.is_clean, report.render_text()


def test_statically_false_branch_is_pruned():
    source = """\
ASSAY pruned
START
fluid a, b, r;
VAR n;
n = 1;
IF n > 5 THEN
r = MIX a AND a IN RATIOS 1 : 2 FOR 10;
ELSE
r = MIX a AND b FOR 10;
ENDIF
OUTPUT r;
END
"""
    # the aliased mix sits on a statically-dead arm: no finding
    report = verify_source(source, name="pruned")
    assert "SRC-ALIASED-MIX" not in report.codes()
    assert report.is_clean, report.render_text()


def test_guarded_redefinition_is_not_a_definite_error():
    source = """\
ASSAY guarded
START
fluid a, b, r;
VAR v;
MIX a AND b FOR 10;
SENSE OPTICAL it INTO v;
IF v > 5 THEN
r = MIX a AND b FOR 10;
ELSE
r = MIX b AND a FOR 10;
ENDIF
OUTPUT r;
END
"""
    report = verify_source(source, name="guarded")
    errors = [f for f in report.findings if f.severity.value == "error"]
    assert not errors, report.render_text()
