"""Schedule interference: occupancy conflicts in the emitted program.

Each hazard class gets a minimal hand-written program: a double-booked
mixer, a dry pump, a port sourcing two fluids, an unroutable move, and —
with an explicit concurrency schedule — two transfers contending for a
channel.
"""

from fractions import Fraction

from repro.analysis.certify import certify_program, certify_schedule
from repro.assays import glucose
from repro.compiler import compile_assay
from repro.ir.instructions import input_, mix, move, output, sense
from repro.ir.program import AISProgram
from repro.machine.spec import AQUACORE_SPEC
from repro.machine.topology import ChannelTopology, bus_topology


def _program(*instructions) -> AISProgram:
    program = AISProgram(name="hand", machine=AQUACORE_SPEC.name)
    program.extend(instructions)
    return program


def _codes(diagnostics):
    return [d.code for d in diagnostics]


def _errors(diagnostics):
    return [d.code for d in diagnostics if d.severity.value == "error"]


class TestCleanSchedules:
    def test_simple_mix_certifies(self):
        program = _program(
            input_("s1", "ip1", abs_volume=Fraction(10)),
            input_("s2", "ip2", abs_volume=Fraction(10)),
            move("mixer1", "s1"),
            move("mixer1", "s2"),
            mix("mixer1", 3),
            output("op1", "mixer1"),
        )
        diagnostics, occupancy = certify_schedule(program, AQUACORE_SPEC)
        assert not diagnostics, [str(d) for d in diagnostics]
        # mixer1 was filled at instr 2 and released at the output
        intervals = [r for r in occupancy if r.location == "mixer1"]
        assert intervals and intervals[0].start == 2
        assert intervals[0].end == 5

    def test_compiled_glucose_certifies(self):
        compiled = compile_assay(glucose.SOURCE)
        diagnostics, _ = certify_schedule(
            compiled.program,
            compiled.spec,
            topology=bus_topology(compiled.spec),
        )
        assert not _errors(diagnostics), [str(d) for d in diagnostics]

    def test_flush_of_empty_unit_is_no_op(self):
        # the generator drains units defensively; not a finding
        program = _program(output("op1", "mixer1"))
        diagnostics, _ = certify_schedule(program, AQUACORE_SPEC)
        assert not diagnostics


class TestDoubleBooking:
    def test_mixer_double_booked(self):
        """The ISSUE acceptance case: two operations booking one mixer."""
        program = _program(
            input_("mixer1", "ip1", abs_volume=Fraction(10)),
            mix("mixer1", 3),
            # second op deposits into the mixer that still holds product
            input_("mixer1", "ip2", abs_volume=Fraction(10)),
        )
        diagnostics, _ = certify_schedule(program, AQUACORE_SPEC)
        assert "SCHED-DOUBLE-BOOK" in _errors(diagnostics)

    def test_move_onto_parked_product(self):
        program = _program(
            input_("mixer1", "ip1", abs_volume=Fraction(10)),
            move("s1", "mixer1"),
            input_("mixer2", "ip2", abs_volume=Fraction(10)),
            move("s1", "mixer2"),  # s1 still holds the first product
        )
        diagnostics, _ = certify_schedule(program, AQUACORE_SPEC)
        assert "SCHED-DOUBLE-BOOK" in _errors(diagnostics)

    def test_filling_unit_accumulates_without_finding(self):
        program = _program(
            input_("s1", "ip1", abs_volume=Fraction(10)),
            input_("s2", "ip2", abs_volume=Fraction(10)),
            move("mixer1", "s1"),
            move("mixer1", "s2"),  # second ingredient: merging is the point
            mix("mixer1", 3),
        )
        diagnostics, _ = certify_schedule(program, AQUACORE_SPEC)
        assert not _errors(diagnostics), [str(d) for d in diagnostics]


class TestDryAndPortHazards:
    def test_move_from_empty_reservoir(self):
        program = _program(move("mixer1", "s1"))
        diagnostics, _ = certify_schedule(program, AQUACORE_SPEC)
        assert "SCHED-DRY-PUMP" in _errors(diagnostics)

    def test_mix_on_empty_unit(self):
        program = _program(mix("mixer1", 3))
        diagnostics, _ = certify_schedule(program, AQUACORE_SPEC)
        assert "SCHED-DRY-PUMP" in _errors(diagnostics)

    def test_sense_on_empty_unit(self):
        program = _program(sense("sensor1", "OD", "r1"))
        diagnostics, _ = certify_schedule(program, AQUACORE_SPEC)
        assert "SCHED-DRY-PUMP" in _errors(diagnostics)

    def test_port_sources_two_fluids(self):
        first = input_("s1", "ip1", abs_volume=Fraction(10))
        first.meta["node"] = "Glucose"
        second = input_("s2", "ip1", abs_volume=Fraction(10))
        second.meta["node"] = "Reagent"
        program = _program(first, second)
        diagnostics, _ = certify_schedule(program, AQUACORE_SPEC)
        assert "SCHED-PORT-CLASH" in _errors(diagnostics)

    def test_initial_occupancy_feeds_first_move(self):
        """A constrained input parked by a previous partition is a valid
        source with no ``input`` instruction."""
        program = _program(move("mixer1", "s3"))
        diagnostics, _ = certify_schedule(
            program, AQUACORE_SPEC, initial={"s3": "Sample"}
        )
        assert not _errors(diagnostics)


class TestGuards:
    def test_guarded_instructions_never_flag(self):
        guarded = move("mixer1", "s1")
        guarded.meta["guard"] = "c0"
        program = _program(guarded)
        diagnostics, _ = certify_schedule(program, AQUACORE_SPEC)
        assert not diagnostics

    def test_guarded_effects_stay_unknown(self):
        guarded = input_("s1", "ip1", abs_volume=Fraction(10))
        guarded.meta["guard"] = "c0"
        program = _program(
            guarded,
            input_("s1", "ip2", abs_volume=Fraction(10)),
        )
        diagnostics, _ = certify_schedule(program, AQUACORE_SPEC)
        # whether s1 is occupied depends on the run-time guard: no finding
        assert "SCHED-DOUBLE-BOOK" not in _codes(diagnostics)


class TestRouting:
    def _sparse(self) -> ChannelTopology:
        topology = ChannelTopology("sparse")
        topology.add_channel("ip1", "s1")
        topology.add_channel("s1", "mixer1")
        topology.add_location("heater1")
        return topology

    def test_unroutable_move(self):
        program = _program(
            input_("s1", "ip1", abs_volume=Fraction(10)),
            move("heater1", "s1"),  # island: no channel reaches it
        )
        diagnostics, _ = certify_schedule(
            program, AQUACORE_SPEC, topology=self._sparse()
        )
        assert "SCHED-UNROUTABLE" in _errors(diagnostics)

    def test_route_through_occupied_unit_warns(self):
        program = _program(
            input_("s1", "ip1", abs_volume=Fraction(10)),
            move("mixer1", "ip1", rel_volume=Fraction(1)),
        )
        diagnostics, _ = certify_schedule(
            program, AQUACORE_SPEC, topology=self._sparse()
        )
        # ip1 -> mixer1 routes through s1, which holds the first draw
        through = [d for d in diagnostics if d.code == "SCHED-ROUTE-THROUGH"]
        assert through and through[0].severity.value == "warning"


class TestSlotOverlap:
    def test_concurrent_bus_transfers_conflict(self):
        program = _program(
            input_("s1", "ip1", abs_volume=Fraction(10)),
            input_("s2", "ip2", abs_volume=Fraction(10)),
        )
        diagnostics, _ = certify_schedule(
            program,
            AQUACORE_SPEC,
            topology=bus_topology(AQUACORE_SPEC),
            slots=[0, 0],  # same slot: both transfers cross the bus at once
        )
        assert "SCHED-ROUTE-OVERLAP" in _errors(diagnostics)

    def test_serial_transfers_do_not_conflict(self):
        program = _program(
            input_("s1", "ip1", abs_volume=Fraction(10)),
            input_("s2", "ip2", abs_volume=Fraction(10)),
        )
        diagnostics, _ = certify_schedule(
            program,
            AQUACORE_SPEC,
            topology=bus_topology(AQUACORE_SPEC),
            slots=[0, 1],
        )
        assert "SCHED-ROUTE-OVERLAP" not in _codes(diagnostics)

    def test_chained_handoff_allowed_on_disjoint_topology(self):
        topology = ChannelTopology("line")
        topology.add_channel("ip1", "s1")
        topology.add_channel("s1", "mixer1")
        program = _program(
            input_("s1", "ip1", abs_volume=Fraction(10)),
            move("mixer1", "s1"),
        )
        diagnostics, _ = certify_schedule(
            program, AQUACORE_SPEC, topology=topology, slots=[0, 0]
        )
        # the two transfers share only the hand-off endpoint s1
        assert "SCHED-ROUTE-OVERLAP" not in _codes(diagnostics)


class TestCertifyProgram:
    def test_program_report_is_schedule_only(self):
        program = _program(
            input_("mixer1", "ip1", abs_volume=Fraction(10)),
            mix("mixer1", 3),
            output("op1", "mixer1"),
        )
        report = certify_program(program, AQUACORE_SPEC)
        assert report.schedule_checked and not report.plan_checked
        assert report.exit_code == 0
        assert "certified" in report.render_text()
