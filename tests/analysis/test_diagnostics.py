"""DiagnosticSink ergonomics: extend, filter, max_severity."""

from repro.compiler.diagnostics import Diagnostic, DiagnosticSink, Severity


def make(severity, code="x", message="m"):
    return Diagnostic(severity=severity, code=code, message=message)


def test_extend_from_iterable_and_sink():
    sink = DiagnosticSink()
    sink.extend([make(Severity.NOTE), make(Severity.WARNING)])
    other = DiagnosticSink()
    other.error("boom", "it broke")
    sink.extend(other)
    assert len(sink) == 3
    assert sink.has_errors


def test_filter_exact_severity():
    sink = DiagnosticSink()
    sink.extend(
        [
            make(Severity.NOTE, "n"),
            make(Severity.ERROR, "e1"),
            make(Severity.WARNING, "w"),
            make(Severity.ERROR, "e2"),
        ]
    )
    assert [d.code for d in sink.filter(Severity.ERROR)] == ["e1", "e2"]
    assert [d.code for d in sink.filter(Severity.NOTE)] == ["n"]


def test_max_severity():
    sink = DiagnosticSink()
    assert sink.max_severity is None
    sink.note("n", "note")
    assert sink.max_severity is Severity.NOTE
    sink.warning("w", "warn")
    assert sink.max_severity is Severity.WARNING
    sink.error("e", "err")
    assert sink.max_severity is Severity.ERROR


def test_severity_rank_order():
    assert Severity.NOTE.rank < Severity.WARNING.rank < Severity.ERROR.rank


def test_diagnostic_to_dict_and_str():
    diag = Diagnostic(
        severity=Severity.ERROR,
        code="use-after-consume",
        message="bad read",
        instruction=4,
        operand="s1",
    )
    payload = diag.to_dict()
    assert payload["severity"] == "error"
    assert payload["code"] == "use-after-consume"
    assert payload["instruction"] == 4
    assert payload["operand"] == "s1"
    assert "[instr 4]" in str(diag)
