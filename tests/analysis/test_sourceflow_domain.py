"""Lattice laws of the source-level abstract domain.

The fixpoint engine's termination and soundness rest on a handful of
algebraic facts about :mod:`repro.analysis.sourceflow.domain` — join is
an upper bound, widening jumps to a bound that can only be refined
finitely often, narrowing never widens — checked here directly.
"""

from fractions import Fraction

import pytest

from repro.analysis.sourceflow import DryVal, IntInterval, SourceState
from repro.analysis.state import AbsContent, ContentKind, VolumeInterval


class TestIntInterval:
    def test_const_and_top(self):
        assert IntInterval.const(4).is_singleton
        assert IntInterval.top().is_top
        assert IntInterval.top().contains(-(10**9))

    def test_contains_within_intersects(self):
        iv = IntInterval(1, 5)
        assert iv.contains(1) and iv.contains(5) and not iv.contains(6)
        assert iv.within(0, 5) and not iv.within(2, 5)
        assert iv.intersects(5, 9) and not iv.intersects(6, 9)

    def test_arithmetic(self):
        a, b = IntInterval(1, 3), IntInterval(2, 4)
        assert a.add(b) == IntInterval(3, 7)
        assert a.sub(b) == IntInterval(-3, 1)
        assert a.mul(b) == IntInterval(2, 12)

    def test_mul_with_infinity(self):
        unbounded = IntInterval(0, None)
        assert unbounded.mul(IntInterval.const(3)) == IntInterval(0, None)
        # inf * 0 must collapse to 0, not NaN
        assert unbounded.mul(IntInterval.const(0)) == IntInterval.const(0)

    def test_floordiv(self):
        assert IntInterval(7, 7).floordiv(IntInterval.const(2)) == IntInterval(3, 3)
        # divisor straddling zero -> no verdict at all
        assert IntInterval(4, 4).floordiv(IntInterval(-1, 1)).is_top

    def test_compare_is_tri_state(self):
        lo, hi = IntInterval(1, 2), IntInterval(5, 9)
        assert lo.compare("<", hi) is True
        assert hi.compare("<", lo) is False
        assert lo.compare("<", IntInterval(2, 9)) is None

    def test_join_is_upper_bound(self):
        a, b = IntInterval(1, 3), IntInterval(5, 9)
        joined = a.join(b)
        for value in (1, 3, 5, 9):
            assert joined.contains(value)

    def test_widen_jumps_to_infinity(self):
        old, grown = IntInterval(1, 3), IntInterval(1, 4)
        widened = old.widen(grown)
        assert widened.hi is None  # growing bound -> +inf
        assert widened.lo == 1  # stable bound kept
        # dropping low bound first widens to the 0 threshold, then -inf
        assert IntInterval(1, 3).widen(IntInterval(0, 3)).lo == 0
        assert IntInterval(0, 3).widen(IntInterval(-1, 3)).lo is None

    def test_widen_is_stationary_on_stable_input(self):
        iv = IntInterval(1, 3)
        assert iv.widen(iv) == iv

    def test_narrow_refines_only_infinite_bounds(self):
        widened = IntInterval(1, None)
        assert widened.narrow(IntInterval(1, 9)) == IntInterval(1, 9)
        # finite bounds stay: narrowing never widens and never oscillates
        assert IntInterval(1, 9).narrow(IntInterval(2, 5)) == IntInterval(1, 9)


class TestDryVal:
    def test_join_merges_flags(self):
        a = DryVal(IntInterval.const(1))
        b = DryVal(IntInterval.const(5), maybe_unset=True)
        joined = a.join(b)
        assert joined.maybe_unset
        assert joined.value.contains(1) and joined.value.contains(5)

    def test_widen_keeps_runtime_taint(self):
        tainted = DryVal(IntInterval.top(), runtime=True)
        grown = DryVal(IntInterval(0, 8))
        assert tainted.widen(grown).runtime


class TestSourceState:
    def test_missing_cell_is_empty(self):
        state = SourceState()
        assert state.cell("x").kind is ContentKind.EMPTY

    def test_strong_vs_weak_update(self):
        state = SourceState()
        held = AbsContent.holding(VolumeInterval.exact(Fraction(10)), {1})
        state.set_cell("x", held)
        assert state.cell("x").kind is ContentKind.HOLDS
        state.weak_set_cell("x", AbsContent.empty())
        # weak update joins with the old content: kind is now uncertain
        assert state.cell("x").kind is ContentKind.UNKNOWN

    def test_join_marks_one_sided_dry_names_maybe_unset(self):
        left, right = SourceState(), SourceState()
        left.dry["n"] = DryVal(IntInterval.const(3))
        joined = left.join(right)
        assert joined.dry["n"].maybe_unset

    def test_join_unions_definition_tokens(self):
        left, right = SourceState(), SourceState()
        left.set_cell("x", AbsContent.holding(VolumeInterval.exact(Fraction(5)), {1}))
        right.set_cell("x", AbsContent.holding(VolumeInterval.exact(Fraction(7)), {2}))
        assert left.join(right).cell("x").defs == frozenset({1, 2})


class TestStateLattice:
    def test_volume_interval_join_hull(self):
        a = VolumeInterval.exact(Fraction(5))
        b = VolumeInterval.exact(Fraction(9))
        joined = a.join(b)
        assert joined.lo == 5 and joined.hi == 9

    def test_volume_interval_widen_respects_nonnegativity(self):
        old = VolumeInterval(Fraction(5), Fraction(10))
        grown = VolumeInterval(Fraction(3), Fraction(12))
        widened = old.widen(grown)
        assert widened.lo == 0  # volumes cannot go negative
        assert widened.hi is None

    def test_abs_content_join_same_kind(self):
        a = AbsContent.holding(VolumeInterval.exact(Fraction(5)), {1})
        b = AbsContent.holding(VolumeInterval.exact(Fraction(9)), {2})
        joined = a.join(b)
        assert joined.kind is ContentKind.HOLDS
        assert joined.defs == frozenset({1, 2})

    def test_abs_content_join_kind_conflict_is_unknown(self):
        held = AbsContent.holding(VolumeInterval.exact(Fraction(5)), {1})
        assert held.join(AbsContent.consumed({2})).kind is ContentKind.UNKNOWN


@pytest.mark.parametrize(
    "old, grown",
    [
        (IntInterval(1, 3), IntInterval(0, 5)),
        (IntInterval(0, None), IntInterval(-2, None)),
        (IntInterval.top(), IntInterval.top()),
    ],
)
def test_widening_terminates(old, grown):
    """Iterated widening reaches a fixed point in finitely many steps."""
    current = old
    for _step in range(4):
        nxt = current.widen(current.join(grown))
        if nxt == current:
            break
        current = nxt
    assert current.widen(current.join(grown)) == current
