"""Static race detection: happens-before, lockset classification, CLI.

Each RACE-* code gets a minimal hand-written witness: two assays
double-booking a mixer (WW), a mutation racing a sense (RW), one input
port sourcing two fluids (PORT), guarded accesses (GUARDED), summed
reservoir demand over the bank (BANK), route contention and unroutable
endpoints on an explicit topology (ROUTE / UNROUTABLE), and a single
program whose mixer sessions rest on emission order alone (ORDER).
"""

import json
from fractions import Fraction

import pytest

from repro.analysis.certify.codes import SCHED_CODES
from repro.analysis.races import (
    RACE_CODES,
    BarrierOrder,
    analyze_races,
)
from repro.cli import main
from repro.ir.instructions import input_, mix, move, output, sense
from repro.ir.program import AISProgram
from repro.machine.spec import AQUACORE_SPEC
from repro.machine.topology import ChannelTopology, bus_topology

import pathlib

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def _program(*instructions, name="hand"):
    program = AISProgram(name=name, machine=AQUACORE_SPEC.name)
    program.extend(instructions)
    return program


def _assay(name, *, port, fluid, reservoir, unit="mixer1", out="op1"):
    """One tiny assay: fill a reservoir, mix in a unit, emit the result."""
    return _program(
        input_(reservoir, port, abs_volume=Fraction(10), meta={"node": fluid}),
        move(unit, reservoir),
        mix(unit, 3),
        output(out, unit),
        name=name,
    )


def _errors(report):
    return [d for d in report.findings if d.severity.value == "error"]


# ---------------------------------------------------------------------------
class TestCodeCatalogue:
    def test_eight_codes_with_race_prefix(self):
        assert len(RACE_CODES) == 8
        assert all(code.startswith("RACE-") for code in RACE_CODES)

    def test_severity_split(self):
        severities = {code: info.severity for code, info in RACE_CODES.items()}
        assert severities == {
            "RACE-WW": "error",
            "RACE-RW": "error",
            "RACE-PORT": "error",
            "RACE-ROUTE": "error",
            "RACE-UNROUTABLE": "error",
            "RACE-BANK": "note",
            "RACE-GUARDED": "note",
            "RACE-ORDER": "note",
        }

    def test_disjoint_from_sched_catalogue(self):
        assert not set(RACE_CODES) & set(SCHED_CODES)


# ---------------------------------------------------------------------------
class TestBarrierOrder:
    def _pair(self):
        a = _assay("a", port="ip1", fluid="A", reservoir="s1")
        b = _assay("b", port="ip2", fluid="B", reservoir="s2", unit="mixer2")
        return a, b

    def test_no_barriers_everything_cross_program_is_mhp(self):
        a, b = self._pair()
        order = BarrierOrder([a, b])
        assert order.mhp(0, 0, 1, 3)
        assert order.mhp(0, 3, 1, 0)
        # program order is total within one stream
        assert not order.mhp(0, 0, 0, 3)

    def test_barrier_epochs_order_prefix_before_suffix(self):
        a, b = self._pair()
        order = BarrierOrder([a, b], barriers=[(2, 1)])
        assert [order.epoch(0, i) for i in range(4)] == [0, 0, 1, 1]
        assert [order.epoch(1, i) for i in range(4)] == [0, 1, 1, 1]
        assert order.mhp(0, 0, 1, 0)       # both epoch 0
        assert not order.mhp(0, 0, 1, 1)   # a@0 happens before b@1
        assert not order.mhp(0, 2, 1, 0)   # b@0 happens before a@2
        assert order.mhp(0, 2, 1, 3)       # both epoch 1

    def test_mhp_pair_count_matches_brute_force(self):
        a, b = self._pair()
        order = BarrierOrder([a, b], barriers=[(2, 1)])
        wet_a = [i for i, ins in enumerate(a.instructions) if ins.is_wet]
        wet_b = [j for j, ins in enumerate(b.instructions) if ins.is_wet]
        brute = sum(order.mhp(0, i, 1, j) for i in wet_a for j in wet_b)
        cross, mhp = order.mhp_pair_count()
        assert cross == len(wet_a) * len(wet_b)
        assert mhp == brute

    def test_full_barrier_serializes_everything(self):
        a, b = self._pair()
        order = BarrierOrder([a, b], barriers=[(len(a.instructions), 0)])
        cross, mhp = order.mhp_pair_count()
        assert cross > 0 and mhp == 0

    def test_barrier_arity_is_validated(self):
        a, b = self._pair()
        with pytest.raises(ValueError, match="one cut index per"):
            BarrierOrder([a, b], barriers=[(2,)])


# ---------------------------------------------------------------------------
class TestMergedDetection:
    def test_shared_mixer_is_a_definite_ww_race(self):
        a = _assay("a", port="ip1", fluid="A", reservoir="s1")
        b = _assay("b", port="ip2", fluid="B", reservoir="s2")
        report = analyze_races([a, b])
        assert report.codes() == {"RACE-WW"}
        assert _errors(report)
        assert report.exit_code == 2
        [finding] = report.findings
        assert finding.operand == "mixer1"
        assert "may happen in parallel" in finding.message

    def test_disjoint_assays_are_race_free(self):
        a = _assay("a", port="ip1", fluid="A", reservoir="s1")
        b = _assay(
            "b", port="ip2", fluid="B", reservoir="s2",
            unit="mixer2", out="op2",
        )
        report = analyze_races([a, b])
        assert report.findings == []
        assert report.is_clean
        assert "race-free" in report.render_text()

    def test_reservoirs_namespaced_unless_storage_shared(self):
        # both assays use s1, but a re-banking scheduler renames one
        a = _assay("a", port="ip1", fluid="A", reservoir="s1")
        b = _assay(
            "b", port="ip2", fluid="B", reservoir="s1",
            unit="mixer2", out="op2",
        )
        assert analyze_races([a, b]).findings == []
        shared = analyze_races([a, b], share_storage=True)
        assert shared.codes() == {"RACE-WW"}
        assert {d.operand for d in shared.findings} == {"s1"}

    def test_port_sourcing_two_fluids_is_a_port_clash(self):
        a = _assay("a", port="ip1", fluid="A", reservoir="s1")
        b = _assay(
            "b", port="ip1", fluid="B", reservoir="s2",
            unit="mixer2", out="op2",
        )
        report = analyze_races([a, b])
        assert report.codes() == {"RACE-PORT"}
        [finding] = report.findings
        assert finding.operand == "ip1"
        assert "'A'" in finding.message and "'B'" in finding.message

    def test_port_sharing_one_fluid_is_safe(self):
        a = _assay("a", port="ip1", fluid="A", reservoir="s1")
        b = _assay(
            "b", port="ip1", fluid="A", reservoir="s2",
            unit="mixer2", out="op2",
        )
        assert analyze_races([a, b]).findings == []

    def test_mutation_racing_a_sense_is_rw(self):
        a = _program(
            input_("s1", "ip1", abs_volume=Fraction(10), meta={"node": "A"}),
            move("sensor1", "s1"),
            name="a",
        )
        b = _program(
            input_("s2", "ip2", abs_volume=Fraction(10), meta={"node": "B"}),
            move("sensor1", "s2"),
            sense("sensor1", "OD", "r0"),
            name="b",
        )
        codes = analyze_races([a, b]).codes()
        assert "RACE-RW" in codes   # a's fill vs b's pure sense read
        assert "RACE-WW" in codes   # a's fill vs b's fill

    def test_guarded_access_downgrades_to_possible_race(self):
        a = _assay("a", port="ip1", fluid="A", reservoir="s1")
        b = _program(
            input_("s1", "ip2", abs_volume=Fraction(10), meta={"node": "B"}),
            move("mixer1", "s1", meta={"guard": "r0"}),
            name="b",
        )
        report = analyze_races([a, b])
        assert report.codes() == {"RACE-GUARDED"}
        assert not _errors(report)
        assert report.exit_code == 0

    def test_summed_reservoir_demand_over_bank_is_noted(self):
        bank = len(AQUACORE_SPEC.reservoir_names())
        half = bank // 2 + 1

        def parker(name):
            return _program(
                *[
                    input_(
                        f"s{i + 1}",
                        f"ip{(i % 16) + 1}",
                        abs_volume=Fraction(5),
                        meta={"node": f"f{i}"},   # same fluid per port
                    )
                    for i in range(half)
                ],
                name=name,
            )

        report = analyze_races([parker("a"), parker("b")])
        assert report.codes() == {"RACE-BANK"}
        [finding] = report.findings
        assert finding.severity.value == "note"
        assert f"demand {2 * half}" in finding.message
        assert report.is_clean

    def test_full_barrier_makes_any_pair_race_free(self):
        a = _assay("a", port="ip1", fluid="A", reservoir="s1")
        b = _assay("b", port="ip2", fluid="B", reservoir="s2")
        report = analyze_races(
            [a, b], barriers=[(len(a.instructions), 0)]
        )
        assert report.findings == []
        assert report.mhp["mhp_pairs"] == 0
        assert report.mhp["barriers"] == 1

    def test_duplicate_pairs_are_grouped(self):
        a = _assay("a", port="ip1", fluid="A", reservoir="s1")
        b = _assay("b", port="ip2", fluid="B", reservoir="s2")
        [finding] = analyze_races([a, b]).findings
        assert "more such pair(s)" in finding.message

    def test_mhp_summary_block(self):
        a = _assay("a", port="ip1", fluid="A", reservoir="s1")
        b = _assay("b", port="ip2", fluid="B", reservoir="s2")
        mhp = analyze_races([a, b]).mhp
        assert mhp["mode"] == "merged"
        assert mhp["programs"] == 2
        assert mhp["pairs"] == mhp["mhp_pairs"] > 0
        assert mhp["shared_resources"] >= 1


# ---------------------------------------------------------------------------
class TestRouteContention:
    def _islands(self):
        """Two disconnected channel islands, one per assay."""
        topology = ChannelTopology(name="islands")
        for chain in (("ip1", "s1", "mixer1", "op1"),
                      ("ip2", "s2", "mixer2", "op2")):
            for left, right in zip(chain, chain[1:]):
                topology.add_channel(left, right)
        return topology

    def _disjoint_pair(self):
        a = _assay("a", port="ip1", fluid="A", reservoir="s1")
        b = _assay(
            "b", port="ip2", fluid="B", reservoir="s2",
            unit="mixer2", out="op2",
        )
        return a, b

    def test_disjoint_routes_do_not_conflict(self):
        a, b = self._disjoint_pair()
        report = analyze_races([a, b], topology=self._islands())
        assert report.findings == []

    def test_bus_topology_serializes_the_wet_path(self):
        a, b = self._disjoint_pair()
        report = analyze_races(
            [a, b], topology=bus_topology(AQUACORE_SPEC)
        )
        assert report.codes() == {"RACE-ROUTE"}
        assert "shared channel" in report.findings[0].message

    def test_missing_endpoint_is_unroutable(self):
        topology = self._islands()
        a, b = self._disjoint_pair()
        c = _assay(
            "c", port="ip3", fluid="C", reservoir="s3",
            unit="heater1", out="op3",
        )
        report = analyze_races([a, c], topology=topology)
        codes = report.codes()
        assert "RACE-UNROUTABLE" in codes
        unroutable = [
            d for d in report.findings if d.code == "RACE-UNROUTABLE"
        ]
        assert all(d.severity.value == "error" for d in unroutable)

    def test_single_program_unroutable_move(self):
        program = _assay("a", port="ip1", fluid="A", reservoir="s3")
        report = analyze_races(program, topology=self._islands())
        assert "RACE-UNROUTABLE" in report.codes()

    def test_barrier_suppresses_route_conflicts(self):
        a, b = self._disjoint_pair()
        report = analyze_races(
            [a, b],
            topology=bus_topology(AQUACORE_SPEC),
            barriers=[(len(a.instructions), 0)],
        )
        assert report.findings == []


# ---------------------------------------------------------------------------
class TestSingleMode:
    def _sessions(self):
        return _program(
            input_("s1", "ip1", abs_volume=Fraction(10)),
            move("mixer1", "s1"),
            mix("mixer1", 3),
            output("op1", "mixer1"),
            input_("s2", "ip2", abs_volume=Fraction(10)),
            move("mixer1", "s2"),
            mix("mixer1", 3),
            output("op1", "mixer1"),
            name="sessions",
        )

    def test_independent_sessions_are_schedule_sensitive(self):
        report = analyze_races(self._sessions())
        assert report.codes() == {"RACE-ORDER"}
        [finding] = report.findings
        assert finding.severity.value == "note"
        assert "instructions 1 and 5" in finding.message
        assert finding.operand == "mixer1"
        # 3 accesses per session -> 9 cross-session pairs, grouped
        assert "+8 more such pair(s)" in finding.message
        assert report.exit_code == 0

    def test_chained_program_is_race_free(self):
        program = _assay("a", port="ip1", fluid="A", reservoir="s1")
        report = analyze_races(program)
        assert report.findings == []
        assert report.mhp["mode"] == "single"
        assert report.mhp["mhp_pairs"] == 0

    def test_sense_fence_between_sessions_orders_them(self):
        # the sense result feeds dynamic guards, so it fences the stream:
        # session 2 is ordered after session 1 through the fence.
        fenced = _program(
            input_("s1", "ip1", abs_volume=Fraction(10)),
            move("mixer1", "s1"),
            mix("mixer1", 3),
            move("sensor2", "mixer1"),
            sense("sensor2", "OD", "r0"),
            input_("s2", "ip2", abs_volume=Fraction(10)),
            move("mixer1", "s2"),
            mix("mixer1", 3),
            output("op1", "mixer1"),
            name="fenced",
        )
        assert analyze_races(fenced).findings == []

    def test_guarded_session_is_a_guarded_note(self):
        program = self._sessions()
        program.instructions[5].meta["guard"] = "r0"
        codes = analyze_races(program).codes()
        assert "RACE-GUARDED" in codes


# ---------------------------------------------------------------------------
class TestReportShape:
    def _report(self):
        a = _assay("a", port="ip1", fluid="A", reservoir="s1")
        b = _assay("b", port="ip2", fluid="B", reservoir="s2")
        return analyze_races([a, b])

    def test_v1_payload_with_mhp_summary(self):
        payload = self._report().to_dict()
        assert payload["version"] == 1
        assert payload["tool"] == "races"
        assert payload["program"] == "a+b"
        assert payload["machine"] == AQUACORE_SPEC.name
        assert payload["summary"]["clean"] is False
        assert payload["summary"]["errors"] == 1
        mhp = payload["summary"]["mhp"]
        assert set(mhp) == {
            "mode", "programs", "wet_instructions", "barriers",
            "pairs", "mhp_pairs", "shared_resources",
        }
        json.loads(self._report().render_json())  # serializable

    def test_render_text_summarizes_mhp(self):
        text = self._report().render_text()
        assert "1 error(s)" in text
        assert "MHP pair(s) over 2 program(s)" in text

    def test_single_program_argument_is_accepted(self):
        report = analyze_races(
            _assay("solo", port="ip1", fluid="A", reservoir="s1")
        )
        assert report.program == "solo"

    def test_empty_program_list_is_rejected(self):
        with pytest.raises(ValueError, match="at least one program"):
            analyze_races([])

    def test_explicit_name_overrides_join(self):
        a = _assay("a", port="ip1", fluid="A", reservoir="s1")
        report = analyze_races([a], name="renamed")
        assert report.program == "renamed"


# ---------------------------------------------------------------------------
class TestConflictCache:
    def _topology(self):
        topology = ChannelTopology(name="t")
        for left, right in (
            ("ip1", "s1"), ("s1", "mixer1"), ("mixer1", "op1"),
            ("ip2", "s2"), ("s2", "mixer2"), ("mixer2", "op1"),
        ):
            topology.add_channel(left, right)
        return topology

    def test_verdicts_are_memoized_symmetrically(self):
        topology = self._topology()
        first, second = ("ip1", "mixer1"), ("ip2", "mixer2")
        assert topology.conflicts(first, second) is False
        assert len(topology._conflict_cache) == 1
        # the symmetric query hits the same canonical entry
        assert topology.conflicts(second, first) is False
        assert len(topology._conflict_cache) == 1

    def test_cached_verdict_matches_fresh_computation(self):
        topology = self._topology()
        pairs = [
            (("ip1", "mixer1"), ("ip2", "mixer2")),
            (("ip1", "op1"), ("ip2", "op1")),
            (("s1", "mixer1"), ("mixer1", "op1")),
        ]
        warm = [topology.conflicts(a, b) for a, b in pairs]
        again = [topology.conflicts(a, b) for a, b in pairs]
        fresh = [self._topology().conflicts(a, b) for a, b in pairs]
        assert warm == again == fresh == [False, True, True]

    def test_shared_endpoint_flag_gets_its_own_entry(self):
        topology = self._topology()
        handoff = (("s1", "mixer1"), ("mixer1", "op1"))
        assert topology.conflicts(*handoff) is True
        assert topology.conflicts(*handoff, allow_shared_endpoint=True) is False
        assert len(topology._conflict_cache) == 2

    def test_add_channel_invalidates_the_cache(self):
        topology = self._topology()
        first, second = ("ip1", "mixer1"), ("ip2", "mixer2")
        assert topology.conflicts(first, second) is False
        topology.add_channel("mixer1", "mixer2")
        assert topology._conflict_cache == {}
        # still disjoint routes (shortest paths unchanged)
        assert topology.conflicts(first, second) is False


# ---------------------------------------------------------------------------
class TestRacesCli:
    def test_clean_fixture_is_race_free(self, capsys):
        code = main(
            ["lint", str(FIXTURES / "clean_dilution.ais"), "--races"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "race-free" in out

    def test_session_reuse_fixture_reports_order_notes(self, capsys):
        code = main(
            ["lint", str(FIXTURES / "session_reuse.ais"), "--races"]
        )
        out = capsys.readouterr().out
        assert code == 0   # notes only: the serial schedule is sound
        assert "RACE-ORDER" in out
        assert "mixer1" in out

    def test_json_payload(self, capsys):
        code = main(
            [
                "lint", str(FIXTURES / "session_reuse.ais"),
                "--races", "--json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["tool"] == "races"
        assert payload["version"] == 1
        assert payload["summary"]["mhp"]["mode"] == "single"
        assert payload["summary"]["notes"] >= 1

    def test_topology_flag(self, capsys):
        code = main(
            [
                "lint", str(FIXTURES / "clean_dilution.ais"),
                "--races", "--topology", "bus",
            ]
        )
        assert code == 0
        assert "race-free" in capsys.readouterr().out

    def test_parse_error_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.ais"
        bad.write_text("not an AIS listing {")
        assert main(["lint", str(bad), "--races"]) == 2

    def test_assay_source_compiles_then_race_checks(self, tmp_path, capsys):
        from repro.assays import glucose

        path = tmp_path / "glucose.fluid"
        path.write_text(glucose.SOURCE)
        code = main(["lint", str(path), "--assay", "--races", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["tool"] == "races"
        assert payload["summary"]["errors"] == 0


class TestCompileRaceCheckCli:
    def test_race_check_pass_is_timed(self, tmp_path, capsys):
        from repro.assays import glucose

        path = tmp_path / "glucose.fluid"
        path.write_text(glucose.SOURCE)
        code = main(
            ["compile", str(path), "--race-check", "--time-passes"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "race-check" in captured.err  # the timing table

    def test_race_check_appears_in_stats_json(self, tmp_path, capsys):
        from repro.assays import glucose

        path = tmp_path / "glucose.fluid"
        path.write_text(glucose.SOURCE)
        stats = tmp_path / "stats.json"
        code = main(
            [
                "compile", str(path), "--race-check",
                "--stats-json", str(stats),
            ]
        )
        assert code == 0
        payload = json.loads(stats.read_text())
        names = [event["name"] for event in payload["passes"]]
        assert "race-check" in names

    def test_without_flag_the_pass_is_skipped(self, tmp_path, capsys):
        from repro.assays import glucose

        path = tmp_path / "glucose.fluid"
        path.write_text(glucose.SOURCE)
        stats = tmp_path / "stats.json"
        assert main(
            ["compile", str(path), "--stats-json", str(stats)]
        ) == 0
        payload = json.loads(stats.read_text())
        event = next(
            e for e in payload["passes"] if e["name"] == "race-check"
        )
        assert event["status"] == "skipped"

    def test_batch_mode_rejects_race_check(self, tmp_path):
        from repro.assays import glucose

        path = tmp_path / "glucose.fluid"
        path.write_text(glucose.SOURCE)
        with pytest.raises(SystemExit, match="batch"):
            main(["compile", str(path), "--batch", "--race-check"])
