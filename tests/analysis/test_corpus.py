"""The clean-corpus gate: every shipped assay lints clean.

Every program the compiler generates from the repo's own corpus — the
paper benchmarks, the extra protocols, and the examples' custom assay —
must produce zero findings, both analyzed in memory and after a
render -> parse round trip of its textual listing.
"""

import pytest

from repro.analysis import lint_program, lint_text
from repro.assays import enzyme, extra, glucose, glycomics, paper_example
from repro.compiler import compile_assay, compile_dag

CORPUS = {
    "figure2": paper_example.SOURCE,
    "glucose": glucose.SOURCE,
    "glycomics": glycomics.SOURCE,
    "enzyme": enzyme.SOURCE,
    "elisa": extra.ELISA_SOURCE,
    "bradford": extra.BRADFORD_SOURCE,
    "pcr-prep": extra.PCR_PREP_SOURCE,
}


def _custom_assay_source() -> str:
    import importlib.util
    import pathlib

    path = (
        pathlib.Path(__file__).resolve().parents[2]
        / "examples"
        / "custom_assay.py"
    )
    spec = importlib.util.spec_from_file_location("custom_assay", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.SOURCE


CORPUS["custom-example"] = _custom_assay_source()


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_compiled_corpus_lints_clean(name):
    compiled = compile_assay(CORPUS[name])
    report = lint_program(compiled.program, compiled.spec)
    assert report.counts["error"] == 0, report.render_text()
    assert report.is_clean, report.render_text()
    assert report.exit_code == 0


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_rendered_corpus_round_trips_clean(name):
    compiled = compile_assay(CORPUS[name])
    report = lint_text(compiled.program.render(), compiled.spec)
    assert report.is_clean, report.render_text()


@pytest.mark.parametrize(
    "build",
    [
        paper_example.build_dag,
        glucose.build_dag,
        enzyme.build_dag,
        extra.build_bradford_dag,
    ],
    ids=lambda fn: fn.__module__.rsplit(".", 1)[-1],
)
def test_hand_built_dags_lint_clean(build):
    compiled = compile_dag(build(), lint=True)
    errors = [
        d
        for d in compiled.diagnostics
        if d.severity.value == "error"
    ]
    assert not errors, [str(d) for d in errors]
