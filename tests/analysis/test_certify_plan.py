"""Plan certification: a correct plan passes; each corruption is caught.

The acceptance bar for the verifier is asymmetric: the compiler's own
output must certify with zero errors, while a deliberately corrupted
plan — a single dispensed volume off by one least count, a broken ratio,
an overdrawn budget — must fail with the *correct* stable PLAN-* code.
"""

from fractions import Fraction
from types import SimpleNamespace

import pytest

from repro.analysis.certify import certify_plan
from repro.assays import glucose
from repro.compiler import compile_assay
from repro.core.dag import AssayDAG, Edge, Node, NodeKind
from repro.core.limits import PAPER_LIMITS


def _codes(diagnostics):
    return [d.code for d in diagnostics]


def _errors(diagnostics):
    return [d.code for d in diagnostics if d.severity.value == "error"]


def _glucose():
    return compile_assay(glucose.SOURCE)


def _mix_dag(**mix_kwargs) -> AssayDAG:
    """A, B --(1:1)--> M, with M the delivered output."""
    dag = AssayDAG("mini")
    dag.add_node(Node("A", NodeKind.INPUT))
    dag.add_node(Node("B", NodeKind.INPUT))
    dag.add_node(Node("M", NodeKind.MIX, ratio=(1, 1), **mix_kwargs))
    dag.add_edge(Edge("A", "M", Fraction(1, 2)))
    dag.add_edge(Edge("B", "M", Fraction(1, 2)))
    return dag


def _mix_assignment(a=Fraction(20), b=Fraction(20), tolerance=0):
    total = a + b
    return SimpleNamespace(
        node_volume={"A": a, "B": b, "M": total},
        node_input_volume={"A": a, "B": b, "M": total},
        edge_volume={("A", "M"): a, ("B", "M"): b},
        tolerance=tolerance,
    )


def _excess_dag(no_excess=False) -> AssayDAG:
    """A --> C (discards half) --> D, with E the excess sink."""
    dag = AssayDAG("excess")
    dag.add_node(Node("A", NodeKind.INPUT))
    dag.add_node(
        Node("C", NodeKind.MIX, ratio=(1,), excess_fraction=Fraction(1, 2),
             no_excess=no_excess)
    )
    dag.add_node(Node("D", NodeKind.HEAT))
    dag.add_node(Node("E", NodeKind.EXCESS))
    dag.add_edge(Edge("A", "C", Fraction(1)))
    dag.add_edge(Edge("C", "D", Fraction(1)))
    dag.add_edge(Edge("C", "E", Fraction(1), is_excess=True))
    return dag


def _excess_assignment(excess=Fraction(20), stored=None):
    return SimpleNamespace(
        node_volume={
            "A": Fraction(40),
            "C": Fraction(40),
            "D": Fraction(20),
            "E": Fraction(20) if stored is None else stored,
        },
        node_input_volume={
            "A": Fraction(40),
            "C": Fraction(40),
            "D": Fraction(20),
            "E": Fraction(20) if stored is None else stored,
        },
        edge_volume={
            ("A", "C"): Fraction(40),
            ("C", "D"): Fraction(20),
            ("C", "E"): excess,
        },
        tolerance=0,
    )


class TestCleanPlans:
    def test_glucose_plan_certifies(self):
        compiled = _glucose()
        diagnostics, metrics = certify_plan(
            compiled.final_dag, compiled.assignment, compiled.spec.limits
        )
        assert not _errors(diagnostics), [str(d) for d in diagnostics]
        assert metrics["loaded_nl"] > 0
        assert metrics["delivered_nl"] > 0

    def test_waste_note_and_metrics(self):
        compiled = _glucose()
        diagnostics, metrics = certify_plan(
            compiled.final_dag, compiled.assignment, compiled.spec.limits
        )
        assert "PLAN-WASTE" in _codes(diagnostics)
        assert 0 < metrics["bound_attainment"]
        assert 0 < metrics["utilisation"] <= 1

    def test_hand_built_mix_certifies(self):
        diagnostics, _ = certify_plan(
            _mix_dag(), _mix_assignment(), PAPER_LIMITS
        )
        assert not _errors(diagnostics)

    def test_excess_accounting_certifies(self):
        diagnostics, _ = certify_plan(
            _excess_dag(), _excess_assignment(), PAPER_LIMITS
        )
        assert not _errors(diagnostics), [str(d) for d in diagnostics]


class TestSingleLeastCountPerturbation:
    """The headline acceptance criterion: one least count is enough."""

    @pytest.mark.parametrize("direction", [1, -1], ids=["up", "down"])
    def test_perturbed_edge_caught(self, direction):
        compiled = _glucose()
        assignment = compiled.assignment
        least = compiled.spec.limits.least_count
        edge = next(
            e
            for e in compiled.final_dag.edges()
            if not e.is_excess and assignment.edge_volume[e.key] > least
        )
        assignment.edge_volume[edge.key] += direction * least
        diagnostics, _ = certify_plan(
            compiled.final_dag, assignment, compiled.spec.limits
        )
        assert "PLAN-FLOW" in _errors(diagnostics), [
            str(d) for d in diagnostics
        ]


class TestCorruptions:
    def test_non_multiple_edge_is_quant(self):
        offset = PAPER_LIMITS.least_count / 2
        assignment = _mix_assignment(a=Fraction(20) + offset)
        diagnostics, _ = certify_plan(_mix_dag(), assignment, PAPER_LIMITS)
        assert "PLAN-QUANT" in _errors(diagnostics)

    def test_sub_least_count_edge_is_underflow(self):
        assignment = _mix_assignment(a=Fraction(0), b=Fraction(40))
        diagnostics, _ = certify_plan(_mix_dag(), assignment, PAPER_LIMITS)
        assert "PLAN-UNDERFLOW" in _errors(diagnostics)

    def test_missing_node_volume_is_coverage(self):
        assignment = _mix_assignment()
        del assignment.node_volume["M"]
        diagnostics, _ = certify_plan(_mix_dag(), assignment, PAPER_LIMITS)
        assert "PLAN-COVERAGE" in _errors(diagnostics)

    def test_negative_edge_is_coverage(self):
        assignment = _mix_assignment()
        assignment.edge_volume[("A", "M")] = Fraction(-1)
        diagnostics, _ = certify_plan(_mix_dag(), assignment, PAPER_LIMITS)
        assert "PLAN-COVERAGE" in _errors(diagnostics)

    def test_capacity_overflow(self):
        assignment = _mix_assignment(a=Fraction(60), b=Fraction(60))
        diagnostics, _ = certify_plan(_mix_dag(), assignment, PAPER_LIMITS)
        assert "PLAN-OVERFLOW" in _errors(diagnostics)

    def test_min_volume_violation(self):
        dag = _mix_dag(min_volume=Fraction(50))
        diagnostics, _ = certify_plan(dag, _mix_assignment(), PAPER_LIMITS)
        assert "PLAN-MIN-VOLUME" in _errors(diagnostics)

    def test_skewed_ratio(self):
        # flows stay conserved, only the 1:1 share is off (30:10)
        assignment = _mix_assignment(a=Fraction(30), b=Fraction(10))
        diagnostics, _ = certify_plan(_mix_dag(), assignment, PAPER_LIMITS)
        assert "PLAN-RATIO" in _errors(diagnostics)

    def test_overdrawn_budget(self):
        dag = AssayDAG("budget")
        dag.add_node(
            Node(
                "S",
                NodeKind.CONSTRAINED_INPUT,
                available_volume=Fraction(10),
            )
        )
        dag.add_node(Node("D", NodeKind.HEAT))
        dag.add_edge(Edge("S", "D", Fraction(1)))
        assignment = SimpleNamespace(
            node_volume={"S": Fraction(20), "D": Fraction(20)},
            node_input_volume={"S": Fraction(20), "D": Fraction(20)},
            edge_volume={("S", "D"): Fraction(20)},
            tolerance=0,
        )
        diagnostics, _ = certify_plan(dag, assignment, PAPER_LIMITS)
        assert "PLAN-BUDGET" in _errors(diagnostics)

    def test_overdraw_is_flow_violation(self):
        assignment = _excess_assignment(excess=Fraction(30))
        diagnostics, _ = certify_plan(
            _excess_dag(), assignment, PAPER_LIMITS
        )
        assert "PLAN-FLOW" in _errors(diagnostics)

    def test_excess_short_fall(self):
        assignment = _excess_assignment(excess=Fraction(10), stored=Fraction(10))
        diagnostics, _ = certify_plan(
            _excess_dag(), assignment, PAPER_LIMITS
        )
        assert "PLAN-EXCESS" in _errors(diagnostics)

    def test_excess_sink_mismatch(self):
        assignment = _excess_assignment(stored=Fraction(5))
        diagnostics, _ = certify_plan(
            _excess_dag(), assignment, PAPER_LIMITS
        )
        assert "PLAN-EXCESS" in _errors(diagnostics)

    def test_no_excess_flag_enforced(self):
        diagnostics, _ = certify_plan(
            _excess_dag(no_excess=True), _excess_assignment(), PAPER_LIMITS
        )
        assert "PLAN-EXCESS" in _errors(diagnostics)


class TestSliceConsistency:
    def test_replica_with_missing_original(self):
        dag = _mix_dag()
        dag.node("M").meta["replica_of"] = "ghost"
        diagnostics, _ = certify_plan(dag, _mix_assignment(), PAPER_LIMITS)
        assert "PLAN-SLICE" in _errors(diagnostics)

    def test_cascade_stage_without_excess_share(self):
        dag = AssayDAG("cascade")
        dag.add_node(Node("A", NodeKind.INPUT))
        dag.add_node(
            Node(
                "T.cascade1",
                NodeKind.MIX,
                ratio=(1,),
                meta={"cascade_of": "T", "stage": 1},
            )
        )
        dag.add_node(Node("T", NodeKind.MIX, ratio=(1,)))
        dag.add_edge(Edge("A", "T.cascade1", Fraction(1)))
        dag.add_edge(Edge("T.cascade1", "T", Fraction(1)))
        assignment = SimpleNamespace(
            node_volume={k: Fraction(20) for k in ("A", "T.cascade1", "T")},
            node_input_volume={
                k: Fraction(20) for k in ("A", "T.cascade1", "T")
            },
            edge_volume={
                ("A", "T.cascade1"): Fraction(20),
                ("T.cascade1", "T"): Fraction(20),
            },
            tolerance=0,
        )
        diagnostics, _ = certify_plan(dag, assignment, PAPER_LIMITS)
        assert "PLAN-SLICE" in _errors(diagnostics)


class TestFeasibilityDowngrade:
    def test_infeasible_plan_downgrades_to_warnings(self):
        """When the compiler already fell back to regeneration, capacity/
        ratio findings are known — they warn instead of failing."""
        assignment = _mix_assignment(a=Fraction(60), b=Fraction(60))
        diagnostics, _ = certify_plan(
            _mix_dag(), assignment, PAPER_LIMITS, expect_feasible=False
        )
        overflow = [d for d in diagnostics if d.code == "PLAN-OVERFLOW"]
        assert overflow and all(
            d.severity.value == "warning" for d in overflow
        )

    def test_structural_codes_never_downgrade(self):
        assignment = _mix_assignment()
        assignment.edge_volume[("A", "M")] += Fraction(5)
        diagnostics, _ = certify_plan(
            _mix_dag(), assignment, PAPER_LIMITS, expect_feasible=False
        )
        assert "PLAN-FLOW" in _errors(diagnostics)
