"""The certified-corpus gate, and the verifier's independence.

Every assay the repo ships must certify with zero errors and zero
warnings — the same bar :mod:`tests.analysis.test_corpus` sets for the
lint pass.  A translation validator that flags the compiler's own output
is either finding a real miscompile or is wrong itself; both block.

The second half enforces the design rule that gives the certificate its
value: ``repro.analysis.certify`` must re-derive the IVol constraints
from scratch, so it may not import the solver stack it audits
(``core/dagsolve.py``, ``core/lp.py``, ``core/rounding.py``).  The check
is an AST scan over the package sources, because a runtime
``sys.modules`` probe cannot distinguish the verifier's own imports from
the compiler's.
"""

import ast
import pathlib

import pytest

from repro.analysis.certify import certify
from repro.assays import enzyme, extra, glucose, glycomics, paper_example
from repro.compiler import compile_assay
from repro.machine.spec import AQUACORE_SPEC
from repro.machine.topology import bus_topology, ring_topology

CORPUS = {
    "figure2": paper_example.SOURCE,
    "glucose": glucose.SOURCE,
    "glycomics": glycomics.SOURCE,
    "enzyme": enzyme.SOURCE,
    "elisa": extra.ELISA_SOURCE,
    "bradford": extra.BRADFORD_SOURCE,
    "pcr-prep": extra.PCR_PREP_SOURCE,
}


def _custom_assay_source() -> str:
    import importlib.util

    path = (
        pathlib.Path(__file__).resolve().parents[2]
        / "examples"
        / "custom_assay.py"
    )
    spec = importlib.util.spec_from_file_location("custom_assay", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.SOURCE


CORPUS["custom-example"] = _custom_assay_source()

#: the paper's measured benchmarks (Figures 12-14).
PAPER_BENCHMARKS = ("glucose", "glycomics", "enzyme")


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_corpus_certifies_clean(name):
    compiled = compile_assay(CORPUS[name])
    report = certify(compiled)
    assert report.is_clean, report.render_text()
    assert report.exit_code == 0
    assert report.schedule_checked


@pytest.mark.parametrize("name", PAPER_BENCHMARKS)
def test_paper_benchmarks_certify_on_bus(name):
    """The paper's measured benchmarks (Figures 12-14) on the AquaCore
    bus — the smoke gate CI runs via tools/certify_corpus.py."""
    compiled = compile_assay(CORPUS[name])
    report = certify(compiled, topology=bus_topology(compiled.spec))
    assert report.is_clean, report.render_text()


@pytest.mark.parametrize("name", PAPER_BENCHMARKS)
def test_paper_benchmarks_route_on_ring(name):
    """A ring layout stays *routable* (no errors), but generated code that
    assumed the bus legitimately warns about wet paths through occupied
    units — the layout-sensitivity signal, not a miscompile."""
    compiled = compile_assay(CORPUS[name])
    report = certify(compiled, topology=ring_topology(compiled.spec))
    assert report.counts["error"] == 0, report.render_text()
    assert "SCHED-UNROUTABLE" not in report.codes()


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_pipeline_certify_stage_adds_no_errors(name):
    compiled = compile_assay(CORPUS[name], certify=True)
    certificate = [
        d
        for d in compiled.diagnostics
        if d.code.startswith(("PLAN-", "SCHED-"))
    ]
    assert certificate, "certify=True must contribute findings to the sink"
    assert all(d.severity.value == "note" for d in certificate), [
        str(d) for d in certificate
    ]


def test_static_corpus_checks_both_halves():
    compiled = compile_assay(CORPUS["glucose"])
    report = certify(compiled)
    assert report.plan_checked and report.schedule_checked
    assert report.metrics["delivered_nl"] > 0


def test_runtime_assay_defers_plan_half():
    compiled = compile_assay(CORPUS["glycomics"])
    report = certify(compiled)
    assert not report.plan_checked
    assert "PLAN-DEFERRED" in report.codes()
    assert report.is_clean, report.render_text()


# ---------------------------------------------------------------------------
# independence: the verifier must not import what it audits
# ---------------------------------------------------------------------------
FORBIDDEN_MODULES = ("dagsolve", "lp", "rounding")
CERTIFY_DIR = (
    pathlib.Path(__file__).resolve().parents[2]
    / "src"
    / "repro"
    / "analysis"
    / "certify"
)


def _imported_module_names(tree: ast.AST):
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            # relative imports resolve inside repro; level>=3 reaches
            # repro.<module>, level<=2 stays inside repro.analysis
            yield module
            for alias in node.names:
                yield f"{module}.{alias.name}" if module else alias.name


@pytest.mark.parametrize(
    "source_file",
    sorted(CERTIFY_DIR.glob("*.py")),
    ids=lambda path: path.name,
)
def test_certify_never_imports_the_solver_stack(source_file):
    tree = ast.parse(source_file.read_text(encoding="utf-8"))
    imported = list(_imported_module_names(tree))
    for name in imported:
        parts = name.split(".")
        for forbidden in FORBIDDEN_MODULES:
            assert forbidden not in parts, (
                f"{source_file.name} imports {name!r}: the certifier must "
                f"re-derive constraints, not call into core/{forbidden}.py"
            )


def test_certify_package_exists_with_expected_modules():
    present = {path.name for path in CERTIFY_DIR.glob("*.py")}
    assert {
        "__init__.py",
        "codes.py",
        "constraints.py",
        "plan.py",
        "schedule.py",
        "report.py",
    } <= present


def test_certify_spec_override():
    compiled = compile_assay(CORPUS["figure2"])
    report = certify(compiled, spec=AQUACORE_SPEC)
    assert report.machine == AQUACORE_SPEC.name
