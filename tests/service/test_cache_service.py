"""Served compiles vs the CLI: byte-identity and the warm-hit proof.

The acceptance bar for the daemon: a served artifact must be
byte-identical to what ``repro compile`` prints for the same source,
and a second same-tenant submission must be a cache hit whose
PassEvents *prove* the hierarchy passes were skipped (restore-plan
``cached``, hierarchy/round ``skipped``).
"""

import os
import subprocess
import sys

from repro.assays import glucose, paper_example
from repro.service.client import ServiceClient


def cli_compile(tmp_path, source, stem):
    path = tmp_path / f"{stem}.assay"
    path.write_text(source)
    env = {**os.environ, "PYTHONPATH": "src"}
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "compile", str(path)],
        capture_output=True,
        env=env,
        cwd=os.path.join(os.path.dirname(__file__), "..", ".."),
    )
    assert proc.returncode == 0, proc.stderr.decode()
    return proc.stdout


def passes_by_name(result):
    return {
        event["name"]: event
        for event in result["stats"]["events"]["passes"]
    }


class TestByteIdentity:
    def test_served_listing_equals_cli_output(self, client, tmp_path):
        for stem, source in (
            ("glucose", glucose.SOURCE),
            ("fig2", paper_example.SOURCE),
        ):
            served = client.artifact(
                client.run("compile", source)["job"]["id"]
            )
            assert served == cli_compile(tmp_path, source, stem)

    def test_warm_artifact_equals_cold_artifact(self, client):
        cold = client.run("compile", glucose.SOURCE)
        warm = client.run("compile", glucose.SOURCE)
        assert warm["result"]["cache"] == "hit"
        assert client.artifact(warm["job"]["id"]) == client.artifact(
            cold["job"]["id"]
        )


class TestWarmHitProof:
    def test_second_submission_skips_hierarchy(self, client):
        cold = client.run("compile", glucose.SOURCE)["result"]
        warm = client.run("compile", glucose.SOURCE)["result"]
        assert cold["cache"] == "miss"
        assert warm["cache"] == "hit"
        cold_passes = passes_by_name(cold)
        warm_passes = passes_by_name(warm)
        assert cold_passes["hierarchy"]["status"] == "ok"
        assert warm_passes["restore-plan"]["status"] == "cached"
        assert warm_passes["restore-plan"]["cache"] == "hit"
        assert warm_passes["hierarchy"]["status"] == "skipped"
        assert warm_passes["round"]["status"] == "skipped"

    def test_tenants_do_not_share_warm_hits(self, service):
        alice = ServiceClient(service.url, tenant="alice")
        bob = ServiceClient(service.url, tenant="bob")
        first = alice.run("compile", glucose.SOURCE)["result"]
        second = bob.run("compile", glucose.SOURCE)["result"]
        third = bob.run("compile", glucose.SOURCE)["result"]
        assert first["cache"] == "miss"
        assert second["cache"] == "miss"    # bob's namespace was cold
        assert third["cache"] == "hit"
        assert first["listing"] == second["listing"] == third["listing"]

    def test_metrics_expose_per_tenant_cache(self, service):
        alice = ServiceClient(service.url, tenant="alice")
        alice.run("compile", glucose.SOURCE)
        alice.run("compile", glucose.SOURCE)
        by_tenant = alice.metrics()["cache_by_tenant"]
        assert by_tenant["alice"]["puts"] >= 1
        assert by_tenant["alice"]["hits"] >= 1


class TestTTL:
    def test_expired_entry_recompiles_to_identical_bytes(
        self, service_factory
    ):
        handle = service_factory(ttl_seconds=3600.0)
        client = ServiceClient(handle.url)
        cold = client.run("compile", glucose.SOURCE)["result"]
        cache = handle.service.cache
        with cache._lock:       # age every stamp past the TTL
            for key in cache._stamps:
                cache._stamps[key] -= 7200.0
        again = client.run("compile", glucose.SOURCE)["result"]
        assert again["cache"] == "miss"     # expired, not served
        assert again["listing"] == cold["listing"]
        assert cache.stats.expired >= 1
        third = client.run("compile", glucose.SOURCE)["result"]
        assert third["cache"] == "hit"      # re-deposited after expiry
