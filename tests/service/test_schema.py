"""Wire schema v1 validation: every refusal is typed and stable."""

import pytest

from repro.service.schema import SchemaError, parse_job_request


def body(**overrides):
    base = {"kind": "compile", "source": "ASSAY x\nSTART\nEND"}
    base.update(overrides)
    return base


def rejects(payload, code, status=400):
    with pytest.raises(SchemaError) as info:
        parse_job_request(payload)
    assert info.value.code == code
    assert info.value.status == status
    return info.value


class TestTopLevel:
    def test_minimal_accepted(self):
        request = parse_job_request(body())
        assert request.kind == "compile"
        assert request.name == "job"
        assert request.machine == "aquacore"

    def test_non_object_rejected(self):
        rejects([1, 2], "bad-request")
        rejects("compile", "bad-request")

    def test_unknown_fields_rejected(self):
        rejects(body(extra=1), "bad-request")

    def test_unknown_kind(self):
        rejects(body(kind="transpile"), "unsupported-kind")

    def test_missing_source(self):
        rejects({"kind": "compile"}, "bad-request")
        rejects(body(source="   "), "bad-request")

    def test_oversized_source_is_413(self):
        error = rejects(
            body(source="x" * (262_144 + 1)), "oversized-program", 413
        )
        assert "262144" in str(error)

    def test_unknown_machine(self):
        rejects(body(machine="dropbot"), "bad-request")

    def test_bad_name(self):
        rejects(body(name=""), "bad-request")
        rejects(body(name="n" * 129), "bad-request")
        rejects(body(name=7), "bad-request")


class TestOptions:
    def test_known_options_accepted(self):
        request = parse_job_request(
            body(options={"use_lp": False, "allow_cascading": True})
        )
        assert request.options == {"use_lp": False, "allow_cascading": True}

    def test_unknown_option_rejected(self):
        rejects(body(options={"turbo": True}), "bad-request")

    def test_non_bool_option_rejected(self):
        rejects(body(options={"use_lp": 1}), "bad-request")

    def test_objective_option_accepted(self):
        for objective in ("default", "waste"):
            request = parse_job_request(
                body(options={"objective": objective, "use_lp": True})
            )
            assert request.options["objective"] == objective
            assert request.options["use_lp"] is True

    def test_unknown_objective_rejected(self):
        error = rejects(body(options={"objective": "speed"}), "bad-request")
        assert "objective" in str(error)
        rejects(body(options={"objective": True}), "bad-request")


class TestParams:
    def test_compile_takes_no_params(self):
        rejects(body(params={"assay": True}), "bad-request")

    def test_lint_assay_flag(self):
        request = parse_job_request(
            body(kind="lint", params={"assay": True})
        )
        assert request.params == {"assay": True}
        rejects(body(kind="lint", params={"assay": "yes"}), "bad-request")

    def test_certify_topology(self):
        request = parse_job_request(
            body(kind="certify", params={"topology": "ring"})
        )
        assert request.params["topology"] == "ring"
        rejects(
            body(kind="certify", params={"topology": "mesh"}), "bad-request"
        )

    def test_stress_bounds(self):
        good = parse_job_request(
            body(
                kind="stress",
                params={
                    "seeds": 5,
                    "fault_rate": 0.5,
                    "kinds": ["metering-drift"],
                    "budget": "40",
                },
            )
        )
        assert good.params["seeds"] == 5
        rejects(body(kind="stress", params={"seeds": 0}), "bad-request")
        rejects(body(kind="stress", params={"seeds": True}), "bad-request")
        rejects(
            body(kind="stress", params={"fault_rate": 1.5}), "bad-request"
        )
        rejects(body(kind="stress", params={"kinds": []}), "bad-request")
        rejects(body(kind="stress", params={"budget": ""}), "bad-request")
