"""Shared fixtures: an in-process daemon per test, plus raw-socket access.

``start_in_thread`` boots the real asyncio server on a loopback port —
the same code path ``repro serve`` runs — so every test exercises the
wire, not a mock.  ``use_process_pool=False`` keeps single-test runs
off the process pool (the pool paths have their own dedicated tests).
"""

import pytest

from repro.service.client import ServiceClient
from repro.service.server import ServiceConfig, start_in_thread


@pytest.fixture
def service():
    handle = start_in_thread(
        ServiceConfig(workers=1, use_process_pool=False)
    )
    yield handle
    handle.stop()


@pytest.fixture
def client(service):
    return ServiceClient(service.url)


@pytest.fixture
def service_factory():
    """Build daemons with custom configs; all stopped on teardown."""
    handles = []

    def factory(**kwargs):
        kwargs.setdefault("use_process_pool", False)
        handle = start_in_thread(ServiceConfig(**kwargs))
        handles.append(handle)
        return handle

    yield factory
    for handle in handles:
        handle.stop()
