"""Full job lifecycle over the wire: submit, poll, result, artifact.

Every test talks HTTP to a real in-process daemon (see conftest).  The
robustness half drives raw sockets at the server — malformed request
lines, oversized bodies, mid-body disconnects — and asserts the accept
loop survives each one.
"""

import json
import socket
import time

import pytest

from repro.assays import glucose, paper_example
from repro.service.client import ServiceClient, ServiceError


def _raw_exchange(url, payload: bytes, *, close_after: int | None = None):
    """Send raw bytes at the daemon; returns the response (b"" if none)."""
    host, port = url.removeprefix("http://").split(":")
    with socket.create_connection((host, int(port)), timeout=30) as sock:
        if close_after is not None:
            sock.sendall(payload[:close_after])
            return b""
        sock.sendall(payload)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
        return b"".join(chunks)


def _status_of(response: bytes) -> int:
    return int(response.split(b" ", 2)[1])


class TestLifecycle:
    def test_compile_submit_poll_result_artifact(self, client):
        job = client.submit("compile", glucose.SOURCE, name="glucose")
        assert job["state"] in ("queued", "running")
        final = client.wait(job["id"])
        assert final["state"] == "done"
        assert final["cache"] == "miss"
        assert final["fingerprint"]
        response = client.result(job["id"])
        result = response["result"]
        assert result["kind"] == "compile"
        assert result["exit_code"] == 0
        assert result["plan_status"] == "dagsolve"
        artifact = client.artifact(job["id"])
        assert artifact.decode("utf-8") == result["listing"] + "\n"
        assert artifact.startswith(b"glucose{")

    def test_lint_job(self, client):
        compile_result = client.run("compile", glucose.SOURCE)["result"]
        response = client.run("lint", compile_result["listing"])
        report = response["result"]["report"]
        assert response["result"]["exit_code"] == 0
        assert report["summary"]["errors"] == 0
        artifact = client.artifact(response["job"]["id"])
        assert json.loads(artifact.decode("utf-8")) == report

    def test_certify_job(self, client):
        response = client.run(
            "certify", paper_example.SOURCE, params={"assay": True}
        )
        result = response["result"]
        assert result["exit_code"] == 0
        assert result["report"]["summary"]["plan_checked"] is True

    def test_stress_job(self, client):
        response = client.run(
            "stress",
            paper_example.SOURCE,
            params={"seeds": 2, "fault_rate": 0.05},
        )
        result = response["result"]
        assert len(result["report"]["scenarios"]) == 2
        artifact = json.loads(client.artifact(response["job"]["id"]))
        assert artifact == result["report"]

    def test_failed_job_reports_error(self, client):
        job = client.submit("compile", "ASSAY broken\nSTART\nBOGUS;\nEND")
        final = client.wait(job["id"])
        assert final["state"] == "failed"
        assert final["error"]["code"] == "frontend-error"
        with pytest.raises(ServiceError) as info:
            client.result(job["id"])
        assert info.value.code == "not-finished"

    def test_result_before_finished_is_409(self, client):
        job = client.submit(
            "stress", glucose.SOURCE, params={"seeds": 50}
        )
        with pytest.raises(ServiceError) as info:
            client.result(job["id"])
        assert info.value.status == 409
        client.wait(job["id"])

    def test_job_listing_scoped_and_ordered(self, client):
        first = client.submit("compile", glucose.SOURCE)
        second = client.submit("compile", paper_example.SOURCE)
        ids = [job["id"] for job in client.list_jobs()]
        assert ids == sorted(ids)
        assert {first["id"], second["id"]} <= set(ids)
        for job_id in ids:
            client.wait(job_id)

    def test_cancel_queued_job(self, service, client):
        # one worker: the stress job occupies it, the compile queues
        blocker = client.submit(
            "stress", glucose.SOURCE, params={"seeds": 40}
        )
        deadline = time.monotonic() + 60
        while client.status(blocker["id"])["state"] == "queued":
            assert time.monotonic() < deadline
            time.sleep(0.005)
        victim = client.submit("compile", paper_example.SOURCE)
        assert client.status(victim["id"])["state"] == "queued"
        client.cancel(victim["id"])
        final = client.wait(victim["id"])
        assert final["state"] == "cancelled"
        assert client.wait(blocker["id"])["state"] == "done"
        metrics = client.metrics()
        assert metrics["jobs"]["compile"]["cancelled"] == 1

    def test_cancel_finished_job_is_409(self, client):
        response = client.run("compile", glucose.SOURCE)
        with pytest.raises(ServiceError) as info:
            client.cancel(response["job"]["id"])
        assert info.value.code == "not-cancellable"


class TestTenancy:
    def test_cross_tenant_jobs_invisible(self, service):
        alice = ServiceClient(service.url, tenant="alice")
        bob = ServiceClient(service.url, tenant="bob")
        job = alice.submit("compile", glucose.SOURCE)
        alice.wait(job["id"])
        with pytest.raises(ServiceError) as info:
            bob.status(job["id"])
        assert info.value.status == 404
        assert bob.list_jobs() == []

    def test_token_auth(self, service_factory):
        handle = service_factory(tokens={"sekrit": "alice"})
        with pytest.raises(ServiceError) as info:
            ServiceClient(handle.url).list_jobs()
        assert info.value.status == 401
        with pytest.raises(ServiceError):
            ServiceClient(handle.url, token="wrong").list_jobs()
        authed = ServiceClient(handle.url, token="sekrit")
        job = authed.submit("compile", glucose.SOURCE)
        assert job["tenant"] == "alice"
        authed.wait(job["id"])

    def test_invalid_tenant_header_rejected(self, service):
        bad = ServiceClient(service.url, tenant="no spaces allowed")
        with pytest.raises(ServiceError) as info:
            bad.list_jobs()
        assert info.value.status == 400


class TestRobustness:
    def test_malformed_request_line(self, service, client):
        response = _raw_exchange(service.url, b"BANANAS\r\n\r\n")
        assert _status_of(response) == 400
        assert client.healthz()["ok"]

    def test_bad_json_body(self, service, client):
        body = b"{not json"
        payload = (
            b"POST /v1/jobs HTTP/1.1\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        response = _raw_exchange(service.url, payload)
        assert _status_of(response) == 400
        assert client.healthz()["ok"]

    def test_oversized_program_via_schema(self, service_factory):
        handle = service_factory(max_source_bytes=64)
        small = ServiceClient(handle.url)
        with pytest.raises(ServiceError) as info:
            small.submit("compile", "x" * 65)
        assert info.value.status == 413
        assert info.value.code == "oversized-program"

    def test_oversized_body_refused_before_read(self, service_factory):
        handle = service_factory(max_source_bytes=64)
        payload = (
            b"POST /v1/jobs HTTP/1.1\r\n"
            b"Content-Length: 1000000\r\n\r\n"
        )
        response = _raw_exchange(handle.url, payload + b"x" * 4096)
        assert _status_of(response) == 413
        assert ServiceClient(handle.url).healthz()["ok"]

    def test_mid_body_disconnect_creates_no_job(self, service, client):
        before = len(client.list_jobs())
        body = json.dumps(
            {"kind": "compile", "source": glucose.SOURCE}
        ).encode()
        payload = (
            b"POST /v1/jobs HTTP/1.1\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        _raw_exchange(service.url, payload, close_after=len(payload) - 50)
        time.sleep(0.05)       # let the server observe the disconnect
        assert client.healthz()["ok"]
        assert len(client.list_jobs()) == before
        metrics = client.metrics()
        assert metrics["jobs_total"]["submitted"] == before

    def test_unknown_route_and_method(self, service, client):
        assert _status_of(
            _raw_exchange(service.url, b"GET /v2/jobs HTTP/1.1\r\n\r\n")
        ) == 404
        assert _status_of(
            _raw_exchange(service.url, b"PATCH /v1/jobs HTTP/1.1\r\n\r\n")
        ) == 405
        assert client.healthz()["ok"]

    def test_rejections_counted(self, service, client):
        _raw_exchange(service.url, b"BANANAS\r\n\r\n")
        with pytest.raises(ServiceError):
            client.request_json("POST", "/v1/jobs", {"kind": "nope"})
        assert client.metrics()["rejected"] >= 2
