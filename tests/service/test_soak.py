"""Concurrency soak: N client threads hammer one daemon.

The claims under load:

* **no lost or duplicated jobs** — every submission returns a unique id,
  every id reaches a terminal state, and each tenant sees exactly the
  jobs it submitted;
* **coalescing** — concurrent identical submissions trigger one compile
  (exactly one ``miss`` per fingerprint per burst, the rest are
  ``coalesced`` or ``hit``);
* **exact metrics** — ``/v1/metrics`` reconciles to the per-client
  tallies with no slack: counters are exact, not sampled.
"""

import threading

from repro.assays import glucose, paper_example
from repro.service.client import ServiceClient
from repro.service.server import ServiceConfig, start_in_thread

SOURCES = {
    "glucose": glucose.SOURCE,
    "fig2": paper_example.SOURCE,
}


class TestSoak:
    def test_many_clients_no_lost_jobs_exact_metrics(self):
        tenants = ("alice", "bob", "carol")
        jobs_per_client = 4
        handle = start_in_thread(
            ServiceConfig(workers=4, use_process_pool=False)
        )
        try:
            results: dict[str, list] = {tenant: [] for tenant in tenants}
            errors: list[Exception] = []
            barrier = threading.Barrier(len(tenants))

            def hammer(tenant: str) -> None:
                try:
                    client = ServiceClient(handle.url, tenant=tenant)
                    barrier.wait(timeout=60)
                    submitted = []
                    for i in range(jobs_per_client):
                        stem = ("glucose", "fig2")[i % 2]
                        job = client.submit(
                            "compile", SOURCES[stem], name=stem
                        )
                        submitted.append(job["id"])
                    for job_id in submitted:
                        final = client.wait(job_id, timeout=300)
                        body = client.result(job_id)
                        results[tenant].append((job_id, final, body))
                except Exception as error:  # pragma: no cover
                    errors.append(error)

            threads = [
                threading.Thread(target=hammer, args=(tenant,))
                for tenant in tenants
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=600)
            assert not errors, errors

            total = len(tenants) * jobs_per_client

            # --- no lost or duplicated jobs -------------------------------
            all_ids = [
                job_id
                for per_tenant in results.values()
                for job_id, _final, _body in per_tenant
            ]
            assert len(all_ids) == total
            assert len(set(all_ids)) == total
            for tenant in tenants:
                assert len(results[tenant]) == jobs_per_client
                client = ServiceClient(handle.url, tenant=tenant)
                listed = {job["id"] for job in client.list_jobs()}
                assert listed == {
                    job_id for job_id, _f, _b in results[tenant]
                }
            states = handle.service.jobs.count_by_state()
            assert states["done"] == total
            assert states["queued"] == states["running"] == 0
            assert states["failed"] == states["cancelled"] == 0

            # --- every job compiled correctly, listings agree -------------
            listings: dict[str, set] = {}
            cache_modes: dict[tuple, list] = {}
            for tenant, per_tenant in results.items():
                for _job_id, final, body in per_tenant:
                    assert final["state"] == "done"
                    result = body["result"]
                    assert result["exit_code"] == 0
                    listings.setdefault(result["name"], set()).add(
                        result["listing"]
                    )
                    cache_modes.setdefault(
                        (tenant, result["fingerprint"]), []
                    ).append(result["cache"])
            for stem, variants in listings.items():
                assert len(variants) == 1, f"{stem} listings diverged"

            # --- coalescing: one compile per (tenant, fingerprint) --------
            for key, modes in cache_modes.items():
                misses = modes.count("miss")
                assert misses <= 1, f"{key} compiled {misses} times"
                assert all(
                    mode in ("miss", "coalesced", "hit") for mode in modes
                )

            # --- exact metrics reconciliation -----------------------------
            metrics = ServiceClient(handle.url).metrics()
            assert metrics["jobs_total"]["submitted"] == total
            assert metrics["jobs_total"]["done"] == total
            assert metrics["jobs_total"]["failed"] == 0
            assert metrics["jobs_total"]["cancelled"] == 0
            assert metrics["jobs"]["compile"]["done"] == total
            assert metrics["queue_depth"] == 0
            assert metrics["workers"]["busy"] == 0
            coalesced_seen = sum(
                modes.count("coalesced")
                for modes in cache_modes.values()
            )
            assert metrics["coalesced"] == coalesced_seen
            assert (
                metrics["job_latency_ms"]["compile"]["count"] == total
            )
            # the hierarchy ran exactly once per non-warm compile
            non_warm = sum(
                modes.count("miss") for modes in cache_modes.values()
            )
            hierarchy = metrics["passes"].get("hierarchy", {"count": 0})
            assert hierarchy["count"] == non_warm
            by_tenant = metrics["cache_by_tenant"]
            assert set(by_tenant) == set(tenants)
        finally:
            handle.stop()

    def test_concurrent_identical_burst_coalesces(self, monkeypatch):
        """Deterministic coalescing: gate the one cold compile until every
        submission has reached its cache decision, then release it."""
        import time

        from repro.service import server as server_module

        fan_out = 4
        gate = threading.Event()
        real_cold = server_module._compile_cold

        def gated_cold(payload):
            assert gate.wait(timeout=120), "gate never released"
            return real_cold(payload)

        monkeypatch.setattr(server_module, "_compile_cold", gated_cold)
        handle = start_in_thread(
            ServiceConfig(workers=fan_out, use_process_pool=False)
        )
        try:
            clients = [
                ServiceClient(handle.url, tenant=f"t{i}")
                for i in range(fan_out)
            ]
            jobs = [
                client.submit("compile", glucose.SOURCE)
                for client in clients
            ]
            # wait until every job has picked miss/coalesced, then open
            # the gate — the leader is provably still compiling
            deadline = time.monotonic() + 120
            while True:
                decisions = [
                    client.status(job["id"])["cache"]
                    for client, job in zip(clients, jobs)
                ]
                if all(decision is not None for decision in decisions):
                    break
                assert time.monotonic() < deadline, decisions
                time.sleep(0.005)
            gate.set()
            outcomes = []
            for client, job in zip(clients, jobs):
                final = client.wait(job["id"], timeout=300)
                assert final["state"] == "done"
                outcomes.append(final["cache"])
            assert outcomes.count("miss") == 1, outcomes
            assert outcomes.count("coalesced") == fan_out - 1, outcomes
            listings = {
                client.result(job["id"])["result"]["listing"]
                for client, job in zip(clients, jobs)
            }
            assert len(listings) == 1
            metrics = ServiceClient(handle.url).metrics()
            assert metrics["coalesced"] == fan_out - 1
            # the followers deposited: each tenant is warm now
            warm = clients[1].run("compile", glucose.SOURCE)
            assert warm["result"]["cache"] == "hit"
        finally:
            handle.stop()
