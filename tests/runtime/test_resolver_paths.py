"""Resolver edge cases: plan lookup misses, partition ordering, guards."""

from fractions import Fraction

import pytest

from repro.compiler import compile_assay
from repro.core.errors import PartitionError
from repro.ir.instructions import input_, move
from repro.runtime.executor import PlanResolver, RuntimeResolver
from repro.assays import glucose, glycomics


class TestPlanResolver:
    @pytest.fixture
    def resolver(self):
        compiled = compile_assay(glucose.SOURCE)
        return PlanResolver(compiled.assignment), compiled

    def test_edge_lookup(self, resolver):
        plan_resolver, compiled = resolver
        instruction = move("mixer1", "s1", 1, edge=("Glucose", "a"))
        assert (
            plan_resolver(instruction)
            == compiled.assignment.edge_volume[("Glucose", "a")]
        )

    def test_unknown_edge_returns_none(self, resolver):
        plan_resolver, __ = resolver
        assert plan_resolver(move("mixer1", "s1", 1, edge=("X", "Y"))) is None

    def test_input_volume_from_node_meta(self, resolver):
        plan_resolver, compiled = resolver
        instruction = input_("s1", "ip1", meta={"node": "Glucose"})
        assert (
            plan_resolver(instruction)
            == compiled.assignment.node_volume["Glucose"]
        )

    def test_plain_move_unresolved(self, resolver):
        plan_resolver, __ = resolver
        assert plan_resolver(move("sensor2", "mixer1")) is None


class TestRuntimeResolver:
    @pytest.fixture
    def resolver(self):
        compiled = compile_assay(glycomics.SOURCE)
        return RuntimeResolver(compiled), compiled

    def test_static_requires_no_planner(self):
        compiled = compile_assay(glucose.SOURCE)
        with pytest.raises(PartitionError):
            RuntimeResolver(compiled)

    def test_first_partition_resolves_immediately(self, resolver):
        runtime_resolver, __ = resolver
        instruction = move("mixer1", "s2", 1, edge=("buffer1a", "it@0"))
        volume = runtime_resolver(instruction)
        assert volume == 50  # half of the 100 nl separator load

    def test_later_partition_without_measurement_raises(self, resolver):
        runtime_resolver, __ = resolver
        instruction = move("mixer1", "s3", 1, edge=("buffer2", "it@2"))
        with pytest.raises(PartitionError):
            runtime_resolver(instruction)

    def test_measurement_unlocks_partition(self, resolver):
        runtime_resolver, __ = resolver
        runtime_resolver.record_measurement("effluent", Fraction(30))
        instruction = move("mixer1", "s3", 1, edge=("buffer2", "it@2"))
        assert runtime_resolver(instruction) is not None

    def test_cut_edge_resolves_through_stub(self, resolver):
        runtime_resolver, __ = resolver
        runtime_resolver.record_measurement("effluent", Fraction(30))
        instruction = move("mixer1", "s9", 1, edge=("effluent", "it@2"))
        volume = runtime_resolver(instruction)
        # the 50 nl buffer3a split binds the scale at 50/(10/11) = 55 (the
        # measured 30 nl would have allowed 660): X1 draw = 55/22 = 2.5 nl
        assert volume == Fraction(5, 2)

    def test_unknown_consumer_raises(self, resolver):
        runtime_resolver, __ = resolver
        instruction = move("mixer1", "s9", 1, edge=("effluent", "nope"))
        with pytest.raises(PartitionError):
            runtime_resolver(instruction)

    def test_volumes_are_quantised(self, resolver):
        runtime_resolver, compiled = resolver
        runtime_resolver.record_measurement("effluent", Fraction(301, 10))
        instruction = move("mixer1", "s9", 1, edge=("effluent", "it@2"))
        volume = runtime_resolver(instruction)
        least = compiled.spec.limits.least_count
        assert (volume / least).denominator == 1
