"""Measurement-log tests."""

from fractions import Fraction

import pytest

from repro.runtime.measurement import MeasurementLog


class TestLog:
    def test_records_in_order(self):
        log = MeasurementLog()
        log.record("sep1", 30)
        log.record("sep2", Fraction(5, 2))
        assert log.entries == [
            ("sep1", Fraction(30)),
            ("sep2", Fraction(5, 2)),
        ]
        assert len(log) == 2

    def test_latest_keeps_most_recent(self):
        log = MeasurementLog()
        log.record("sep1", 30)
        log.record("sep1", 12)
        assert log.latest() == {"sep1": Fraction(12)}

    def test_perturbation_hook(self):
        log = MeasurementLog(perturb=lambda node, v: v / 2)
        reported = log.record("sep1", 30)
        assert reported == 15
        assert log.entries == [("sep1", Fraction(15))]

    def test_negative_after_perturbation_rejected(self):
        log = MeasurementLog(perturb=lambda node, v: -v)
        with pytest.raises(ValueError):
            log.record("sep1", 1)
