"""Bounded recovery: retry/regeneration caps, budgets, failure reports.

The regression at the heart of this file: a source that is *permanently*
empty (a finite input-port supply that ran dry) used to send
``_regenerate`` into an unbounded top-up loop.  Every give-up path now
raises :class:`RegenerationExhausted` carrying the failing node id and a
machine-readable ``reason`` — or, under ``capture_failures=True``,
degrades into a structured ``ExecutionResult.failure_report``.
"""

import dataclasses
from fractions import Fraction

import pytest

from repro.assays import glucose
from repro.compiler import compile_assay
from repro.ir.instructions import Opcode
from repro.machine.errors import RegenerationExhausted, TransportError
from repro.machine.faults import FaultInjector, FaultKind, FaultPlan, ScheduledFault
from repro.machine.interpreter import Machine
from repro.runtime.executor import AssayExecutor, FailureReport, RetryPolicy


def sabotaged_glucose(divisor=4):
    """Quarter the planned input volumes so draws exhaust their sources."""
    compiled = compile_assay(glucose.SOURCE)
    for node in ("Glucose", "Reagent", "Sample"):
        compiled.assignment.node_volume[node] = (
            compiled.assignment.node_volume[node] / divisor
        )
    return compiled


def first_move_index(compiled):
    for index, instruction in enumerate(compiled.program):
        if instruction.opcode is Opcode.MOVE and instruction.edge is not None:
            return index
    raise AssertionError("no metered move in program")


class TestPermanentlyEmptySource:
    """Satellite: the permanently-empty-source regression."""

    def finite_supply_executor(self, **kwargs):
        compiled = sabotaged_glucose()
        machine = Machine(compiled.spec)
        executor = AssayExecutor(compiled, machine, **kwargs)
        # Rebind every port with exactly the (sabotaged) planned supply:
        # the first regeneration's top-up then runs the port dry.
        for port, binding in list(machine.ports.items()):
            machine.bind_port(port, binding.species, supply=Fraction(30))
        return executor

    def test_raises_diagnostic_instead_of_looping(self):
        executor = self.finite_supply_executor()
        with pytest.raises(RegenerationExhausted) as excinfo:
            executor.run()
        error = excinfo.value
        assert error.reason == "source-exhausted"
        assert error.location is not None
        # the failing node is an input port (off-chip supply)
        assert error.location in executor.machine.ports

    def test_capture_failures_degrades_gracefully(self):
        executor = self.finite_supply_executor(capture_failures=True)
        result = executor.run()
        assert not result.succeeded
        report = result.failure_report
        assert isinstance(report, FailureReport)
        assert report.error_kind == "RegenerationExhausted"
        assert report.location in executor.machine.ports
        assert report.instruction_index >= 0
        payload = report.to_dict()
        assert payload["error_kind"] == "RegenerationExhausted"
        assert payload["location"] == report.location


class TestPolicyBounds:
    def test_max_attempts_cap(self):
        compiled = sabotaged_glucose()
        executor = AssayExecutor(
            compiled,
            Machine(compiled.spec),
            policy=RetryPolicy(max_attempts=0),
        )
        with pytest.raises(RegenerationExhausted) as excinfo:
            executor.run()
        assert excinfo.value.reason == "max-attempts"

    def test_global_regeneration_cap(self):
        compiled = sabotaged_glucose()
        executor = AssayExecutor(
            compiled,
            Machine(compiled.spec),
            policy=RetryPolicy(max_regenerations=0),
        )
        with pytest.raises(RegenerationExhausted) as excinfo:
            executor.run()
        assert excinfo.value.reason == "max-regenerations"

    def test_regeneration_budget(self):
        compiled = sabotaged_glucose()
        executor = AssayExecutor(
            compiled,
            Machine(compiled.spec),
            policy=RetryPolicy(regeneration_budget=Fraction(0)),
        )
        with pytest.raises(RegenerationExhausted) as excinfo:
            executor.run()
        assert excinfo.value.reason == "budget"

    def test_unsabotaged_run_needs_no_budget(self):
        compiled = compile_assay(glucose.SOURCE)
        executor = AssayExecutor(
            compiled,
            Machine(compiled.spec),
            policy=RetryPolicy(regeneration_budget=Fraction(0)),
        )
        result = executor.run()
        assert result.succeeded
        assert result.regeneration_volume == 0

    def test_recovery_succeeds_within_default_policy(self):
        compiled = sabotaged_glucose()
        result = AssayExecutor(compiled, Machine(compiled.spec)).run()
        assert result.regenerations > 0
        assert result.regeneration_volume > 0
        regen_events = [
            e for e in result.trace.recoveries if e.action == "regeneration"
        ]
        assert len(regen_events) == result.regenerations
        assert (
            sum((e.extra_volume for e in regen_events), Fraction(0))
            == result.regeneration_volume
        )


class TestTransientTransport:
    def scheduled_injector(self, compiled, occurrences):
        index = first_move_index(compiled)
        plan = FaultPlan(
            schedule=tuple(
                ScheduledFault(index, FaultKind.TRANSPORT_FAILURE, occ)
                for occ in occurrences
            )
        )
        return FaultInjector(plan), index

    def test_retry_recovers_from_transient_failure(self):
        compiled = compile_assay(glucose.SOURCE)
        injector, index = self.scheduled_injector(compiled, (1,))
        executor = AssayExecutor(
            compiled, Machine(compiled.spec), injector=injector
        )
        result = executor.run()
        assert result.succeeded
        assert result.transient_retries == 1
        [retry] = [e for e in result.trace.recoveries if e.action == "retry"]
        assert retry.index == index
        # the retry is recovery bookkeeping, not a wet instruction
        baseline = AssayExecutor(
            compile_assay(glucose.SOURCE), Machine(compiled.spec)
        ).run()
        assert (
            result.trace.wet_instruction_count
            == baseline.trace.wet_instruction_count
        )
        assert result.results == baseline.results

    def test_persistent_blockage_exhausts_retries(self):
        compiled = compile_assay(glucose.SOURCE)
        injector, index = self.scheduled_injector(compiled, (1, 2, 3, 4))
        executor = AssayExecutor(
            compiled,
            Machine(compiled.spec),
            injector=injector,
            policy=RetryPolicy(max_transient_retries=2),
            capture_failures=True,
        )
        result = executor.run()
        assert not result.succeeded
        assert result.failure_report.error_kind == "TransportError"
        assert result.failure_report.instruction_index == index
        assert result.failure_report.faults_injected == {
            "transport-failure": 3
        }

    def test_transport_error_without_capture_propagates(self):
        compiled = compile_assay(glucose.SOURCE)
        injector, __ = self.scheduled_injector(compiled, (1, 2, 3, 4, 5))
        executor = AssayExecutor(
            compiled,
            Machine(compiled.spec),
            injector=injector,
            policy=RetryPolicy(max_transient_retries=1),
        )
        with pytest.raises(TransportError):
            executor.run()


class TestDepletionRecovery:
    def test_depletion_triggers_regeneration_and_completes(self):
        compiled = compile_assay(glucose.SOURCE)
        index = first_move_index(compiled)
        plan = FaultPlan(
            schedule=(
                ScheduledFault(index, FaultKind.RESERVOIR_DEPLETION, 1),
            )
        )
        machine = Machine(compiled.spec)
        executor = AssayExecutor(
            compiled, machine, injector=FaultInjector(plan)
        )
        result = executor.run()
        assert result.succeeded
        assert result.regenerations >= 1
        assert machine.injector.injected == {"reservoir-depletion": 1}
        baseline = AssayExecutor(
            compile_assay(glucose.SOURCE), Machine(compiled.spec)
        ).run()
        assert result.results == baseline.results
