"""Naive-baseline regeneration counts (Table 2's last column)."""

import pytest

from repro.core.limits import PAPER_LIMITS, HardwareLimits
from repro.runtime.regeneration import naive_regeneration_count
from repro.assays import enzyme, glucose, paper_example


class TestPaperCounts:
    def test_glucose_exactly_two(self, glucose_dag, limits):
        """Table 2: glucose triggers regeneration twice."""
        report = naive_regeneration_count(glucose_dag, limits)
        assert report.regeneration_count == 2
        assert report.hard_failures == []

    def test_glucose_regenerations_are_reagent(self, glucose_dag, limits):
        report = naive_regeneration_count(glucose_dag, limits)
        assert report.per_fluid == {"Reagent": 2}

    def test_enzyme_tens_of_regenerations(self, enzyme_dag, limits):
        """Table 2 reports 85; our policy model lands within a few."""
        report = naive_regeneration_count(enzyme_dag, limits)
        assert 75 <= report.regeneration_count <= 95

    def test_enzyme10_thousand_plus(self, limits):
        """Table 2 reports 1313; the growth factor (~15x enzyme) is the
        reproducible claim."""
        report = naive_regeneration_count(
            enzyme.build_dag(10), limits, respect_least_count=False
        )
        assert 1000 <= report.regeneration_count <= 1700
        base = naive_regeneration_count(
            enzyme.build_dag(), limits, respect_least_count=False
        )
        growth = report.regeneration_count / base.regeneration_count
        assert 10 <= growth <= 20  # paper: 1313/85 ~ 15.4

    def test_both_modes_agree_on_glucose(self, glucose_dag, limits):
        strict = naive_regeneration_count(glucose_dag, limits)
        loose = naive_regeneration_count(
            glucose_dag, limits, respect_least_count=False
        )
        assert strict.regeneration_count == loose.regeneration_count == 2


class TestPolicyProperties:
    def test_single_use_assay_never_regenerates(self, fig2_dag, limits):
        report = naive_regeneration_count(fig2_dag, limits)
        # Figure 2's fluids all fit in one reservoir fill... B is used
        # twice but 100 nl covers both draws, so:
        assert report.regeneration_count <= 2

    def test_extreme_ratio_is_hard_failure(self, limits):
        from repro.core.dag import AssayDAG

        dag = AssayDAG()
        dag.add_input("A")
        dag.add_input("B")
        dag.add_mix("M", {"A": 1, "B": 99999})
        report = naive_regeneration_count(dag, limits)
        assert "M" in report.hard_failures

    def test_downstream_of_hard_failure_fails_not_loops(self, limits):
        from repro.core.dag import AssayDAG

        dag = AssayDAG()
        dag.add_input("A")
        dag.add_input("B")
        dag.add_mix("M", {"A": 1, "B": 99999})
        dag.add_unary("H", "M")
        report = naive_regeneration_count(dag, limits)
        assert "H" in report.hard_failures

    def test_operations_executed_includes_reexecutions(self, glucose_dag, limits):
        report = naive_regeneration_count(glucose_dag, limits)
        # 8 nodes + 2 regenerated input refills
        assert report.operations_executed == 8 + 2

    def test_bigger_reservoirs_mean_fewer_regenerations(self, glucose_dag):
        small = HardwareLimits(max_capacity=100, least_count="0.1")
        big = HardwareLimits(max_capacity=1000, least_count="0.1")
        small_count = naive_regeneration_count(glucose_dag, small)
        big_count = naive_regeneration_count(glucose_dag, big)
        assert big_count.regeneration_count <= small_count.regeneration_count

    def test_max_triggers_guard(self, limits):
        from repro.core.errors import VolumeError

        report = naive_regeneration_count(
            enzyme.build_dag(), limits, max_triggers=10_000
        )
        assert report.regeneration_count < 10_000
        with pytest.raises(VolumeError):
            naive_regeneration_count(
                enzyme.build_dag(), limits, max_triggers=5
            )
