"""Executor tests: plan resolution, runtime partitions, regeneration."""

import dataclasses
from fractions import Fraction

import pytest

from repro.compiler import compile_assay
from repro.machine.interpreter import Machine
from repro.machine.separation import FractionalYield
from repro.machine.spec import AQUACORE_SPEC
from repro.runtime.executor import AssayExecutor, PlanResolver
from repro.assays import glucose, glycomics


def glucose_machine():
    spec = dataclasses.replace(
        AQUACORE_SPEC,
        extinction_coefficients={"Glucose": Fraction(2), "Sample": Fraction(1)},
    )
    return Machine(spec)


class TestStaticExecution:
    def test_glucose_runs_clean(self):
        compiled = compile_assay(glucose.SOURCE)
        result = AssayExecutor(compiled, glucose_machine()).run()
        assert result.regenerations == 0
        assert len(result.results) == 5

    def test_glucose_calibration_series(self):
        """OD falls with dilution: 1:1 > 1:2 > 1:4 > 1:8."""
        compiled = compile_assay(glucose.SOURCE)
        result = AssayExecutor(compiled, glucose_machine()).run()
        readings = [result.results[f"Result[{i}]"] for i in range(1, 5)]
        assert readings == sorted(readings, reverse=True)
        assert float(readings[0]) == pytest.approx(1.0, abs=0.02)

    def test_no_volume_left_unaccounted(self):
        compiled = compile_assay(glucose.SOURCE)
        executor = AssayExecutor(compiled, glucose_machine())
        result = executor.run()
        machine = result.machine
        drawn = sum(
            (binding.drawn for binding in machine.ports.values()),
            Fraction(0),
        )
        shipped = sum(machine.output_tally.values(), Fraction(0))
        assert (
            machine.total_onchip_volume()
            == drawn - shipped - machine.waste_tally
        )

    def test_plan_resolver_volumes(self):
        compiled = compile_assay(glucose.SOURCE)
        resolver = PlanResolver(compiled.assignment)
        moves = [
            i
            for i in compiled.program
            if i.edge is not None
        ]
        for instruction in moves:
            volume = resolver(instruction)
            assert volume == compiled.assignment.edge_volume[instruction.edge]


class TestRuntimeExecution:
    def make_executor(self, yield1=Fraction(1, 2), yield2=Fraction(1, 2), yield3=Fraction(1, 2)):
        compiled = compile_assay(glycomics.SOURCE)
        machine = Machine(
            AQUACORE_SPEC,
            separation_models={
                "separator1": FractionalYield(yield1),
                # separator2 runs two LC separations; one model serves both
                "separator2": FractionalYield(yield2),
            },
        )
        return compiled, AssayExecutor(compiled, machine)

    def test_glycomics_runs_clean(self):
        __, executor = self.make_executor()
        result = executor.run()
        assert result.regenerations == 0
        assert len(result.measurements) == 3

    def test_partitions_dispensed_lazily(self):
        compiled, executor = self.make_executor()
        result = executor.run()
        session = executor.resolver.session
        assert set(session.assignments) == {0, 1, 2, 3}

    def test_measurements_flow_into_plan(self):
        compiled, executor = self.make_executor(yield1=Fraction(3, 10))
        result = executor.run()
        measured = dict(result.measurements.entries)
        # sep1's feed is 100 nl; at 30% yield the measurement is 30 nl.
        assert measured["effluent"] == 30
        session = executor.resolver.session
        assert session.productions["effluent"] == 30

    def test_low_yield_scales_downstream(self):
        __, generous = self.make_executor(yield1=Fraction(1, 2))
        __, meagre = self.make_executor(yield1=Fraction(1, 100))
        rich = generous.run()
        poor = meagre.run()
        # The second partition's mix must be smaller when sep1 yields less.
        rich_vol = rich.machine.trace  # both ran; compare session scales
        rich_scale = generous.resolver.session.assignments[1].scale
        poor_scale = meagre.resolver.session.assignments[1].scale
        assert poor_scale < rich_scale


class TestRegenerationPath:
    def test_sabotaged_plan_triggers_regeneration(self):
        """Halve every planned input volume: draws must exhaust sources and
        the executor must recover by re-executing backward slices."""
        compiled = compile_assay(glucose.SOURCE)
        sabotaged = dataclasses.replace(compiled)
        assignment = compiled.assignment
        for node in list(assignment.node_volume):
            if node in ("Glucose", "Reagent", "Sample"):
                assignment.node_volume[node] = (
                    assignment.node_volume[node] / 4
                )
        executor = AssayExecutor(sabotaged, glucose_machine())
        result = executor.run()
        assert result.regenerations > 0
        assert len(result.results) == 5  # still completed

    def test_regeneration_disabled_raises(self):
        from repro.machine.errors import EmptyError

        compiled = compile_assay(glucose.SOURCE)
        for node in ("Glucose", "Reagent", "Sample"):
            compiled.assignment.node_volume[node] = (
                compiled.assignment.node_volume[node] / 4
            )
        executor = AssayExecutor(
            compiled, glucose_machine(), allow_regeneration=False
        )
        with pytest.raises(EmptyError):
            executor.run()


class TestGuards:
    SOURCE = """\
ASSAY guarded
START
fluid a, b;
VAR r;
MIX a AND b IN RATIOS 1 : 1 FOR 10;
SENSE OPTICAL it INTO r;
IF r > 100 THEN
MIX a AND b IN RATIOS 1 : 2 FOR 10;
SENSE OPTICAL it INTO r;
ELSE
MIX a AND b IN RATIOS 1 : 3 FOR 10;
SENSE OPTICAL it INTO r;
ENDIF
END
"""

    def test_untaken_branch_skipped(self):
        compiled = compile_assay(self.SOURCE)
        machine = Machine(AQUACORE_SPEC)  # OD reads 0 -> r > 100 is False
        machine.bind_port("ip1", "a")
        machine.bind_port("ip2", "b")
        executor = AssayExecutor(compiled, machine)
        result = executor.run()
        assert result.skipped_guarded > 0
        # the else-branch 1:3 mix ran: its mix moves are in the trace
        rendered = result.trace.render()
        assert "move mixer1, s2, 3" in rendered
        assert "move mixer1, s2, 2" not in rendered
