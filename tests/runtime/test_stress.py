"""The seeded stress harness and its CLI surface."""

import dataclasses
import json
from fractions import Fraction

import pytest

from repro.assays import glucose, paper_example
from repro.cli import main
from repro.compiler import compile_assay
from repro.machine.faults import FaultKind
from repro.machine.spec import AQUACORE_SPEC
from repro.runtime.stress import stress_compiled

pytestmark = pytest.mark.stress


@pytest.fixture(scope="module")
def figure2_compiled():
    return compile_assay(paper_example.SOURCE)


class TestStressCompiled:
    def test_reports_are_byte_identical(self, figure2_compiled):
        first = stress_compiled(figure2_compiled, seeds=4, fault_rate=0.08)
        second = stress_compiled(figure2_compiled, seeds=4, fault_rate=0.08)
        assert first.render_json() == second.render_json()

    def test_zero_rate_all_survive_and_match(self, figure2_compiled):
        report = stress_compiled(figure2_compiled, seeds=3, fault_rate=0.0)
        assert report.survived == 3
        assert report.survival_rate == 1.0
        assert all(s.readings_match for s in report.scenarios)
        assert report.faults_by_kind() == {}

    def test_kind_restriction(self):
        # glucose, not figure2: the kind filter only shows through on an
        # assay that actually senses (figure2 has no sense instructions).
        # Default specs carry no extinction coefficients, so reads are 0
        # and a *relative* misread would be invisible — give the sensors
        # a Glucose coefficient to make readings nonzero.
        spec = dataclasses.replace(
            AQUACORE_SPEC,
            extinction_coefficients={"Glucose": Fraction(1)},
        )
        report = stress_compiled(
            compile_assay(glucose.SOURCE, spec=spec),
            seeds=6,
            fault_rate=0.3,
            kinds={FaultKind.SENSOR_MISREAD},
        )
        assert set(report.faults_by_kind()) <= {"sensor-misread"}
        # misreads perturb readings but never volumes: every run completes
        assert report.survived == 6
        assert any(s.readings_match is False for s in report.scenarios)

    def test_failures_are_structured(self, figure2_compiled):
        report = stress_compiled(figure2_compiled, seeds=10, fault_rate=0.35)
        for scenario in report.scenarios:
            if not scenario.survived:
                assert scenario.failure is not None
                assert scenario.failure.error_kind
        payload = json.loads(report.render_json())
        assert payload["seeds"] == 10
        assert len(payload["scenarios"]) == 10

    def test_to_dict_is_json_clean(self, figure2_compiled):
        report = stress_compiled(figure2_compiled, seeds=2, fault_rate=0.1)
        payload = json.loads(report.render_json())
        assert payload["version"] == 1
        assert payload["assay"] == "figure2"
        assert payload["baseline"]["wet_instructions"] > 0


class TestStressCli:
    @pytest.fixture()
    def assay_file(self, tmp_path):
        path = tmp_path / "glucose.fluid"
        path.write_text(glucose.SOURCE)
        return str(path)

    def test_json_output_is_deterministic(self, assay_file, capsys):
        argv = [
            "stress", assay_file,
            "--seeds", "3", "--fault-rate", "0.05", "--json",
        ]
        code_a = main(argv)
        out_a = capsys.readouterr().out
        code_b = main(argv)
        out_b = capsys.readouterr().out
        assert out_a == out_b
        assert code_a == code_b
        payload = json.loads(out_a)
        assert payload["seeds"] == 3

    def test_zero_rate_exit_code_ok(self, assay_file, capsys):
        assert main(["stress", assay_file, "--seeds", "2",
                     "--fault-rate", "0"]) == 0
        out = capsys.readouterr().out
        assert "2/2 scenarios survived" in out

    def test_kinds_filter_and_validation(self, assay_file, capsys):
        code = main([
            "stress", assay_file, "--seeds", "2", "--fault-rate", "0.2",
            "--kinds", "sensor-misread", "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert payload["kinds"] == ["sensor-misread"]
        assert code == 0
        with pytest.raises(SystemExit, match="unknown fault kind"):
            main(["stress", assay_file, "--kinds", "gremlins"])
